"""Repo-root pytest configuration.

Makes the test and benchmark suites runnable directly from a source
checkout (``pytest tests/``) even when the package has not been
installed — e.g. on offline machines where ``pip install -e .`` cannot
bootstrap its isolated build environment.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
