"""Process-wide paranoid mode plumbing (repro.validation.runtime)."""

import pytest

from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.validation.runtime import paranoid, paranoid_enabled, set_paranoid


@pytest.fixture(autouse=True)
def _reset_paranoid():
    previous = set_paranoid(False)
    yield
    set_paranoid(previous)


class TestToggle:
    def test_set_returns_previous(self):
        assert set_paranoid(True) is False
        assert set_paranoid(False) is True

    def test_context_manager_restores(self):
        with paranoid():
            assert paranoid_enabled()
        assert not paranoid_enabled()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with paranoid():
                raise RuntimeError("boom")
        assert not paranoid_enabled()


class TestSimulateUpgrade:
    def test_paranoid_arms_oracle_on_plain_config(self):
        context = BenchmarkContext("eon", iterations=60)
        with paranoid():
            stats = context.simulate(MachineConfig.dmp(enhanced=True))
        assert stats.oracle_checks > 0

    def test_plain_config_stays_unchecked(self):
        context = BenchmarkContext("eon", iterations=60)
        stats = context.simulate(MachineConfig.dmp(enhanced=True))
        assert stats.oracle_checks == 0
        assert stats.watchdog_trips == 0

    def test_paranoid_does_not_change_results(self):
        plain_ctx = BenchmarkContext("eon", iterations=60)
        plain = plain_ctx.simulate(MachineConfig.dmp(enhanced=True))
        hard_ctx = BenchmarkContext("eon", iterations=60)
        with paranoid():
            hard = hard_ctx.simulate(MachineConfig.dmp(enhanced=True))
        assert hard.cycles == plain.cycles
        assert hard.ipc == plain.ipc
