"""Static hint validation and the hardened hint-table loader."""

import pytest

from repro.errors import HintValidationError
from repro.harness.experiment import BenchmarkContext
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Opcode
from repro.validation.hints import check_hint_table, validate_hint_table


@pytest.fixture(scope="module")
def context():
    return BenchmarkContext("parser", iterations=120)


@pytest.fixture(scope="module")
def clean_table(context):
    return context.diverge_hints


def _single(branch_pc, *cfm_pcs, **kwargs):
    table = HintTable()
    table.add(branch_pc, DivergeHint(tuple(cfm_pcs), **kwargs))
    return table


def _first_entry(clean_table):
    (branch_pc, hint), *_ = list(clean_table)
    return branch_pc, hint


class TestStaticValidation:
    def test_clean_table_has_no_issues(self, context, clean_table):
        assert len(clean_table) > 0
        assert validate_hint_table(context.program, clean_table) == []

    def test_unknown_branch_pc_flagged(self, context):
        issues = validate_hint_table(
            context.program, _single(0xDEAD0000, 0x40)
        )
        assert any("not in the program" in issue for issue in issues)

    def test_non_branch_pc_flagged(self, context, clean_table):
        branch_pc, hint = _first_entry(clean_table)
        non_branch_pc = next(
            instr.pc
            for cfg in context.program.functions()
            for block in cfg
            for instr in block.instructions
            if instr.opcode != Opcode.BR
        )
        issues = validate_hint_table(
            context.program, _single(non_branch_pc, hint.primary_cfm)
        )
        assert any("not a conditional branch" in issue for issue in issues)

    def test_midblock_cfm_flagged(self, context, clean_table):
        branch_pc, _ = _first_entry(clean_table)
        block = next(
            b
            for cfg in context.program.functions()
            for b in cfg
            if len(b.instructions) >= 2
        )
        mid_pc = block.instructions[1].pc
        issues = validate_hint_table(
            context.program, _single(branch_pc, mid_pc)
        )
        assert any("not the first instruction" in issue for issue in issues)

    def test_self_cfm_flagged(self, context, clean_table):
        branch_pc, _ = _first_entry(clean_table)
        issues = validate_hint_table(
            context.program, _single(branch_pc, branch_pc)
        )
        assert any("diverge branch itself" in issue for issue in issues)

    def test_duplicate_cfm_flagged(self, context, clean_table):
        branch_pc, hint = _first_entry(clean_table)
        cfm = hint.primary_cfm
        issues = validate_hint_table(
            context.program, _single(branch_pc, cfm, cfm)
        )
        assert any("more than once" in issue for issue in issues)

    def test_nonpositive_threshold_flagged(self, context, clean_table):
        branch_pc, hint = _first_entry(clean_table)
        issues = validate_hint_table(
            context.program,
            _single(branch_pc, hint.primary_cfm, early_exit_threshold=0),
        )
        assert any("must be positive" in issue for issue in issues)

    def test_check_raises_with_issue_list(self, context):
        with pytest.raises(HintValidationError) as exc_info:
            check_hint_table(context.program, _single(0xDEAD0000, 0x40))
        assert exc_info.value.issues
        # backward compatible with callers that catch ValueError
        assert isinstance(exc_info.value, ValueError)

    def test_check_passes_clean(self, context, clean_table):
        check_hint_table(context.program, clean_table)


class TestValidateOnBuild:
    def test_all_hint_channels_validate(self, context):
        # each property runs check_hint_table before caching
        assert len(context.diverge_hints) > 0
        context.hammock_hints
        context.wish_hints


class TestLoader:
    def test_roundtrip(self, clean_table):
        loaded = HintTable.from_bytes(clean_table.to_bytes())
        assert list(loaded) == list(clean_table)

    def test_short_header_rejected(self):
        with pytest.raises(HintValidationError):
            HintTable.from_bytes(b"DM")

    def test_bad_magic_rejected_structured(self):
        with pytest.raises(HintValidationError):
            HintTable.from_bytes(b"NOPE" + b"\x00" * 4)

    def test_truncated_entry_rejected(self, clean_table):
        data = clean_table.to_bytes()
        with pytest.raises(HintValidationError) as exc_info:
            HintTable.from_bytes(data[:-3])
        assert "truncated" in str(exc_info.value)

    def test_loader_errors_are_value_errors(self, clean_table):
        data = clean_table.to_bytes()
        with pytest.raises(ValueError):
            HintTable.from_bytes(data[:-3])
