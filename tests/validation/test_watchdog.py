"""Tests for the simulation watchdog (repro.validation.watchdog)."""

import pytest

from repro.errors import ReproError, SimulationError, SimulationHangError
from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.watchdog import (
    AUTO_CYCLE_FACTOR,
    AUTO_CYCLE_FLOOR,
    STALL_CHECK_LIMIT,
    Watchdog,
)


class _FakeConfig:
    mode = "base"
    watchdog_cycle_limit = None


class _FakeTrace:
    instruction_count = 10


class _FakeSim:
    def __init__(self):
        self.config = _FakeConfig()
        self.trace = _FakeTrace()
        self.stats = SimStats()
        self.cycle = 0
        self.seq = 0
        self.last_retire_cycle = 0


class TestUnit:
    def test_cycle_budget_trip_carries_diagnostics(self):
        sim = _FakeSim()
        dog = Watchdog(sim, cycle_limit=100)
        sim.cycle = 101
        with pytest.raises(SimulationHangError) as exc_info:
            dog.check(sim, where="main-fetch", pc=0x40)
        diag = exc_info.value.report()
        assert diag["where"] == "main-fetch"
        assert diag["pc"] == 0x40
        assert diag["cycle_limit"] == 100
        assert diag["mode"] == "base"
        assert sim.stats.watchdog_trips == 1

    def test_within_budget_is_silent(self):
        sim = _FakeSim()
        dog = Watchdog(sim, cycle_limit=100)
        sim.cycle = 100  # limit is exceeded only strictly above
        dog.check(sim)
        assert sim.stats.watchdog_trips == 0

    def test_frozen_progress_trips(self):
        sim = _FakeSim()
        dog = Watchdog(sim, cycle_limit=10**9)
        with pytest.raises(SimulationHangError) as exc_info:
            for _ in range(STALL_CHECK_LIMIT + 2):
                dog.check(sim)
        assert "no forward progress" in str(exc_info.value)

    def test_any_progress_resets_stall_counter(self):
        sim = _FakeSim()
        dog = Watchdog(sim, cycle_limit=10**9)
        dog.stall_limit = 10  # tighten so regressions trip fast
        for i in range(100):
            sim.cycle = i
            dog.check(sim)
        assert sim.stats.watchdog_trips == 0

    def test_auto_budget_floor(self):
        sim = _FakeSim()
        dog = Watchdog(sim)  # 10-instruction trace: floor applies
        assert dog.cycle_limit == AUTO_CYCLE_FLOOR

    def test_auto_budget_scales_with_trace(self):
        sim = _FakeSim()
        sim.trace.instruction_count = 1_000_000
        dog = Watchdog(sim)
        assert dog.cycle_limit == AUTO_CYCLE_FACTOR * 1_000_000

    def test_explicit_config_limit_wins(self):
        sim = _FakeSim()
        sim.config.watchdog_cycle_limit = 777
        assert Watchdog(sim).cycle_limit == 777


class TestConfig:
    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig.baseline().replace(watchdog_cycle_limit=0)

    def test_hardened_helper(self):
        config = MachineConfig.dmp().hardened(cycle_limit=123)
        assert config.oracle_checks and config.watchdog
        assert config.watchdog_cycle_limit == 123


class TestIntegration:
    def test_tiny_budget_trips_real_run(self):
        context = BenchmarkContext("parser", iterations=120)
        config = MachineConfig.dmp(enhanced=True).hardened(cycle_limit=50)
        with pytest.raises(SimulationHangError) as exc_info:
            context.simulate(config)
        diag = exc_info.value.report()
        for key in ("where", "pc", "mode", "cycle", "dpred_depth",
                    "last_retire_cycle", "benchmark"):
            assert key in diag, key
        assert diag["mode"] == "dmp"
        assert diag["benchmark"] == "parser"
        assert diag["cycle"] > 50
        # the structured hierarchy: a hang is a bounded simulation failure
        assert isinstance(exc_info.value, SimulationError)
        assert isinstance(exc_info.value, ReproError)

    def test_generous_budget_never_trips(self):
        context = BenchmarkContext("eon", iterations=60)
        stats = context.simulate(MachineConfig.dmp(enhanced=True).hardened())
        assert stats.watchdog_trips == 0
