"""Tests for the adversarial hint fault-injection harness.

A fast subset of the catalog runs here (one benchmark, three fault
classes); the full-catalog acceptance run lives in
tests/core/test_exit_cases_faults.py.
"""

import pytest

from repro.errors import ReproError
from repro.validation import faults


class TestCatalog:
    def test_names_unique_and_complete(self):
        assert len(set(faults.FAULT_NAMES)) == len(faults.FAULT_NAMES)
        assert len(faults.FAULT_NAMES) == 12

    def test_mpp_classes_corrupt_the_dynamic_table(self):
        # The mpp classes attack the learned-table geometry through
        # config overrides (there is no hint table to corrupt), so none
        # of them can be caught by the static validator.
        for name in (
            "mpp-tiny-table", "mpp-overeager-learner",
            "mpp-stuck-confidence",
        ):
            fault = faults.fault_class(name)
            assert fault.statically_detectable is False
            corrupted = fault.corrupt(None, None, None)
            assert corrupted.config_overrides["mode"] == "mpp"
            assert corrupted.static_issues == []
            assert len(corrupted.table) == 0

    def test_every_class_documented(self):
        for fault in faults.FAULT_CLASSES:
            assert fault.description

    def test_lookup(self):
        assert faults.fault_class("self-cfm").name == "self-cfm"

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            faults.fault_class("bit-rot")


@pytest.fixture(scope="module")
def subset_report():
    return faults.run_fault_suite(
        benchmarks=["parser"],
        iterations=120,
        fault_names=["self-cfm", "cfm-nonexistent", "truncated-table"],
    )


class TestSubsetSuite:
    def test_no_crashes_hangs_or_mismatches(self, subset_report):
        assert subset_report.crashes == []
        assert subset_report.hangs == []
        assert subset_report.oracle_mismatches == []

    def test_statically_detectable_faults_detected(self, subset_report):
        assert all(r.detected for r in subset_report.injected_runs)

    def test_truncated_table_caught_by_loader(self, subset_report):
        (run,) = [
            r for r in subset_report.injected_runs
            if r.fault == "truncated-table"
        ]
        assert run.loader_error

    def test_ipc_within_margin(self, subset_report):
        assert subset_report.ipc_violations == []
        for run in subset_report.injected_runs:
            assert run.ipc_ratio_vs_baseline >= 1.0 - subset_report.ipc_margin

    def test_subset_does_not_require_full_exit_coverage(self, subset_report):
        assert not subset_report.require_all_exit_cases
        assert subset_report.ok

    def test_clean_reference_run_included(self, subset_report):
        (clean,) = [r for r in subset_report.runs if r.fault == "clean"]
        assert clean.oracle_checks > 0
        assert not clean.detected

    def test_report_format_and_dict(self, subset_report):
        text = subset_report.format()
        assert "fault-injection report" in text
        assert "robustness: OK" in text
        payload = subset_report.to_dict()
        assert payload["ok"] is True
        assert len(payload["runs"]) == len(subset_report.runs)


@pytest.fixture(scope="module")
def mpp_report():
    return faults.run_fault_suite(
        benchmarks=["parser"],
        iterations=120,
        fault_names=[
            "mpp-tiny-table", "mpp-overeager-learner",
            "mpp-stuck-confidence",
        ],
    )


class TestMppFaults:
    """Corrupting the *dynamic* merge-point table (mode "mpp") — no hint
    table exists, so the attack surface is the learner's geometry."""

    def test_no_crashes_hangs_or_mismatches(self, mpp_report):
        assert mpp_report.crashes == []
        assert mpp_report.hangs == []
        assert mpp_report.oracle_mismatches == []

    def test_every_class_detected_by_ipc_deviation(self, mpp_report):
        # None of these is statically detectable; the IPC cross-check
        # against the clean mpp run must catch all of them.
        assert all(r.detected for r in mpp_report.injected_runs)
        assert all(
            r.loader_error is None for r in mpp_report.injected_runs
        )

    def test_degraded_but_within_the_robustness_margin(self, mpp_report):
        assert mpp_report.ipc_violations == []
        assert mpp_report.ok
