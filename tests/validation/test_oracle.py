"""Tests for the oracle cross-checker (repro.validation.oracle).

Unit tests drive an :class:`OracleChecker` directly against a miniature
fake trace so each invariant can be violated in isolation; integration
tests assert that real hardened runs pass every check.
"""

import pytest

from repro.errors import OracleMismatchError
from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.oracle import OracleChecker


class _Block:
    def __init__(self, n):
        self.instructions = [object()] * n


class _Record:
    def __init__(self, n):
        self.block = _Block(n)


class _Trace:
    def __init__(self, sizes):
        self.records = [_Record(n) for n in sizes]
        self.instruction_count = sum(sizes)


def _checker(sizes=(3, 2, 4)):
    trace = _Trace(sizes)
    stats = SimStats()
    return OracleChecker(trace, stats), trace, stats


class TestAdvance:
    def test_monotonic_full_cover_passes(self):
        checker, trace, stats = _checker()
        checker.note_advance(0, 2)
        checker.note_advance(2, 3)
        stats.retired_instructions = trace.instruction_count
        checker.finalize(stats, trace)
        assert stats.oracle_checks > 0

    def test_skipped_record_rejected(self):
        checker, _, _ = _checker()
        checker.note_advance(0, 1)
        with pytest.raises(OracleMismatchError) as exc_info:
            checker.note_advance(2, 3)
        assert exc_info.value.report()["expected_index"] == 1

    def test_re_retired_record_rejected(self):
        checker, _, _ = _checker()
        checker.note_advance(0, 2)
        with pytest.raises(OracleMismatchError):
            checker.note_advance(1, 2)

    def test_no_forward_progress_rejected(self):
        checker, _, _ = _checker()
        with pytest.raises(OracleMismatchError):
            checker.note_advance(0, 0)

    def test_past_end_rejected(self):
        checker, _, _ = _checker()
        with pytest.raises(OracleMismatchError):
            checker.note_advance(0, 4)

    def test_incomplete_coverage_rejected_at_finalize(self):
        checker, trace, stats = _checker()
        checker.note_advance(0, 2)
        with pytest.raises(OracleMismatchError) as exc_info:
            checker.finalize(stats, trace)
        assert "full functional trace" in str(exc_info.value)

    def test_retired_counter_cross_checked(self):
        checker, trace, stats = _checker()
        checker.note_advance(0, 3)
        stats.retired_instructions = trace.instruction_count - 1
        with pytest.raises(OracleMismatchError):
            checker.finalize(stats, trace)


class TestDpredInvariants:
    def _covered(self):
        """A checker that already retired the whole fake trace."""
        checker, trace, stats = _checker()
        checker.note_advance(0, len(trace.records))
        stats.retired_instructions = trace.instruction_count
        return checker, trace, stats

    def test_unmatched_exit_rejected(self):
        checker, _, _ = _checker()
        with pytest.raises(OracleMismatchError):
            checker.note_dpred_exit()

    def test_unexited_episode_rejected(self):
        checker, trace, stats = self._covered()
        checker.note_dpred_enter()
        stats.dpred_entries = 1
        with pytest.raises(OracleMismatchError) as exc_info:
            checker.finalize(stats, trace)
        assert "never exited" in str(exc_info.value)

    def test_dpred_entries_counter_cross_checked(self):
        checker, trace, stats = self._covered()
        checker.note_dpred_enter()
        checker.note_dpred_exit()
        stats.dpred_entries = 2  # counter disagrees with observed episodes
        with pytest.raises(OracleMismatchError):
            checker.finalize(stats, trace)

    def test_episode_without_exit_case_rejected(self):
        checker, trace, stats = self._covered()
        checker.note_dpred_enter()
        checker.note_dpred_exit()
        stats.dpred_entries = 1
        # no exit case recorded, no restart: one episode unaccounted
        with pytest.raises(OracleMismatchError) as exc_info:
            checker.finalize(stats, trace)
        assert "exit-case" in str(exc_info.value)

    def test_recorded_exit_case_balances(self):
        checker, trace, stats = self._covered()
        checker.note_dpred_enter()
        checker.note_dpred_exit()
        stats.dpred_entries = 1
        stats.exit_cases[1] = 1
        checker.finalize(stats, trace)

    def test_restarted_episode_excused_from_exit_accounting(self):
        checker, trace, stats = self._covered()
        checker.note_dpred_enter()
        checker.note_dpred_exit()
        checker.note_restarted_episode()
        stats.dpred_entries = 1
        checker.finalize(stats, trace)

    def test_select_uop_imbalance_rejected(self):
        checker, trace, stats = self._covered()
        stats.select_uops = 3  # RAT never produced any select requests
        with pytest.raises(OracleMismatchError) as exc_info:
            checker.finalize(stats, trace)
        assert "select-uop" in str(exc_info.value)

    def test_flushes_bounded_by_mispredictions(self):
        checker, trace, stats = self._covered()
        stats.pipeline_flushes = 2
        stats.mispredictions = 1
        with pytest.raises(OracleMismatchError):
            checker.finalize(stats, trace)

    def test_max_depth_tracked(self):
        checker, _, _ = _checker()
        checker.note_dpred_enter()
        checker.note_dpred_enter()
        checker.note_dpred_exit()
        checker.note_dpred_exit()
        assert checker.max_dpred_depth == 2
        assert checker.dpred_depth == 0


class TestHardenedRuns:
    """Real simulations under .hardened() must pass the oracle."""

    @pytest.fixture(scope="class")
    def context(self):
        return BenchmarkContext("parser", iterations=120)

    @pytest.mark.parametrize(
        "factory",
        [
            MachineConfig.baseline,
            lambda: MachineConfig.dmp(enhanced=True),
            MachineConfig.dhp,
            MachineConfig.dualpath,
        ],
        ids=["base", "dmp-enhanced", "dhp", "dualpath"],
    )
    def test_clean_run_passes_oracle(self, context, factory):
        stats = context.simulate(factory().hardened())
        assert stats.oracle_checks > 0
        assert stats.watchdog_trips == 0
        assert stats.ipc > 0

    def test_hardening_does_not_change_results(self, context):
        plain = context.simulate(MachineConfig.dmp(enhanced=True))
        hard = context.simulate(MachineConfig.dmp(enhanced=True).hardened())
        assert hard.cycles == plain.cycles
        assert hard.ipc == plain.ipc
        assert dict(hard.exit_cases) == dict(plain.exit_cases)
