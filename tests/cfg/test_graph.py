"""Unit tests for basic blocks and CFG construction."""

import pytest

from repro.cfg.builder import CFGBuilder
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.isa.instructions import Condition


def diamond_cfg():
    """A -> {B, C} -> D (classic hammock)."""
    b = CFGBuilder("f")
    a = b.block("A")
    a.movi(1, 1)
    a.br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").addi(2, 2, 1).jmp("D")
    b.block("C").addi(3, 3, 1)
    b.block("D").halt()
    return b.build()


class TestSuccessors:
    def test_branch_successors_taken_first(self):
        cfg = diamond_cfg()
        assert cfg.block("A").successors() == ("C", "B")

    def test_jmp_successor(self):
        cfg = diamond_cfg()
        assert cfg.block("B").successors() == ("D",)

    def test_implicit_fallthrough(self):
        cfg = diamond_cfg()
        assert cfg.block("C").successors() == ("D",)

    def test_halt_has_no_successors(self):
        cfg = diamond_cfg()
        assert cfg.block("D").successors() == ()

    def test_ret_has_no_successors(self):
        b = CFGBuilder("g")
        b.block("entry").addi(1, 1, 1).ret()
        cfg = b.build()
        assert cfg.block("entry").successors() == ()
        assert cfg.exit_blocks() == ("entry",)


class TestPredecessors:
    def test_merge_block_predecessors(self):
        cfg = diamond_cfg()
        assert set(cfg.block("D").predecessors) == {"B", "C"}

    def test_entry_has_no_predecessors(self):
        cfg = diamond_cfg()
        assert cfg.block("A").predecessors == ()


class TestValidation:
    def test_duplicate_block_rejected(self):
        b = CFGBuilder("f")
        b.block("A").halt()
        with pytest.raises(ValueError):
            b.block("A")

    def test_unknown_target_rejected(self):
        b = CFGBuilder("f")
        blk = b.block("A")
        blk.br(Condition.EQ, 1, imm=0, taken="nowhere")
        b.block("B").halt()
        with pytest.raises(ValueError):
            b.build()

    def test_falling_off_the_end_rejected(self):
        b = CFGBuilder("f")
        b.block("A").addi(1, 1, 1)  # no terminator, no next block
        with pytest.raises(ValueError):
            b.build()

    def test_instructions_after_terminator_rejected(self):
        b = CFGBuilder("f")
        blk = b.block("A")
        blk.jmp("A")
        with pytest.raises(ValueError):
            blk.addi(1, 1, 1)

    def test_sealed_cfg_rejects_new_blocks(self):
        cfg = diamond_cfg()
        with pytest.raises(RuntimeError):
            cfg.add_block(BasicBlock("E"))


class TestQueries:
    def test_instruction_count(self):
        cfg = diamond_cfg()
        assert cfg.instruction_count() == 2 + 2 + 1 + 1

    def test_conditional_branches(self):
        cfg = diamond_cfg()
        branches = list(cfg.conditional_branches())
        assert len(branches) == 1
        assert branches[0][0] == "A"

    def test_entry_is_first_block(self):
        cfg = diamond_cfg()
        assert cfg.entry.name == "A"

    def test_empty_cfg_entry_raises(self):
        cfg = ControlFlowGraph("empty")
        with pytest.raises(ValueError):
            _ = cfg.entry

    def test_block_names_in_insertion_order(self):
        cfg = diamond_cfg()
        assert cfg.block_names == ("A", "B", "C", "D")
