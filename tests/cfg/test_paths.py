"""Unit tests for frequently-executed-path utilities."""

from repro.cfg.builder import CFGBuilder
from repro.cfg.paths import (
    EdgeProfile,
    frequent_successors,
    reachable_within,
    walk_frequent_path,
)
from repro.isa.instructions import Condition


def chain_cfg():
    """A -> {B, C}; B -> D; C -> D; D -> E."""
    b = CFGBuilder("f")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").nop(3).jmp("D")
    b.block("C").nop(5)
    b.block("D").nop(2)
    b.block("E").halt()
    return b.build()


class TestEdgeProfile:
    def test_counts_accumulate(self):
        p = EdgeProfile("f")
        p.record_edge("A", "B")
        p.record_edge("A", "B", count=4)
        p.record_edge("A", "C")
        assert p.edge_count("A", "B") == 5
        assert p.edge_count("A", "C") == 1
        assert p.edge_count("A", "Z") == 0
        assert p.outgoing_total("A") == 6

    def test_block_counts(self):
        p = EdgeProfile("f")
        p.record_entry("A")
        p.record_edge("A", "B", count=3)
        assert p.block_count("A") == 1
        assert p.block_count("B") == 3

    def test_edges_iteration_sorted(self):
        p = EdgeProfile("f")
        p.record_edge("B", "C", 2)
        p.record_edge("A", "B", 1)
        assert list(p.edges()) == [("A", "B", 1), ("B", "C", 2)]


class TestFrequentSuccessors:
    def test_filters_rare_edges(self):
        cfg = chain_cfg()
        p = EdgeProfile("f")
        p.record_edge("A", "B", 95)
        p.record_edge("A", "C", 5)
        assert frequent_successors(cfg, p, "A", min_fraction=0.1) == ["B"]
        assert set(frequent_successors(cfg, p, "A", min_fraction=0.01)) == {
            "B",
            "C",
        }

    def test_cold_block_falls_back_to_static(self):
        cfg = chain_cfg()
        p = EdgeProfile("f")
        assert set(frequent_successors(cfg, p, "A")) == {"B", "C"}


class TestWalkFrequentPath:
    def test_follows_hot_edges(self):
        cfg = chain_cfg()
        p = EdgeProfile("f")
        p.record_edge("A", "B", 90)
        p.record_edge("A", "C", 10)
        p.record_edge("B", "D", 90)
        p.record_edge("D", "E", 100)
        assert walk_frequent_path(cfg, p, "A") == ["A", "B", "D", "E"]

    def test_stops_at_revisit(self):
        b = CFGBuilder("loop")
        b.block("H").br(Condition.GE, 1, imm=10, taken="X")
        b.block("B").jmp("H")
        b.block("X").halt()
        cfg = b.build()
        p = EdgeProfile("loop")
        p.record_edge("H", "B", 99)
        p.record_edge("B", "H", 99)
        p.record_edge("H", "X", 1)
        assert walk_frequent_path(cfg, p, "H") == ["H", "B"]

    def test_respects_max_blocks(self):
        cfg = chain_cfg()
        p = EdgeProfile("f")
        p.record_edge("A", "B", 1)
        p.record_edge("B", "D", 1)
        p.record_edge("D", "E", 1)
        assert walk_frequent_path(cfg, p, "A", max_blocks=2) == ["A", "B"]


class TestReachableWithin:
    def test_distances_count_instructions(self):
        cfg = chain_cfg()
        # A has 1 instruction, B has 4 (3 nops + jmp), C has 5.
        dist = reachable_within(cfg, "A", max_instructions=100)
        assert dist["A"] == 0
        assert dist["B"] == 1
        assert dist["C"] == 1
        assert dist["D"] == 5  # min(1+4, 1+5)
        assert dist["E"] == 7

    def test_budget_cuts_off(self):
        cfg = chain_cfg()
        dist = reachable_within(cfg, "A", max_instructions=4)
        assert "D" not in dist
        assert "B" in dist

    def test_restriction(self):
        cfg = chain_cfg()
        dist = reachable_within(
            cfg, "A", max_instructions=100, restrict_to={"B", "D", "E"}
        )
        assert "C" not in dist
        assert dist["D"] == 5
