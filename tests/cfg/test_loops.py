"""Unit tests for natural-loop detection."""

from repro.cfg.builder import CFGBuilder
from repro.cfg.loops import loop_exit_branches, natural_loops
from repro.isa.instructions import Condition


def simple_loop():
    b = CFGBuilder("f")
    b.block("entry").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=10, taken="exit")
    b.block("body").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return b.build()


def nested_loops():
    b = CFGBuilder("f")
    b.block("entry").movi(1, 0)
    b.block("ohead").br(Condition.GE, 1, imm=10, taken="done")
    b.block("osetup").movi(2, 0)
    b.block("ihead").br(Condition.GE, 2, imm=3, taken="after")
    b.block("ibody").addi(2, 2, 1).jmp("ihead")
    b.block("after").addi(1, 1, 1).jmp("ohead")
    b.block("done").halt()
    return b.build()


def no_loops():
    b = CFGBuilder("f")
    b.block("a").br(Condition.EQ, 1, imm=0, taken="c")
    b.block("b").jmp("d")
    b.block("c").nop()
    b.block("d").halt()
    return b.build()


class TestNaturalLoops:
    def test_simple_loop_found(self):
        loops = natural_loops(simple_loop())
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "head"
        assert loop.blocks == {"head", "body"}

    def test_nested_loops_found(self):
        loops = natural_loops(nested_loops())
        by_header = {loop.header: loop for loop in loops}
        assert set(by_header) == {"ohead", "ihead"}
        assert by_header["ihead"].blocks == {"ihead", "ibody"}
        assert "ihead" in by_header["ohead"].blocks
        assert "after" in by_header["ohead"].blocks
        assert "done" not in by_header["ohead"].blocks

    def test_acyclic_cfg_has_none(self):
        assert natural_loops(no_loops()) == []

    def test_exit_edges(self):
        cfg = simple_loop()
        loop = natural_loops(cfg)[0]
        assert loop.exit_edges(cfg) == [("head", "exit")]


class TestLoopExitBranches:
    def test_simple_loop_exit(self):
        cfg = simple_loop()
        exits = loop_exit_branches(cfg)
        assert len(exits) == 1
        block, pc, exit_side = exits[0]
        assert block == "head"
        assert exit_side == "exit"

    def test_innermost_loop_wins(self):
        cfg = nested_loops()
        exits = {block: exit_side for block, _, exit_side in
                 loop_exit_branches(cfg)}
        # ihead exits the INNER loop to 'after' (even though 'after' is
        # still inside the outer loop).
        assert exits["ihead"] == "after"
        assert exits["ohead"] == "done"

    def test_branch_outside_loops_ignored(self):
        assert loop_exit_branches(no_loops()) == []
