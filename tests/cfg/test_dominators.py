"""Unit tests for dominator / post-dominator analysis."""

from repro.cfg.builder import CFGBuilder
from repro.cfg.dominators import (
    compute_dominators,
    immediate_postdominators,
    reconvergence_point,
)
from repro.isa.instructions import Condition


def hammock():
    """A -> {B, C} -> D."""
    b = CFGBuilder("f")
    a = b.block("A")
    a.br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").jmp("D")
    b.block("C").nop()
    b.block("D").halt()
    return b.build()


def nested():
    """The paper's Figure 3 CFG shape (without the early-return block).

    A -> {B, C}; B -> {D, E}; D -> {E, F}; F -> G;
    C -> {G, H}; E -> H; G -> H.
    """
    b = CFGBuilder("f")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").br(Condition.EQ, 2, imm=0, taken="D")
    b.block("E", fallthrough="H").nop()
    b.block("D").br(Condition.EQ, 3, imm=0, taken="E")
    b.block("F").jmp("G")
    b.block("C").br(Condition.EQ, 4, imm=0, taken="G")
    b.block("H").halt()
    b.block("G").jmp("H")
    return b.build()


def loop():
    """Entry -> Head; Head -> {Body, Exit}; Body -> Head."""
    b = CFGBuilder("f")
    b.block("Entry").nop()
    b.block("Head").br(Condition.GE, 1, imm=10, taken="Exit")
    b.block("Body").addi(1, 1, 1).jmp("Head")
    b.block("Exit").halt()
    return b.build()


class TestDominators:
    def test_hammock_dominators(self):
        idom = compute_dominators(hammock())
        assert idom["A"] is None
        assert idom["B"] == "A"
        assert idom["C"] == "A"
        assert idom["D"] == "A"

    def test_loop_dominators(self):
        idom = compute_dominators(loop())
        assert idom["Head"] == "Entry"
        assert idom["Body"] == "Head"
        assert idom["Exit"] == "Head"

    def test_nested_dominators(self):
        idom = compute_dominators(nested())
        assert idom["H"] == "A"
        assert idom["G"] == "A"  # reachable from both C and F
        assert idom["E"] == "B"


class TestPostdominators:
    def test_hammock_merge_point(self):
        ipdom = immediate_postdominators(hammock())
        assert ipdom["A"] == "D"
        assert ipdom["B"] == "D"
        assert ipdom["C"] == "D"
        assert ipdom["D"] is None

    def test_nested_postdominators(self):
        ipdom = immediate_postdominators(nested())
        # All paths from A eventually reach H.
        assert ipdom["A"] == "H"
        assert ipdom["B"] == "H"  # B reaches H via E or via F->G
        assert ipdom["G"] == "H"

    def test_loop_postdominators(self):
        ipdom = immediate_postdominators(loop())
        assert ipdom["Head"] == "Exit"
        assert ipdom["Body"] == "Head"

    def test_reconvergence_point_is_branch_ipostdom(self):
        assert reconvergence_point(hammock(), "A") == "D"
        assert reconvergence_point(nested(), "B") == "H"


class TestIrregularShapes:
    def test_multiple_exits(self):
        b = CFGBuilder("f")
        b.block("A").br(Condition.EQ, 1, imm=0, taken="Cexit")
        b.block("B").halt()
        b.block("Cexit").ret()
        cfg = b.build()
        ipdom = immediate_postdominators(cfg)
        # A's paths never merge: no real post-dominator.
        assert ipdom["A"] is None

    def test_single_block(self):
        b = CFGBuilder("f")
        b.block("only").halt()
        cfg = b.build()
        assert compute_dominators(cfg) == {"only": None}
        assert immediate_postdominators(cfg) == {"only": None}
