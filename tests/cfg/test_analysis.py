"""Program-scoped static-analysis cache (repro.cfg.analysis)."""

from repro.cfg.analysis import ProgramAnalysis
from repro.cfg.dominators import immediate_postdominators, reconvergence_point
from repro.workloads.suite import build_benchmark


def _program():
    return build_benchmark("parser", 50, 0).program


class TestRegistry:
    def test_one_analysis_per_program(self):
        program = _program()
        assert ProgramAnalysis.of(program) is ProgramAnalysis.of(program)

    def test_distinct_programs_distinct_analyses(self):
        a, b = _program(), _program()
        assert ProgramAnalysis.of(a) is not ProgramAnalysis.of(b)

    def test_reset_starts_fresh(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        cfg = next(program.functions())
        analysis.ipostdoms(cfg.name)
        ProgramAnalysis.reset(program)
        fresh = ProgramAnalysis.of(program)
        assert fresh is not analysis
        assert not fresh._ipostdoms


class TestMemoization:
    def test_ipostdoms_match_direct_computation(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        for cfg in program.functions():
            assert analysis.ipostdoms(cfg.name) == (
                immediate_postdominators(cfg)
            )

    def test_ipostdoms_memoized(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        cfg = next(program.functions())
        assert analysis.ipostdoms(cfg.name) is analysis.ipostdoms(cfg.name)

    def test_reconvergence_pc_matches_direct_computation(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        for cfg in program.functions():
            for block in cfg:
                expected_block = reconvergence_point(cfg, block.name)
                expected = (
                    None
                    if expected_block is None
                    else cfg.block(expected_block).first_pc
                )
                assert analysis.reconvergence_pc(cfg.name, block.name) == (
                    expected
                )


class TestPersistence:
    def test_export_adopt_round_trip(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        for cfg in program.functions():
            for block in cfg:
                analysis.reconvergence_pc(cfg.name, block.name)
        tables = analysis.export_tables()

        other = ProgramAnalysis(_program())
        assert other.adopt_tables(tables)
        assert other._ipostdoms == analysis._ipostdoms
        assert other._reconv_pc == analysis._reconv_pc
        # Adopted entries are not "news": nothing to persist.
        assert not other.dirty

    def test_dirty_tracks_fresh_computation(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        assert not analysis.dirty
        cfg = next(program.functions())
        analysis.ipostdoms(cfg.name)
        assert analysis.dirty
        analysis.mark_clean()
        assert not analysis.dirty
        # Memoized lookups stay clean.
        analysis.ipostdoms(cfg.name)
        assert not analysis.dirty

    def test_adopt_rejects_malformed_payloads(self):
        analysis = ProgramAnalysis(_program())
        assert not analysis.adopt_tables(None)
        assert not analysis.adopt_tables({"version": -1})
        assert not analysis.adopt_tables(
            {"version": 1, "ipostdoms": [], "reconv_pc": {}}
        )
        assert not analysis._ipostdoms

    def test_adopted_entries_do_not_clobber_computed(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        cfg = next(program.functions())
        table = analysis.ipostdoms(cfg.name)
        bogus = {
            "version": 1,
            "ipostdoms": {cfg.name: {"nonsense": None}},
            "reconv_pc": {},
        }
        assert analysis.adopt_tables(bogus)
        assert analysis.ipostdoms(cfg.name) is table
