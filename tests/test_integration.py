"""End-to-end integration tests: workload → trace → profiles → hints →
all four machine policies, with cross-mode invariants."""

import pytest

from repro.core.modes import ExitCase
from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig

ITER = 250


@pytest.fixture(scope="module")
def contexts():
    return {
        name: BenchmarkContext(name, iterations=ITER)
        for name in ("parser", "mcf", "eon", "gcc")
    }


class TestCrossModeInvariants:
    @pytest.mark.parametrize("name", ["parser", "mcf", "eon", "gcc"])
    def test_all_modes_retire_identical_work(self, contexts, name):
        context = contexts[name]
        reference = context.trace.instruction_count
        for config in (
            MachineConfig.baseline(),
            MachineConfig.dmp(),
            MachineConfig.dmp(enhanced=True),
            MachineConfig.dhp(),
            MachineConfig.dualpath(),
        ):
            stats = context.simulate(config)
            assert stats.retired_instructions == reference, config.mode

    @pytest.mark.parametrize("name", ["parser", "mcf", "eon", "gcc"])
    def test_dmp_never_flushes_more_than_baseline(self, contexts, name):
        context = contexts[name]
        base = context.simulate(MachineConfig.baseline())
        dmp = context.simulate(MachineConfig.dmp(enhanced=True))
        assert dmp.pipeline_flushes <= base.pipeline_flushes * 1.05 + 5

    @pytest.mark.parametrize("name", ["parser", "mcf"])
    def test_exit_case_accounting(self, contexts, name):
        stats = contexts[name].simulate(MachineConfig.dmp(enhanced=True))
        assert sum(stats.exit_cases.values()) == (
            stats.dpred_entries - stats.dpred_restarts
        )
        assert stats.dpred_entries > 0

    def test_parser_shows_dmp_win(self, contexts):
        context = contexts["parser"]
        base = context.simulate(MachineConfig.baseline())
        dmp = context.simulate(MachineConfig.dmp(enhanced=True))
        dhp = context.simulate(MachineConfig.dhp())
        assert dmp.ipc > base.ipc * 1.05
        assert dmp.ipc > dhp.ipc  # complex diverge beats simple hammocks

    def test_eon_unaffected(self, contexts):
        """Well-predicted code has no diverge branches: DMP == baseline."""
        context = contexts["eon"]
        assert len(context.diverge_hints) == 0
        base = context.simulate(MachineConfig.baseline())
        dmp = context.simulate(MachineConfig.dmp())
        assert dmp.cycles == base.cycles

    def test_gcc_dominated_by_other_branches(self, contexts):
        """gcc's mispredictions mostly come from branches the compiler
        cannot find CFM points for (the paper's Figure 6 story)."""
        from repro.analysis.classify import classify_mispredictions

        context = contexts["gcc"]
        result = classify_mispredictions(
            "gcc",
            context.profile,
            context.diverge_hints,
            context.hammock_hints,
        )
        assert result.other > result.simple_hammock_diverge
        assert result.diverge_share < 0.6

    def test_mcf_hammock_heavy(self, contexts):
        """mcf's diverge branches are dominated by simple hammocks, so
        DHP and DMP behave nearly identically (Figure 7's mcf bars)."""
        context = contexts["mcf"]
        dhp = context.simulate(MachineConfig.dhp())
        dmp = context.simulate(MachineConfig.dmp())
        assert abs(dhp.cycles - dmp.cycles) < 0.05 * dhp.cycles

    def test_perfect_confidence_dominates_jrs(self, contexts):
        """Oracle confidence never does worse than JRS (fewer wasted
        episodes) on predication-heavy benchmarks."""
        context = contexts["parser"]
        jrs = context.simulate(MachineConfig.dmp())
        perf = context.simulate(MachineConfig.dmp(confidence_kind="perfect"))
        assert perf.ipc >= jrs.ipc

    def test_perfect_cbp_is_upper_bound(self, contexts):
        for name in ("parser", "mcf"):
            context = contexts[name]
            base = context.simulate(MachineConfig.baseline())
            dmp = context.simulate(MachineConfig.dmp(enhanced=True))
            perfect = context.simulate(
                MachineConfig.baseline(predictor_kind="perfect")
            )
            assert perfect.ipc >= base.ipc
            assert perfect.ipc >= dmp.ipc * 0.98


class TestExitCaseSemantics:
    def test_case2_instances_do_not_flush(self, contexts):
        """Each case-2 exit is an eliminated misprediction: total flushes
        must be at most (baseline mispredictions - case-2 - case-4 +
        predictor-perturbation slack)."""
        context = contexts["parser"]
        dmp = context.simulate(MachineConfig.dmp())
        saved = (
            dmp.exit_cases[ExitCase.NORMAL_MISPREDICTED]
            + dmp.exit_cases[ExitCase.CONTINUE_ALTERNATE]
        )
        assert dmp.pipeline_flushes <= dmp.mispredictions - saved + 5


class TestSerializationRoundtrip:
    def test_hint_table_survives_binary_roundtrip(self, contexts):
        """The 'compiled binary' hint channel is lossless end to end."""
        from repro.isa.encoding import HintTable

        context = contexts["parser"]
        original = context.diverge_hints
        restored = HintTable.from_bytes(original.to_bytes())
        assert len(restored) == len(original)
        for pc, hint in original:
            assert restored.get(pc) == hint
