"""Exact-equivalence checks for the shared hot-path micro-optimizations.

Several leaf components were rewritten for speed with the contract that
behavior is *identical* — same outputs, same hit/miss accounting, same
forwarding decisions — to the straightforward implementations they
replaced.  Each test here drives the optimized component and a
transliteration of the original, simple implementation through the same
randomized stimulus and requires exact agreement.
"""

import random
from collections import OrderedDict

from repro.branch.btb import BranchTargetBuffer
from repro.branch.perceptron import PerceptronPredictor
from repro.memsys.cache import Cache
from repro.program.trace import BlockExec, Trace
from repro.uarch.storebuffer import ForwardDecision, StoreBuffer
from repro.workloads.suite import build_benchmark


class NaivePerceptron(PerceptronPredictor):
    """The original dense dot-product / clip-per-weight implementation."""

    def predict(self, pc):
        from repro.branch.base import Prediction

        index = (pc >> 2) % self.num_perceptrons
        weights = self._weights[index]
        history = self.history.bits
        output = weights[0]
        bits = history
        for i in range(1, self.history_bits + 1):
            output += weights[i] if bits & 1 else -weights[i]
            bits >>= 1
        return Prediction(
            output >= 0, pc, index=index, history=history, output=output
        )

    def train(self, prediction, actual):
        mispredicted = prediction.taken != actual
        if not mispredicted and abs(prediction.output) > self.theta:
            return
        weights = self._weights[prediction.index]
        t = 1 if actual else -1
        weights[0] = self._clip(weights[0] + t)
        bits = prediction.history
        for i in range(1, self.history_bits + 1):
            x = 1 if bits & 1 else -1
            weights[i] = self._clip(weights[i] + t * x)
            bits >>= 1


class TestPerceptron:
    def test_matches_naive_implementation(self):
        rng = random.Random(7)
        fast = PerceptronPredictor(num_perceptrons=13, history_bits=9)
        slow = NaivePerceptron(num_perceptrons=13, history_bits=9)
        pcs = [rng.randrange(0, 4096) * 4 for _ in range(25)]
        for step in range(20000):
            pc = rng.choice(pcs)
            p_fast = fast.predict(pc)
            p_slow = slow.predict(pc)
            assert (p_fast.taken, p_fast.output, p_fast.index) == (
                p_slow.taken, p_slow.output, p_slow.index
            ), f"diverged at step {step}"
            actual = rng.random() < 0.7
            fast.spec_update(p_fast.taken)
            slow.spec_update(p_slow.taken)
            fast.train(p_fast, actual)
            slow.train(p_slow, actual)
            if p_fast.taken != actual:
                fast.repair(p_fast, actual)
                slow.repair(p_slow, actual)
        assert fast._weights == slow._weights


class OrderedDictCache:
    """LRU cache built on OrderedDict — the behavior the plain-dict
    delete/reinsert implementation must reproduce."""

    def __init__(self, num_sets, associativity, line_words):
        self.num_sets = num_sets
        self.associativity = associativity
        self.line_words = line_words
        self._sets = [OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address):
        line = address // self.line_words
        entry_set = self._sets[line % self.num_sets]
        if line in entry_set:
            entry_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(entry_set) >= self.associativity:
            entry_set.popitem(last=False)
        entry_set[line] = True
        return False


class TestCacheLru:
    def test_matches_ordereddict_model(self):
        rng = random.Random(11)
        cache = Cache("test", size_words=16 * 8 * 4, associativity=4)
        model = OrderedDictCache(
            cache.num_sets, cache.associativity, cache.line_words
        )
        for _ in range(30000):
            address = rng.randrange(0, 4096)
            assert cache.access(address) == model.access(address)
        assert (cache.hits, cache.misses) == (model.hits, model.misses)
        for _ in range(200):
            address = rng.randrange(0, 4096)
            line = address // cache.line_words
            assert cache.probe(address) == (
                line in model._sets[line % model.num_sets]
            )


class TestBtbLru:
    def test_matches_ordereddict_model(self):
        rng = random.Random(13)
        btb = BranchTargetBuffer(num_entries=64, associativity=4)
        model = [OrderedDict() for _ in range(btb.num_sets)]

        def model_lookup(pc):
            entry_set = model[(pc >> 2) % btb.num_sets]
            if pc in entry_set:
                entry_set.move_to_end(pc)
                return entry_set[pc]
            return None

        def model_insert(pc, target):
            entry_set = model[(pc >> 2) % btb.num_sets]
            if pc in entry_set:
                entry_set.move_to_end(pc)
                entry_set[pc] = target
                return
            if len(entry_set) >= btb.associativity:
                entry_set.popitem(last=False)
            entry_set[pc] = target

        pcs = [rng.randrange(0, 512) * 4 for _ in range(80)]
        for _ in range(30000):
            pc = rng.choice(pcs)
            if rng.random() < 0.5:
                assert btb.lookup(pc) == model_lookup(pc)
            else:
                target = rng.randrange(0, 1 << 16)
                btb.insert(pc, target)
                model_insert(pc, target)
        for entries, model_entries in zip(btb._sets, model):
            assert list(entries.items()) == list(model_entries.items())


class NaiveStoreBuffer(StoreBuffer):
    """Original lookup: a youngest-first scan over the whole deque."""

    def lookup(self, address, load_seq, load_predicate_id=None,
               current_cycle=0):
        from repro.uarch.storebuffer import ForwardResult

        for entry in reversed(self._entries):
            if entry.seq >= load_seq or entry.address != address:
                continue
            if not entry.is_predicated:
                self.forwarded += 1
                return ForwardResult(ForwardDecision.FORWARD, entry)
            if self._is_resolved(entry, current_cycle):
                if entry.predicate_value:
                    self.forwarded += 1
                    return ForwardResult(ForwardDecision.FORWARD, entry)
                continue
            if (
                load_predicate_id is not None
                and entry.predicate_id == load_predicate_id
            ):
                self.forwarded += 1
                return ForwardResult(ForwardDecision.FORWARD, entry)
            self.waited += 1
            wait_until = entry.predicate_ready_cycle
            if wait_until is None or wait_until < current_cycle:
                wait_until = current_cycle
            return ForwardResult(ForwardDecision.WAIT, entry,
                                 wait_until=wait_until)
        return ForwardResult(ForwardDecision.MEMORY)


class TestStoreBufferIndex:
    def test_matches_full_scan(self):
        rng = random.Random(17)
        fast = StoreBuffer(capacity=16)
        slow = NaiveStoreBuffer(capacity=16)
        seq = 0
        for _ in range(20000):
            op = rng.random()
            address = rng.randrange(0, 24)
            cycle = rng.randrange(0, 500)
            if op < 0.45:
                predicated = rng.random() < 0.5
                kwargs = {}
                if predicated:
                    kwargs = {
                        "predicate_id": rng.randrange(0, 4),
                        "predicate_ready_cycle": cycle + rng.randrange(0, 40),
                        "predicate_value": rng.choice(
                            [None, True, False]
                        ),
                    }
                fast.insert(address, seq, cycle, **kwargs)
                slow.insert(address, seq, cycle, **kwargs)
                seq += 1
            elif op < 0.9:
                load_pred = rng.choice([None, 0, 1, 2, 3])
                load_seq = rng.randrange(0, seq + 1)
                a = fast.lookup(address, load_seq, load_pred, cycle)
                b = slow.lookup(address, load_seq, load_pred, cycle)
                assert a.decision == b.decision
                assert a.wait_until == b.wait_until
                assert (a.entry is None) == (b.entry is None)
                if a.entry is not None:
                    assert a.entry.seq == b.entry.seq
            elif op < 0.95:
                pred = rng.randrange(0, 4)
                value = rng.random() < 0.5
                assert fast.resolve_predicate(pred, value) == (
                    slow.resolve_predicate(pred, value)
                )
            else:
                assert fast.drain_resolved(cycle) == slow.drain_resolved(cycle)
            assert len(fast) == len(slow)
        assert (fast.forwarded, fast.waited) == (slow.forwarded, slow.waited)


class TestTraceCounters:
    def test_counters_match_instruction_scan(self):
        from repro.isa.instructions import Opcode

        workload = build_benchmark("parser", 80, 0)
        trace = workload.run()
        loads = stores = 0
        for record in trace.records:
            for instr in record.block.instructions:
                if instr.opcode == Opcode.LOAD:
                    loads += 1
                elif instr.opcode == Opcode.STORE:
                    stores += 1
        assert trace.load_count == loads
        assert trace.store_count == stores

    def test_append_accumulates(self):
        workload = build_benchmark("gzip", 40, 0)
        source = workload.run()
        rebuilt = Trace(source.program_name)
        for record in source.records:
            rebuilt.append(
                BlockExec(record.function, record.block, record.taken,
                          record.mem_addrs)
            )
        assert rebuilt.load_count == source.load_count
        assert rebuilt.store_count == source.store_count
        assert rebuilt.instruction_count == source.instruction_count
        assert rebuilt.branch_count == source.branch_count
