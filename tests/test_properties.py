"""Property-based tests (hypothesis) on core data structures and
cross-module invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.branch.base import GlobalHistory
from repro.branch.perceptron import PerceptronPredictor
from repro.confidence.jrs import JRSConfidenceEstimator
from repro.core.modes import ExitCase, classify_exit
from repro.isa.registers import NUM_ARCH_REGS
from repro.program.interpreter import Interpreter
from repro.uarch.config import MachineConfig
from repro.uarch.rat import RegisterAliasTable
from repro.uarch.storebuffer import ForwardDecision, StoreBuffer
from repro.uarch.timing import TimingSimulator
from repro.workloads.generator import GadgetSpec, WorkloadSpec, build_workload


# ---------------------------------------------------------------------------
# Global history
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=64),
    st.lists(st.booleans(), max_size=200),
)
def test_ghr_width_invariant(width, outcomes):
    """The GHR never exceeds its width and reflects the newest outcomes."""
    ghr = GlobalHistory(width)
    for taken in outcomes:
        ghr.shift(taken)
        assert 0 <= ghr.bits < (1 << width)
    if outcomes:
        assert (ghr.bits & 1) == int(outcomes[-1])


@given(
    st.lists(st.booleans(), min_size=1, max_size=50),
    st.lists(st.booleans(), max_size=50),
)
def test_ghr_snapshot_restore_roundtrip(prefix, suffix):
    ghr = GlobalHistory(16)
    for taken in prefix:
        ghr.shift(taken)
    snap = ghr.snapshot()
    for taken in suffix:
        ghr.shift(taken)
    ghr.restore(snap)
    assert ghr.bits == snap


# ---------------------------------------------------------------------------
# RAT
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.integers(min_value=1, max_value=NUM_ARCH_REGS - 1),
        max_size=60,
    ),
    st.lists(
        st.integers(min_value=1, max_value=NUM_ARCH_REGS - 1),
        max_size=60,
    ),
)
def test_rat_select_count_matches_path_writes(pred_writes, alt_writes):
    """After a checkpointed two-path rename sequence, exactly the registers
    written by at least one path need a select-uop."""
    rat = RegisterAliasTable()
    rat.clear_modified()
    cp1 = rat.checkpoint()
    for arch in pred_writes:
        rat.rename_dest(arch)
    cp2 = rat.checkpoint()
    rat.restore(cp1)
    for arch in alt_writes:
        rat.rename_dest(arch)
    selects = rat.compute_selects(cp2)
    expected = set(pred_writes) | set(alt_writes)
    assert {s.arch for s in selects} == expected


@given(
    st.lists(
        st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1),
        max_size=100,
    )
)
def test_rat_tags_strictly_increase(writes):
    rat = RegisterAliasTable()
    previous = -1
    for arch in writes:
        tag = rat.rename_dest(arch)
        assert tag > previous
        previous = tag


# ---------------------------------------------------------------------------
# Store buffer
# ---------------------------------------------------------------------------

_store_ops = st.lists(
    st.tuples(
        st.sampled_from(["store", "pstore", "load"]),
        st.integers(min_value=0, max_value=7),  # address
    ),
    max_size=60,
)


@given(_store_ops)
def test_storebuffer_never_forwards_from_younger(ops):
    """Forwarding only ever comes from an *older* store to the address."""
    sb = StoreBuffer(capacity=16)
    seq = 0
    for kind, address in ops:
        seq += 1
        if kind == "store":
            sb.insert(address, seq, data_ready_cycle=seq)
        elif kind == "pstore":
            sb.insert(
                address, seq, data_ready_cycle=seq,
                predicate_id=seq % 3,
                predicate_ready_cycle=seq + 50,
                predicate_value=bool(seq % 2),
            )
        else:
            result = sb.lookup(address, seq, current_cycle=seq)
            if result.decision == ForwardDecision.FORWARD:
                assert result.entry.seq < seq
                assert result.entry.address == address


@given(_store_ops)
def test_storebuffer_capacity_respected(ops):
    sb = StoreBuffer(capacity=8)
    seq = 0
    for kind, address in ops:
        seq += 1
        if kind != "load":
            sb.insert(address, seq, data_ready_cycle=seq)
        assert len(sb) <= 8


# ---------------------------------------------------------------------------
# Exit-case classification totality
# ---------------------------------------------------------------------------

@given(st.booleans(), st.booleans(), st.booleans())
def test_exit_classification_total_and_consistent(pred_cfm, alt_cfm, misp):
    case = classify_exit(pred_cfm, alt_cfm, misp)
    assert case in ExitCase
    # A flush can only happen on a misprediction.
    if case.flushes_pipeline:
        assert misp
    # A saved misprediction requires an actual misprediction.
    if case.saves_misprediction:
        assert misp


# ---------------------------------------------------------------------------
# JRS
# ---------------------------------------------------------------------------

@given(st.lists(st.booleans(), max_size=300))
def test_jrs_counter_bounds(outcomes):
    jrs = JRSConfidenceEstimator(table_size=64, counter_bits=4)
    for correct in outcomes:
        jrs.update(0x40, 0, correct)
        assert all(0 <= c <= 15 for c in jrs._counters)


@given(st.integers(min_value=1, max_value=30))
def test_jrs_confidence_requires_streak(streak):
    jrs = JRSConfidenceEstimator(
        table_size=64, counter_bits=4, threshold=12
    )
    for _ in range(streak):
        jrs.update(0x40, 0, True)
    assert jrs.is_confident(0x40, 0) == (streak >= 12)


# ---------------------------------------------------------------------------
# Perceptron
# ---------------------------------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_perceptron_weights_bounded(outcomes):
    predictor = PerceptronPredictor(
        num_perceptrons=8, history_bits=8, weight_bits=6
    )
    for taken in outcomes:
        prediction = predictor.predict(0x80)
        predictor.spec_update(prediction.taken)
        predictor.train(prediction, taken)
        if prediction.taken != taken:
            predictor.repair(prediction, taken)
    for weights in predictor._weights:
        assert all(-32 <= w <= 31 for w in weights)


# ---------------------------------------------------------------------------
# Whole-stack: interpreter determinism and timing sanity on random workloads
# ---------------------------------------------------------------------------

_gadget_kind = st.sampled_from(
    ["if", "ifelse", "nested", "loop", "mem", "fp"]
)


@settings(max_examples=10, deadline=None)
@given(
    st.lists(_gadget_kind, min_size=1, max_size=4),
    st.integers(min_value=5, max_value=40),
    st.integers(min_value=0, max_value=3),
)
def test_random_workload_end_to_end(kinds, iterations, seed):
    spec = WorkloadSpec(
        name="prop",
        iterations=iterations,
        gadgets=[GadgetSpec(kind, work=3) for kind in kinds],
        seed=seed,
    )
    workload = build_workload(spec)
    trace1 = workload.run()
    trace2 = workload.run()
    # Functional determinism.
    assert trace1.instruction_count == trace2.instruction_count
    assert trace1.branch_outcomes() == trace2.branch_outcomes()
    # Timing sanity: the machine can never beat its fetch bandwidth and
    # always retires exactly the architectural instruction count.
    config = MachineConfig()
    stats = TimingSimulator(workload.program, trace1, config).run()
    assert stats.cycles >= trace1.instruction_count / config.fetch_width
    assert stats.retired_instructions == trace1.instruction_count
    assert stats.mispredictions <= trace1.branch_count
