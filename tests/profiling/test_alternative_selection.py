"""Tests for the static and hardware-learned hint-generation paths."""

import random

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.profiling.dynamic_reconvergence import (
    DynamicReconvergencePredictor,
    learn_hints_from_trace,
)
from repro.profiling.profiler import profile_trace
from repro.profiling.static_selection import select_diverge_branches_static
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def hammock_loop_program(values):
    memory = Memory()
    memory.fill_array(1000, values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt").addi(20, 20, 1).jmp("merge")
    b.block("tk").addi(21, 21, 1)
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return build_program(b.build()), memory


def early_return_program():
    """A branch whose taken side returns: no post-dominator."""
    b = CFGBuilder("main")
    b.block("entry").br(Condition.GE, 1, imm=1, taken="bail")
    b.block("work").addi(20, 20, 1)
    b.block("done").halt()
    b.block("bail").ret()
    return build_program(b.build())


class TestStaticSelection:
    def test_hammock_marked_with_postdominator(self):
        program, _ = hammock_loop_program([0, 1])
        table = select_diverge_branches_static(program)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        assert table.is_diverge_branch(branch_pc)
        assert table.get(branch_pc).primary_cfm == (
            cfg.block("merge").first_pc
        )

    def test_loop_exit_branches_excluded(self):
        program, _ = hammock_loop_program([0, 1])
        table = select_diverge_branches_static(program)
        head_pc = program.entry_function.block("head").instructions[-1].pc
        assert not table.is_diverge_branch(head_pc)

    def test_no_postdominator_excluded(self):
        program = early_return_program()
        table = select_diverge_branches_static(program)
        assert len(table) == 0

    def test_distance_cap(self):
        b = CFGBuilder("main")
        b.block("entry").br(Condition.GE, 1, imm=1, taken="far")
        b.block("near").nop(5).jmp("merge")
        b.block("far").nop(300)
        b.block("merge").halt()
        program = build_program(b.build())
        table = select_diverge_branches_static(program, max_cfm_distance=120)
        # Shortest path (via 'near') is short, so the branch still
        # qualifies; with a tiny cap it must not.
        entry_pc = program.entry_function.block("entry").instructions[-1].pc
        assert table.is_diverge_branch(entry_pc)
        tight = select_diverge_branches_static(program, max_cfm_distance=2)
        assert not tight.is_diverge_branch(entry_pc)

    def test_profile_filter(self):
        program, memory = hammock_loop_program([0] * 300)  # easy branch
        trace = Interpreter(program, memory=memory).run()
        profile = profile_trace(program, trace)
        table = select_diverge_branches_static(
            program, profile=profile, min_misprediction_rate=0.08
        )
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        assert not table.is_diverge_branch(branch_pc)

    def test_static_marks_more_than_profile_guided(self):
        """Static selection cannot tell hard branches from easy ones."""
        rng = random.Random(2)
        program, memory = hammock_loop_program(
            [rng.randrange(2) for _ in range(300)]
        )
        static = select_diverge_branches_static(program)
        assert len(static) >= 1


class TestDynamicReconvergence:
    def _trained_predictor(self, values):
        program, memory = hammock_loop_program(values)
        trace = Interpreter(program, memory=memory).run()
        predictor = DynamicReconvergencePredictor(min_instances=8)
        for record in trace:
            block = record.block
            predictor.observe_block(block.first_pc, len(block.instructions))
            if record.taken is not None:
                predictor.observe_branch(
                    block.instructions[-1].pc, record.taken,
                    block_pc=block.first_pc,
                )
        return program, predictor

    def test_learns_hammock_merge(self):
        rng = random.Random(2)
        values = [rng.randrange(2) for _ in range(300)]
        program, predictor = self._trained_predictor(values)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        assert predictor.predict(branch_pc) == cfg.block("merge").first_pc

    def test_loop_head_learns_nothing_loop_carried(self):
        rng = random.Random(2)
        values = [rng.randrange(2) for _ in range(300)]
        program, predictor = self._trained_predictor(values)
        head_pc = program.entry_function.block("head").instructions[-1].pc
        # The head's window closes at its own re-execution, and the taken
        # (exit) side fires once: not enough instances on both sides.
        assert predictor.predict(head_pc) is None

    def test_untrained_branch_returns_none(self):
        predictor = DynamicReconvergencePredictor()
        assert predictor.predict(0x1234) is None

    def test_learn_hints_from_trace(self):
        rng = random.Random(2)
        values = [rng.randrange(2) for _ in range(400)]
        program, memory = hammock_loop_program(values)
        trace = Interpreter(program, memory=memory).run()
        table = learn_hints_from_trace(trace, warmup_fraction=0.5)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        assert table.is_diverge_branch(branch_pc)
        assert table.get(branch_pc).primary_cfm == (
            cfg.block("merge").first_pc
        )

    def test_hint_free_dmp_end_to_end(self):
        """A diverge-merge processor driven purely by hardware-learned
        reconvergence points still eliminates flushes."""
        from repro.core.dpred import PredicationAwareSimulator
        from repro.uarch.config import MachineConfig
        from repro.uarch.timing import TimingSimulator

        rng = random.Random(2)
        values = [rng.randrange(2) for _ in range(400)]
        program, memory = hammock_loop_program(values)
        trace = Interpreter(program, memory=memory).run()
        hints = learn_hints_from_trace(trace, warmup_fraction=0.25)
        base = TimingSimulator(
            program, trace, MachineConfig(), warm_words=range(1000, 1400)
        ).run()
        dmp = PredicationAwareSimulator(
            program, trace,
            MachineConfig.dmp(),
            hints=hints,
            warm_words=range(1000, 1400),
        ).run()
        assert dmp.dpred_entries > 0
        assert dmp.pipeline_flushes < base.pipeline_flushes
