"""Unit tests for the Section 3.2 diverge-branch selection heuristics."""

import random

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    build_hint_table,
    candidate_branch_pcs,
    select_diverge_branches,
)
from repro.profiling.profiler import collect_reconvergence, profile_trace
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program


def build_and_trace(builder_fn, values):
    memory = Memory()
    memory.fill_array(1000, values)
    program = Program("t")
    program.add_function(builder_fn(len(values)))
    program.seal()
    interp = Interpreter(program, memory=memory)
    return program, interp.run()


def hammock_builder(n):
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=n, taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt").addi(20, 20, 1).jmp("merge")
    b.block("tk").addi(21, 21, 1)
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return b.build()


def no_merge_builder(n):
    """The taken side is 200 instructions long: no CFM within the cap."""
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=n, taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt", fallthrough="merge").addi(20, 20, 1)
    b.block("tk").nop(200).jmp("merge")
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return b.build()


def full_selection(program, trace, thresholds=SelectionThresholds()):
    profile = profile_trace(program, trace)
    candidates = candidate_branch_pcs(profile, thresholds)
    recon = collect_reconvergence(
        program, trace, candidates,
        max_distance=thresholds.max_cfm_distance,
    )
    return profile, select_diverge_branches(profile, recon, thresholds)


class TestCandidateFilter:
    def test_hard_branch_is_candidate(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(hammock_builder, values)
        profile = profile_trace(program, trace)
        candidates = candidate_branch_pcs(profile)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        assert branch_pc in candidates

    def test_easy_branch_excluded_by_rate_floor(self):
        program, trace = build_and_trace(hammock_builder, [0] * 400)
        profile = profile_trace(program, trace)
        assert candidate_branch_pcs(profile) == ()

    def test_no_mispredictions_no_candidates(self):
        program, trace = build_and_trace(hammock_builder, [0] * 5)
        profile = profile_trace(program, trace)
        profile.total_mispredictions = 0
        assert candidate_branch_pcs(profile) == ()

    def test_execution_floor(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(20)]
        program, trace = build_and_trace(hammock_builder, values)
        profile = profile_trace(program, trace)
        thresholds = SelectionThresholds(min_executions=100)
        assert candidate_branch_pcs(profile, thresholds) == ()


class TestCfmSelection:
    def test_hammock_merge_selected(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(hammock_builder, values)
        _, selections = full_selection(program, trace)
        assert len(selections) == 1
        merge_pc = program.entry_function.block("merge").first_pc
        assert selections[0].primary.pc == merge_pc

    def test_primary_is_nearest_perfect_merge(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(hammock_builder, values)
        _, selections = full_selection(program, trace)
        primary = selections[0].primary
        assert primary.score == pytest.approx(1.0, abs=0.02)
        for candidate in selections[0].cfm_points[1:]:
            assert (
                candidate.mean_distance >= primary.mean_distance
                or candidate.score < primary.score
            )

    def test_no_merge_branch_dropped(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(no_merge_builder, values)
        _, selections = full_selection(program, trace)
        assert selections == []

    def test_distance_cap_enforced(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(hammock_builder, values)
        thresholds = SelectionThresholds(max_cfm_distance=1)
        _, selections = full_selection(program, trace, thresholds)
        assert selections == []


class TestHintTableBuild:
    def _selections(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = build_and_trace(hammock_builder, values)
        _, selections = full_selection(program, trace)
        return program, selections

    def test_multiple_cfm_table(self):
        program, selections = self._selections()
        table = build_hint_table(selections, multiple_cfm=True)
        hint = table.get(selections[0].pc)
        assert len(hint.cfm_pcs) == len(selections[0].cfm_points)

    def test_single_cfm_table(self):
        program, selections = self._selections()
        table = build_hint_table(selections, multiple_cfm=False)
        hint = table.get(selections[0].pc)
        assert len(hint.cfm_pcs) == 1
        assert hint.primary_cfm == selections[0].primary.pc

    def test_early_exit_threshold_scales_with_distance(self):
        program, selections = self._selections()
        thresholds = SelectionThresholds(early_exit_distance_factor=1.5)
        table = build_hint_table(selections, thresholds)
        hint = table.get(selections[0].pc)
        expected = int(1.5 * selections[0].primary.mean_distance) + 8
        assert hint.early_exit_threshold == max(expected, 8)
