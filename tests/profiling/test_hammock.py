"""Unit tests for simple-hammock detection."""

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.profiling.hammock import (
    classify_hammock,
    find_simple_hammocks,
    hammock_branch_pcs,
)
from repro.program.program import Program


def build(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def if_else_cfg():
    b = CFGBuilder("main")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").addi(2, 2, 1).jmp("M")
    b.block("C").addi(3, 3, 1)
    b.block("M").halt()
    return b.build()


def if_only_cfg():
    b = CFGBuilder("main")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="M")
    b.block("B").addi(2, 2, 1)
    b.block("M").halt()
    return b.build()


def nested_cfg():
    """Taken side contains another branch: NOT a simple hammock."""
    b = CFGBuilder("main")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").br(Condition.NE, 2, imm=0, taken="M")
    b.block("B2").addi(2, 2, 1).jmp("M")
    b.block("C").addi(3, 3, 1)
    b.block("M").halt()
    return b.build()


def call_inside_cfg():
    b = CFGBuilder("main")
    b.block("A").br(Condition.EQ, 1, imm=0, taken="C")
    b.block("B").call("helper")
    b.block("B2").jmp("M")
    b.block("C").addi(3, 3, 1)
    b.block("M").halt()
    h = CFGBuilder("helper")
    h.block("h").ret()
    return b.build(), h.build()


class TestClassifyHammock:
    def test_if_else_detected(self):
        cfg = if_else_cfg()
        assert classify_hammock(cfg, "A") == "M"

    def test_if_only_detected(self):
        cfg = if_only_cfg()
        assert classify_hammock(cfg, "A") == "M"

    def test_nested_rejected(self):
        cfg = nested_cfg()
        assert classify_hammock(cfg, "A") is None

    def test_call_inside_rejected(self):
        main_cfg, helper_cfg = call_inside_cfg()
        assert classify_hammock(main_cfg, "A") is None

    def test_non_branch_block(self):
        cfg = if_else_cfg()
        assert classify_hammock(cfg, "B") is None


class TestFindSimpleHammocks:
    def test_hint_table_built(self):
        program = build(if_else_cfg())
        table = find_simple_hammocks(program)
        assert len(table) == 1
        branch_pc = next(iter(table))[0]
        cfg = program.entry_function
        assert table.get(branch_pc).primary_cfm == cfg.block("M").first_pc

    def test_nested_excluded(self):
        program = build(nested_cfg())
        # Only the inner branch (B -> {B2, M}) is a simple if-hammock.
        table = find_simple_hammocks(program)
        cfg = program.entry_function
        inner_pc = cfg.block("B").instructions[-1].pc
        outer_pc = cfg.block("A").instructions[-1].pc
        assert table.is_diverge_branch(inner_pc)
        assert not table.is_diverge_branch(outer_pc)

    def test_pcs_helper(self):
        program = build(if_else_cfg())
        assert len(hammock_branch_pcs(program)) == 1
