"""Unit tests for the trace profiler (profile runs 1 and 2)."""

import random

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.profiling.profiler import (
    collect_reconvergence,
    profile_trace,
)


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def hammock_program(values):
    memory = Memory()
    memory.fill_array(1000, values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt").addi(20, 20, 1).jmp("merge")
    b.block("tk").addi(21, 21, 1)
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    program = build_program(b.build())
    interp = Interpreter(program, memory=memory)
    return program, interp.run()


class TestProfileRunOne:
    def test_edge_counts_match_trace(self):
        program, trace = hammock_program([0, 1, 0, 1, 0])
        profile = profile_trace(program, trace)
        edges = profile.edge_profile("main")
        assert edges.edge_count("body", "tk") == 2
        assert edges.edge_count("body", "nt") == 3
        assert edges.edge_count("nt", "merge") == 3
        assert edges.edge_count("head", "exit") == 1

    def test_branch_statistics(self):
        program, trace = hammock_program([1, 1, 0, 0, 0, 0])
        profile = profile_trace(program, trace)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        stats = profile.branches[branch_pc]
        assert stats.executions == 6
        assert stats.taken == 2
        assert stats.taken_rate == 2 / 6

    def test_mispredictions_counted_for_random_branch(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(400)]
        program, trace = hammock_program(values)
        profile = profile_trace(program, trace)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        stats = profile.branches[branch_pc]
        # ~50% branch: a predictor should get roughly half wrong.
        assert stats.misprediction_rate > 0.25
        assert profile.total_mispredictions >= stats.mispredictions

    def test_biased_branch_low_mispredictions(self):
        program, trace = hammock_program([0] * 400)
        profile = profile_trace(program, trace)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        assert profile.branches[branch_pc].misprediction_rate < 0.05

    def test_mispredicting_branches_sorted(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(200)]
        program, trace = hammock_program(values)
        profile = profile_trace(program, trace)
        ordered = profile.mispredicting_branches()
        counts = [b.mispredictions for b in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_total_instructions_recorded(self):
        program, trace = hammock_program([0] * 10)
        profile = profile_trace(program, trace)
        assert profile.total_instructions == trace.instruction_count


class TestProfileRunTwo:
    def test_merge_block_seen_on_both_sides(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(300)]
        program, trace = hammock_program(values)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        recon = collect_reconvergence(program, trace, [branch_pc])[branch_pc]
        merge_pc = cfg.block("merge").first_pc
        assert recon.fraction(True, merge_pc) > 0.95
        assert recon.fraction(False, merge_pc) > 0.95

    def test_side_blocks_seen_on_one_side_only(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(300)]
        program, trace = hammock_program(values)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        recon = collect_reconvergence(program, trace, [branch_pc])[branch_pc]
        tk_pc = cfg.block("tk").first_pc
        nt_pc = cfg.block("nt").first_pc
        assert recon.fraction(True, tk_pc) > 0.95
        assert recon.fraction(False, tk_pc) == 0.0
        assert recon.fraction(False, nt_pc) > 0.95

    def test_distances_reasonable(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(300)]
        program, trace = hammock_program(values)
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        recon = collect_reconvergence(program, trace, [branch_pc])[branch_pc]
        merge_pc = cfg.block("merge").first_pc
        # merge is 2-3 dynamic instructions past the branch on either side.
        assert recon.mean_distance(True, merge_pc) < 10
        assert recon.mean_distance(False, merge_pc) < 10

    def test_window_stops_at_branch_reexecution(self):
        """A loop-head-style branch must not see a loop-carried 'merge':
        the window closes when the branch's own block re-executes."""
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(300)]
        program, trace = hammock_program(values)
        cfg = program.entry_function
        # The 'head' branch re-executes every iteration; nothing past one
        # iteration may be recorded for it.
        head_pc = cfg.block("head").instructions[-1].pc
        recon = collect_reconvergence(program, trace, [head_pc])[head_pc]
        # 'head' is only ever followed by at most one iteration's blocks on
        # the not-taken side; the taken side goes straight to exit.
        exit_pc = cfg.block("exit").first_pc
        assert recon.fraction(True, exit_pc) > 0.0
        # The not-taken side never reaches 'exit' before head re-executes.
        assert recon.fraction(False, exit_pc) == 0.0

    def test_sampling_cap_respected(self):
        rng = random.Random(1)
        values = [rng.randrange(2) for _ in range(300)]
        program, trace = hammock_program(values)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        recon = collect_reconvergence(
            program, trace, [branch_pc], max_instances_per_branch=50
        )[branch_pc]
        assert sum(recon.instances) <= 50

    def test_uncandidated_branches_ignored(self):
        program, trace = hammock_program([0] * 20)
        result = collect_reconvergence(program, trace, [])
        assert result == {}
