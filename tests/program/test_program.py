"""Unit tests for the Program container and PC assignment."""

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import INSTRUCTION_BYTES, Condition
from repro.program.program import ENTRY_FUNCTION, Program


def two_function_program():
    main = CFGBuilder("main")
    main.block("entry").movi(1, 1).call("helper")
    main.block("end").halt()
    helper = CFGBuilder("helper")
    helper.block("h").addi(1, 1, 1).ret()
    program = Program("p")
    program.add_function(main.build())
    program.add_function(helper.build())
    return program.seal()


class TestConstruction:
    def test_requires_main(self):
        program = Program("p")
        b = CFGBuilder("not_main")
        b.block("x").halt()
        program.add_function(b.build())
        with pytest.raises(ValueError):
            program.seal()

    def test_duplicate_function_rejected(self):
        program = Program("p")
        b = CFGBuilder("main")
        b.block("x").halt()
        program.add_function(b.build())
        b2 = CFGBuilder("main")
        b2.block("y").halt()
        with pytest.raises(ValueError):
            program.add_function(b2.build())

    def test_unknown_call_target_rejected(self):
        program = Program("p")
        b = CFGBuilder("main")
        b.block("entry").call("ghost")
        b.block("end").halt()
        program.add_function(b.build())
        with pytest.raises(ValueError):
            program.seal()

    def test_sealed_rejects_new_functions(self):
        program = two_function_program()
        extra = CFGBuilder("extra")
        extra.block("x").halt()
        with pytest.raises(RuntimeError):
            program.add_function(extra.build())

    def test_seal_is_idempotent(self):
        program = two_function_program()
        assert program.seal() is program


class TestPcAssignment:
    def test_pcs_contiguous_and_unique(self):
        program = two_function_program()
        pcs = [
            instr.pc
            for cfg in program.functions()
            for block in cfg
            for instr in block.instructions
        ]
        assert len(pcs) == len(set(pcs))
        assert sorted(pcs) == pcs
        deltas = {b - a for a, b in zip(pcs, pcs[1:])}
        assert deltas == {INSTRUCTION_BYTES}

    def test_locate_roundtrip(self):
        program = two_function_program()
        for cfg in program.functions():
            for block in cfg:
                for index, instr in enumerate(block.instructions):
                    function, found_block, found_index = program.locate(
                        instr.pc
                    )
                    assert function == cfg.name
                    assert found_block is block
                    assert found_index == index
                    assert program.instruction_at(instr.pc) is instr

    def test_block_starting_at(self):
        program = two_function_program()
        entry = program.entry_function.entry
        assert program.block_starting_at(entry.first_pc) == ("main", entry)
        # Second instruction of a block is not a block start.
        second_pc = entry.instructions[1].pc
        assert program.block_starting_at(second_pc) is None
        assert program.block_starting_at(0xDEAD0000) is None

    def test_unsealed_queries_rejected(self):
        program = Program("p")
        b = CFGBuilder("main")
        b.block("x").halt()
        program.add_function(b.build())
        with pytest.raises(RuntimeError):
            program.locate(0x1000)


class TestQueries:
    def test_entry_function(self):
        program = two_function_program()
        assert program.entry_function.name == ENTRY_FUNCTION

    def test_contains(self):
        program = two_function_program()
        assert "helper" in program
        assert "ghost" not in program

    def test_instruction_count(self):
        program = two_function_program()
        assert program.instruction_count() == 5

    def test_static_conditional_branches(self):
        b = CFGBuilder("main")
        b.block("a").br(Condition.EQ, 1, imm=0, taken="c")
        b.block("b").nop()
        b.block("c").halt()
        program = Program("p")
        program.add_function(b.build())
        program.seal()
        branches = list(program.static_conditional_branches())
        assert len(branches) == 1
        assert branches[0][0] == "main"
        assert branches[0][1] == "a"
