"""Unit tests for the architectural interpreter."""

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import ExecutionLimitExceeded, Interpreter
from repro.program.memory import Memory
from repro.program.program import Program


def build_program(*cfgs):
    program = Program("test")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def straightline():
    b = CFGBuilder("main")
    blk = b.block("entry")
    blk.movi(1, 7)
    blk.movi(2, 5)
    blk.add(3, 1, 2)
    blk.sub(4, 1, 2)
    blk.mul(5, 1, 2)
    blk.halt()
    return build_program(b.build())


class TestArithmetic:
    def test_alu_results(self):
        interp = Interpreter(straightline())
        interp.run()
        regs = interp.registers
        assert regs.read(3) == 12
        assert regs.read(4) == 2
        assert regs.read(5) == 35

    def test_shifts_and_logic(self):
        b = CFGBuilder("main")
        blk = b.block("entry")
        blk.movi(1, 0b1100)
        blk.movi(2, 2)
        blk.shl(3, 1, 2)
        blk.shr(4, 1, 2)
        blk.and_(5, 1, 2)
        blk.or_(6, 1, 2)
        blk.xor(7, 1, 2)
        blk.halt()
        interp = Interpreter(build_program(b.build()))
        interp.run()
        regs = interp.registers
        assert regs.read(3) == 0b110000
        assert regs.read(4) == 0b11
        assert regs.read(5) == 0b1100 & 2
        assert regs.read(6) == 0b1100 | 2
        assert regs.read(7) == 0b1100 ^ 2

    def test_fdiv_by_zero_reads_zero(self):
        b = CFGBuilder("main")
        blk = b.block("entry")
        blk.movi(1, 10)
        blk.fdiv(2, 1, 0)  # r0 is always 0
        blk.halt()
        interp = Interpreter(build_program(b.build()))
        interp.run()
        assert interp.registers.read(2) == 0


class TestControlFlow:
    def test_taken_branch(self):
        b = CFGBuilder("main")
        a = b.block("A")
        a.movi(1, 5)
        a.br(Condition.GT, 1, imm=0, taken="C")
        b.block("B").movi(2, 111).jmp("D")
        b.block("C").movi(2, 222)
        b.block("D").halt()
        interp = Interpreter(build_program(b.build()))
        trace = interp.run()
        assert interp.registers.read(2) == 222
        executed = [r.block.name for r in trace]
        assert executed == ["A", "C", "D"]
        assert trace.records[0].taken is True

    def test_not_taken_branch(self):
        b = CFGBuilder("main")
        a = b.block("A")
        a.movi(1, 0)
        a.br(Condition.GT, 1, imm=0, taken="C")
        b.block("B").movi(2, 111).jmp("D")
        b.block("C").movi(2, 222)
        b.block("D").halt()
        interp = Interpreter(build_program(b.build()))
        trace = interp.run()
        assert interp.registers.read(2) == 111
        assert [r.block.name for r in trace] == ["A", "B", "D"]
        assert trace.records[0].taken is False

    def test_loop_iterates(self):
        b = CFGBuilder("main")
        b.block("init").movi(1, 0)
        b.block("head").br(Condition.GE, 1, imm=5, taken="exit")
        b.block("body").addi(1, 1, 1).addi(2, 2, 10).jmp("head")
        b.block("exit").halt()
        interp = Interpreter(build_program(b.build()))
        trace = interp.run()
        assert interp.registers.read(1) == 5
        assert interp.registers.read(2) == 50
        # head runs 6 times (5 not-taken + 1 taken)
        heads = [r for r in trace if r.block.name == "head"]
        assert len(heads) == 6
        assert [r.taken for r in heads] == [False] * 5 + [True]


class TestCallsAndReturns:
    def test_call_return(self):
        main = CFGBuilder("main")
        entry = main.block("entry")
        entry.movi(1, 3)
        entry.call("double")
        main.block("after").addi(2, 1, 100).halt()
        callee = CFGBuilder("double")
        callee.block("body").add(1, 1, 1).ret()
        interp = Interpreter(build_program(main.build(), callee.build()))
        trace = interp.run()
        assert interp.registers.read(1) == 6
        assert interp.registers.read(2) == 106
        assert [(r.function, r.block.name) for r in trace] == [
            ("main", "entry"),
            ("double", "body"),
            ("main", "after"),
        ]

    def test_nested_calls(self):
        main = CFGBuilder("main")
        main.block("entry").movi(1, 1).call("outer")
        main.block("end").halt()
        outer = CFGBuilder("outer")
        outer.block("o").addi(1, 1, 10).call("inner")
        outer.block("oret").addi(1, 1, 100).ret()
        inner = CFGBuilder("inner")
        inner.block("i").addi(1, 1, 1000).ret()
        interp = Interpreter(
            build_program(main.build(), outer.build(), inner.build())
        )
        interp.run()
        assert interp.registers.read(1) == 1111

    def test_return_from_main_halts(self):
        b = CFGBuilder("main")
        b.block("entry").movi(1, 9).ret()
        interp = Interpreter(build_program(b.build()))
        trace = interp.run()
        assert len(trace) == 1
        assert interp.registers.read(1) == 9


class TestMemory:
    def test_load_store(self):
        b = CFGBuilder("main")
        blk = b.block("entry")
        blk.movi(1, 100)   # base address
        blk.movi(2, 42)
        blk.store(2, 1, offset=3)   # mem[103] = 42
        blk.load(3, 1, offset=3)    # r3 = mem[103]
        blk.halt()
        interp = Interpreter(build_program(b.build()))
        trace = interp.run()
        assert interp.registers.read(3) == 42
        assert trace.records[0].mem_addrs == (103, 103)

    def test_prefilled_memory(self):
        mem = Memory()
        mem.fill_array(200, [5, 6, 7])
        b = CFGBuilder("main")
        blk = b.block("entry")
        blk.movi(1, 200)
        blk.load(2, 1, offset=1)
        blk.halt()
        interp = Interpreter(build_program(b.build()), memory=mem)
        interp.run()
        assert interp.registers.read(2) == 6

    def test_unwritten_memory_reads_zero(self):
        mem = Memory()
        assert mem.load(0xDEAD) == 0

    def test_fill_random_is_deterministic(self):
        m1, m2 = Memory(), Memory()
        m1.fill_random(0, 50, seed=7)
        m2.fill_random(0, 50, seed=7)
        assert [m1.load(i) for i in range(50)] == [
            m2.load(i) for i in range(50)
        ]


class TestLimitsAndTraceStats:
    def test_infinite_loop_hits_budget(self):
        b = CFGBuilder("main")
        b.block("spin").jmp("spin")
        interp = Interpreter(build_program(b.build()), max_instructions=1000)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run()

    def test_trace_statistics(self):
        b = CFGBuilder("main")
        b.block("init").movi(1, 0)
        b.block("head").br(Condition.GE, 1, imm=3, taken="exit")
        body = b.block("body")
        body.addi(1, 1, 1)
        body.store(1, 0, offset=500)
        body.load(2, 0, offset=500)
        body.jmp("head")
        b.block("exit").halt()
        trace = Interpreter(build_program(b.build())).run()
        assert trace.branch_count == 4   # 3 not-taken + 1 taken
        assert trace.taken_count == 1
        assert trace.load_count == 3
        assert trace.store_count == 3
        outcomes = trace.branch_outcomes()
        assert len(outcomes) == 4
        assert all(pc == outcomes[0][0] for pc, _ in outcomes)
