"""Unit tests for BTB, RAS and indirect target cache."""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.indirect import IndirectTargetCache
from repro.branch.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(num_entries=16, associativity=2)
        assert btb.lookup(0x1000) is None
        btb.insert(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.hits == 1
        assert btb.misses == 1

    def test_update_existing(self):
        btb = BranchTargetBuffer(num_entries=16, associativity=2)
        btb.insert(0x1000, 0x2000)
        btb.insert(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(num_entries=2, associativity=2)  # 1 set
        btb.insert(0x1000, 0xA)
        btb.insert(0x1004, 0xB)
        btb.lookup(0x1000)           # touch A so B becomes LRU
        btb.insert(0x1008, 0xC)      # evicts B
        assert btb.lookup(0x1000) == 0xA
        assert btb.lookup(0x1004) is None
        assert btb.lookup(0x1008) == 0xC

    def test_hit_rate(self):
        btb = BranchTargetBuffer(num_entries=16, associativity=2)
        btb.insert(0x1000, 0xA)
        btb.lookup(0x1000)
        btb.lookup(0x2000)
        assert btb.hit_rate == 0.5


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.peek() == 1
        assert len(ras) == 1


class TestIndirectTargetCache:
    def test_predict_after_update(self):
        itc = IndirectTargetCache(num_entries=64, history_bits=0)
        assert itc.predict(0x1000) is None
        itc.update(0x1000, 0x5000)
        assert itc.predict(0x1000) == 0x5000

    def test_history_changes_index(self):
        itc = IndirectTargetCache(num_entries=64, history_bits=4)
        itc.update(0x1000, 0x5000)
        # History shifted by the update; same PC may now map elsewhere,
        # but updating again and predicting under the same history hits.
        itc.update(0x1000, 0x6000)
        assert itc.predict(0x1000) == 0x6000
