"""Unit tests for the direction predictors."""

import random

import pytest

from repro.branch import make_predictor
from repro.branch.base import GlobalHistory
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.perfect import PerfectPredictor


def run_stream(predictor, outcomes, pc=0x1000):
    """Drive the full predict/spec_update/train/repair protocol over an
    outcome stream (history is repaired on mispredictions, as a front end
    does on a flush); return accuracy."""
    correct = 0
    for taken in outcomes:
        pred = predictor.predict(pc)
        predictor.spec_update(pred.taken)
        predictor.train(pred, taken)
        if pred.taken == taken:
            correct += 1
        else:
            predictor.repair(pred, taken)
    return correct / len(outcomes)


class TestGlobalHistory:
    def test_shift(self):
        ghr = GlobalHistory(4)
        ghr.shift(True)
        ghr.shift(False)
        ghr.shift(True)
        assert ghr.bits == 0b101

    def test_width_mask(self):
        ghr = GlobalHistory(3)
        for _ in range(10):
            ghr.shift(True)
        assert ghr.bits == 0b111

    def test_with_last(self):
        ghr = GlobalHistory(4, 0b1010)
        assert ghr.with_last(True) == 0b1011
        assert ghr.with_last(False) == 0b1010

    def test_snapshot_restore(self):
        ghr = GlobalHistory(8)
        ghr.shift(True)
        snap = ghr.snapshot()
        ghr.shift(False)
        ghr.restore(snap)
        assert ghr.bits == snap

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(table_size=64)
        accuracy = run_stream(p, [True] * 100)
        assert accuracy > 0.95

    def test_learns_never_taken(self):
        p = BimodalPredictor(table_size=64)
        accuracy = run_stream(p, [False] * 100)
        assert accuracy > 0.9

    def test_cannot_learn_alternating_well(self):
        # Bimodal has no history: strict alternation defeats it.
        p = BimodalPredictor(table_size=64)
        accuracy = run_stream(p, [i % 2 == 0 for i in range(200)])
        assert accuracy < 0.7

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        p = GSharePredictor(table_size=1024, history_bits=8)
        accuracy = run_stream(p, [i % 2 == 0 for i in range(500)])
        assert accuracy > 0.9

    def test_learns_period_4_pattern(self):
        p = GSharePredictor(table_size=1024, history_bits=8)
        pattern = [True, True, False, False] * 200
        assert run_stream(p, pattern) > 0.9

    def test_random_stream_is_hard(self):
        rng = random.Random(42)
        p = GSharePredictor(table_size=1024, history_bits=8)
        accuracy = run_stream(p, [rng.random() < 0.5 for _ in range(1000)])
        assert accuracy < 0.65


class TestPerceptron:
    def test_learns_biased_branch(self):
        p = PerceptronPredictor(num_perceptrons=64, history_bits=16)
        assert run_stream(p, [True] * 200) > 0.95

    def test_learns_history_correlation(self):
        # Outcome = outcome three branches ago: linearly separable.
        p = PerceptronPredictor(num_perceptrons=64, history_bits=16)
        outcomes = [True, False, True]
        for i in range(3, 600):
            outcomes.append(outcomes[i - 3])
        assert run_stream(p, outcomes) > 0.9

    def test_theta_formula(self):
        p = PerceptronPredictor(history_bits=31)
        assert p.theta == int(1.93 * 31 + 14)

    def test_weights_saturate(self):
        p = PerceptronPredictor(
            num_perceptrons=4, history_bits=4, weight_bits=4
        )
        run_stream(p, [True] * 500)
        flat = [w for ws in p._weights for w in ws]
        assert max(flat) <= 7
        assert min(flat) >= -8

    def test_outperforms_gshare_on_long_correlation(self):
        # A period-24 pseudo-random pattern: a 30-bit-history perceptron
        # sees the full period, a 6-bit-history gshare cannot.
        rng = random.Random(1)
        outcomes = [rng.random() < 0.5 for _ in range(24)]
        for i in range(24, 2000):
            outcomes.append(outcomes[i - 24])
        perc = PerceptronPredictor(num_perceptrons=64, history_bits=30)
        gsh = GSharePredictor(table_size=256, history_bits=6)
        assert run_stream(perc, outcomes) > run_stream(gsh, outcomes) + 0.05


class TestHybrid:
    def test_learns_biased_branch(self):
        p = HybridPredictor(table_size=256, history_bits=8)
        assert run_stream(p, [True] * 200) > 0.9

    def test_chooser_picks_gshare_for_patterns(self):
        p = HybridPredictor(table_size=1024, history_bits=8)
        pattern = [i % 2 == 0 for i in range(600)]
        assert run_stream(p, pattern) > 0.85

    def test_history_restore_propagates(self):
        p = HybridPredictor(table_size=256, history_bits=8)
        p.spec_update(True)
        snap = p.snapshot()
        p.spec_update(False)
        p.restore(snap)
        assert p.history.bits == snap
        assert p.gshare.history.bits == snap
        assert p.bimodal.history.bits == snap


class TestPerfect:
    def test_oracle_followed(self):
        p = PerfectPredictor()
        p.set_oracle(True)
        assert p.predict(0x1000).taken is True
        p.set_oracle(False)
        assert p.predict(0x1000).taken is False

    def test_without_oracle_predicts_not_taken(self):
        p = PerfectPredictor()
        assert p.predict(0x1000).taken is False


class TestFactory:
    def test_known_kinds(self):
        for kind in ("perceptron", "gshare", "bimodal", "hybrid", "perfect"):
            assert make_predictor(kind) is not None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("tage")
