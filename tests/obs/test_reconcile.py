"""Trace validation and event-vs-stats reconciliation (repro.obs.reconcile)."""

import dataclasses
import json

import pytest

from repro.errors import TraceValidationError
from repro.obs.events import SCHEMA
from repro.obs.reconcile import (
    reconcile_directory,
    reconcile_trace,
    trace_metrics,
    validate_trace_file,
)
from repro.uarch.stats import SimStats


def _stats_dict(**overrides):
    stats = SimStats()
    for name, value in overrides.items():
        setattr(stats, name, value)
    return dataclasses.asdict(stats)


def _records(stats=None):
    """A minimal well-formed trace: one terminal dpred episode ending in
    exit case 3, one flush, one fork."""
    if stats is None:
        stats = _stats_dict(
            dpred_entries=1,
            pipeline_flushes=1,
            dualpath_forks=1,
            select_uops=2,
            exit_cases={1: 0, 2: 0, 3: 1, 4: 0, 5: 0, 6: 0},
        )
    return [
        {"t": "header", "schema": SCHEMA, "benchmark": "gzip", "config": "dmp"},
        {"t": "machine", "mode": "dmp", "engine": "fast"},
        {"t": "ep-enter", "ep": 0, "kind": "dpred", "pc": 64, "depth": 1,
         "cycle": 3, "mispredicted": True},
        {"t": "path", "ep": 0, "role": "predicted", "outcome": "cfm", "n": 7},
        {"t": "flush", "site": "mispredict", "cycle": 5},
        {"t": "fork", "pc": 128, "cycle": 6},
        {"t": "ep-exit", "ep": 0, "kind": "dpred", "cases": [3],
         "restart": False, "selects": 2, "cycle": 9},
        {"t": "end", "stats": stats, "events": 8},
    ]


def _write(tmp_path, records, name="trace.jsonl"):
    path = tmp_path / name
    with open(path, "w", encoding="utf-8") as handle:
        for seq, record in enumerate(records):
            record = dict(record)
            record.setdefault("i", seq)
            handle.write(json.dumps(record) + "\n")
    return path


class TestValidate:
    def test_well_formed_trace_passes(self, tmp_path):
        header = validate_trace_file(_write(tmp_path, _records()))
        assert header["benchmark"] == "gzip"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace_file(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": "header"\n')
        with pytest.raises(TraceValidationError, match="not valid JSON"):
            validate_trace_file(path)

    def test_missing_header_rejected(self, tmp_path):
        path = _write(tmp_path, _records()[1:])
        with pytest.raises(TraceValidationError, match="header"):
            validate_trace_file(path)

    def test_wrong_schema_rejected(self, tmp_path):
        records = _records()
        records[0]["schema"] = "other-trace/9"
        with pytest.raises(TraceValidationError, match="schema"):
            validate_trace_file(_write(tmp_path, records))

    def test_unknown_record_type_rejected(self, tmp_path):
        records = _records()
        records.insert(2, {"t": "telemetry"})
        with pytest.raises(TraceValidationError, match="unknown record type"):
            validate_trace_file(_write(tmp_path, records))

    def test_non_increasing_sequence_rejected(self, tmp_path):
        records = [dict(r, i=0) for r in _records()]
        with pytest.raises(TraceValidationError, match="strictly increase"):
            validate_trace_file(_write(tmp_path, records))

    def test_missing_required_field_rejected(self, tmp_path):
        records = _records()
        del records[2]["pc"]
        with pytest.raises(TraceValidationError, match="missing"):
            validate_trace_file(_write(tmp_path, records))

    def test_truncated_trace_rejected(self, tmp_path):
        path = _write(tmp_path, _records()[:-1])
        with pytest.raises(TraceValidationError, match="truncated"):
            validate_trace_file(path)


class TestReconcile:
    def test_well_formed_trace_reconciles(self, tmp_path):
        summary = reconcile_trace(_write(tmp_path, _records()))
        assert summary.benchmark == "gzip"
        assert summary.config == "dmp"
        assert summary.episodes == 1
        assert summary.terminal_episodes == 1
        assert summary.restarted_episodes == 0
        assert summary.exit_cases == {3: 1}
        assert summary.flushes == 1 and summary.forks == 1
        assert summary.select_uops == 2
        assert "gzip/dmp" in summary.describe()

    def test_stringified_exit_case_keys_reconcile(self, tmp_path):
        # JSON round trips stringify the histogram's int keys.
        records = _records()
        records[-1]["stats"]["exit_cases"] = {
            str(k): v for k, v in records[-1]["stats"]["exit_cases"].items()
        }
        assert reconcile_trace(_write(tmp_path, records)).exit_cases == {3: 1}

    def test_terminal_episode_with_no_case_rejected(self, tmp_path):
        records = _records()
        records[6]["cases"] = []
        with pytest.raises(TraceValidationError, match="exactly one"):
            reconcile_trace(_write(tmp_path, records))

    def test_restarted_episode_with_case_rejected(self, tmp_path):
        records = _records()
        records[6]["restart"] = True
        with pytest.raises(TraceValidationError, match="restarted episode"):
            reconcile_trace(_write(tmp_path, records))

    def test_unbalanced_episode_rejected(self, tmp_path):
        records = _records()
        del records[6]  # drop the ep-exit
        with pytest.raises(TraceValidationError, match="never exited"):
            reconcile_trace(_write(tmp_path, records))

    def test_exit_without_enter_rejected(self, tmp_path):
        records = _records()
        del records[3]  # its path event would trip the episode check first
        del records[2]  # drop the ep-enter
        with pytest.raises(TraceValidationError, match="without enter"):
            reconcile_trace(_write(tmp_path, records))

    def test_path_outside_episode_rejected(self, tmp_path):
        records = _records()
        del records[2]  # drop the ep-enter; the path event is now orphaned
        with pytest.raises(TraceValidationError, match="outside"):
            reconcile_trace(_write(tmp_path, records))

    def test_histogram_mismatch_rejected(self, tmp_path):
        records = _records()
        records[6]["cases"] = [5]  # stats say case 3
        with pytest.raises(TraceValidationError, match="histogram"):
            reconcile_trace(_write(tmp_path, records))

    def test_flush_count_mismatch_rejected(self, tmp_path):
        records = _records()
        records[-1]["stats"]["pipeline_flushes"] = 7
        with pytest.raises(TraceValidationError, match="pipeline_flushes"):
            reconcile_trace(_write(tmp_path, records))

    def test_select_count_mismatch_rejected(self, tmp_path):
        records = _records()
        records[-1]["stats"]["select_uops"] = 99
        with pytest.raises(TraceValidationError, match="select_uops"):
            reconcile_trace(_write(tmp_path, records))


class TestDirectoryAndMetrics:
    def test_directory_reconciles_sorted(self, tmp_path):
        _write(tmp_path, _records(), name="b__dmp.jsonl")
        _write(tmp_path, _records(), name="a__dmp.jsonl")
        summaries = reconcile_directory(tmp_path)
        assert [s.path.endswith("a__dmp.jsonl") for s in summaries] == \
            [True, False]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(TraceValidationError, match="no .*jsonl"):
            reconcile_directory(tmp_path)

    def test_trace_metrics_from_summary(self, tmp_path):
        summary = reconcile_trace(_write(tmp_path, _records()))
        metrics = trace_metrics(summary)
        assert metrics.benchmark == "gzip"
        assert metrics.config == "dmp"
        assert metrics.dpred_entries == 1
        assert metrics.exit_cases[3] == 1
        assert metrics.terminal_episodes == 1
