"""The tracer primitives (repro.obs.events) and the watchdog hang dump."""

import json

import pytest

from repro.errors import SimulationHangError
from repro.obs.events import (
    DEFAULT_RING_CAPACITY,
    SCHEMA,
    CollectorTracer,
    JsonlTracer,
    Tracer,
)
from repro.obs.reconcile import validate_trace_file
from repro.uarch.stats import SimStats
from repro.validation.watchdog import Watchdog


class TestRing:
    def test_capacity_bounds_retention(self):
        tracer = Tracer(capacity=4)
        for pc in range(10):
            tracer.note_fork(pc, cycle=pc)
        assert tracer.events_emitted == 10
        kept = tracer.records
        assert len(kept) == 4
        assert [r["pc"] for r in kept] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert Tracer()._ring.maxlen == DEFAULT_RING_CAPACITY

    def test_tail(self):
        tracer = Tracer(capacity=None)
        for pc in range(5):
            tracer.note_fork(pc, cycle=0)
        assert [r["pc"] for r in tracer.tail(2)] == [3, 4]
        assert len(tracer.tail(100)) == 5
        assert tracer.tail(0) == []

    def test_sequence_numbers_strictly_increase(self):
        tracer = CollectorTracer()
        tracer.note_flush("mispredict", cycle=1)
        tracer.note_fork(0x10, cycle=2)
        seqs = [r["i"] for r in tracer.records]
        assert seqs == sorted(set(seqs))


class TestEpisodeFrames:
    def test_exit_case_charged_to_innermost_episode(self):
        tracer = CollectorTracer()
        tracer.episode_enter("dpred", pc=0x10, pos=0, depth=1, cycle=5,
                             mispredicted=True)
        tracer.episode_enter("dpred", pc=0x20, pos=3, depth=2, cycle=9,
                             mispredicted=False)
        tracer.note_exit_case(4)      # inner episode's case
        tracer.note_selects(2)
        tracer.episode_exit(restart=False, cycle=12)
        tracer.note_exit_case(3)      # now charged to the outer one
        tracer.episode_exit(restart=False, cycle=20)
        inner, outer = [r for r in tracer.records if r["t"] == "ep-exit"]
        assert inner["ep"] == 1 and inner["cases"] == [4]
        assert inner["selects"] == 2
        assert outer["ep"] == 0 and outer["cases"] == [3]
        assert tracer.open_episodes == 0

    def test_restarted_episode_keeps_empty_cases(self):
        tracer = CollectorTracer()
        tracer.episode_enter("loop", pc=0x10, pos=0, depth=1, cycle=0,
                             mispredicted=False)
        tracer.episode_exit(restart=True, cycle=4)
        (record,) = [r for r in tracer.records if r["t"] == "ep-exit"]
        assert record["restart"] is True and record["cases"] == []


class TestJsonlTracer:
    def _emit_run(self, path):
        tracer = JsonlTracer(path, meta={"benchmark": "gzip", "config": "dmp"})
        tracer.machine(mode="dmp", engine="fast")
        tracer.episode_enter("dpred", pc=0x40, pos=1, depth=1, cycle=3,
                             mispredicted=True)
        tracer.note_path("predicted", "cfm", 7)
        tracer.note_exit_case(3)
        tracer.episode_exit(restart=False, cycle=9)
        stats = SimStats()
        stats.dpred_entries = 1
        stats.record_exit_case(3)
        tracer.finish(stats)
        tracer.close()
        return tracer

    def test_round_trip_validates(self, tmp_path):
        path = tmp_path / "gzip__dmp.jsonl"
        self._emit_run(path)
        header = validate_trace_file(path)
        assert header["schema"] == SCHEMA
        assert header["benchmark"] == "gzip"

    def test_header_first_end_last(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = self._emit_run(path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["t"] == "header"
        assert records[-1]["t"] == "end"
        # The end record reports the events preceding it (itself excluded).
        assert records[-1]["events"] == tracer.events_emitted - 1
        assert records[-1]["stats"]["dpred_entries"] == 1

    def test_close_is_idempotent(self, tmp_path):
        tracer = self._emit_run(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()


class TestWatchdogHangDump:
    class _FakeConfig:
        mode = "dmp"
        watchdog_cycle_limit = None

    class _FakeSim:
        def __init__(self, tracer):
            self.config = TestWatchdogHangDump._FakeConfig()
            self.stats = SimStats()
            self.cycle = 0
            self.seq = 0
            self.last_retire_cycle = 0
            self.tracer = tracer

    def test_trip_dumps_recent_events(self):
        tracer = Tracer(capacity=8)
        for pc in range(20):
            tracer.note_fork(pc, cycle=pc)
        sim = self._FakeSim(tracer)
        sim.cycle = 200
        with pytest.raises(SimulationHangError) as exc_info:
            Watchdog(sim, cycle_limit=100).check(sim, where="dpred-fetch")
        recent = exc_info.value.report()["recent_events"]
        assert recent == tracer.tail()
        assert recent[-1]["pc"] == 19

    def test_untraced_sim_dumps_nothing(self):
        sim = self._FakeSim(tracer=None)
        sim.cycle = 200
        with pytest.raises(SimulationHangError) as exc_info:
            Watchdog(sim, cycle_limit=100).check(sim)
        assert "recent_events" not in exc_info.value.report()
