"""End-to-end tracing through the suite harness: serial, parallel and
the process-wide runtime toggle — and the bit-identity contract."""

import dataclasses
import os

import pytest

from repro.harness.experiment import BenchmarkContext, run_suite
from repro.obs.events import JsonlTracer
from repro.obs.reconcile import reconcile_directory, reconcile_trace
from repro.obs.runtime import (
    active_trace_dir,
    set_trace_dir,
    trace_path,
    tracing,
)
from repro.uarch.config import MachineConfig

ITERATIONS = 100


def _dejson(stats_dict):
    """Undo JSON's key stringification on a trace end record's stats."""
    out = dict(stats_dict)
    out["exit_cases"] = {
        int(case): count for case, count in out["exit_cases"].items()
    }
    return out

CONFIGS = {
    "base": MachineConfig.baseline(),
    "dmp": MachineConfig.dmp(enhanced=True),
}


class TestRuntimeToggle:
    def test_tracing_context_restores_previous(self):
        assert active_trace_dir() is None
        with tracing("somewhere"):
            assert active_trace_dir() == "somewhere"
            with tracing(None):  # disables tracing for the inner block
                assert active_trace_dir() is None
            assert active_trace_dir() == "somewhere"
        assert active_trace_dir() is None

    def test_set_returns_previous(self):
        try:
            assert set_trace_dir("a") is None
            assert set_trace_dir(None) == "a"
        finally:
            set_trace_dir(None)

    def test_trace_path_sanitizes_labels(self, tmp_path):
        path = trace_path(str(tmp_path), "gzip", "DHP/perf conf")
        assert path == os.path.join(
            str(tmp_path), "gzip__DHP-perf-conf.jsonl"
        )


class TestTracedSuite:
    def test_serial_traced_suite_reconciles_and_matches(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        plain = run_suite(CONFIGS, benchmarks=("gzip",),
                          iterations=ITERATIONS)
        traced = run_suite(CONFIGS, benchmarks=("gzip",),
                          iterations=ITERATIONS, trace_dir=trace_dir)
        assert traced == plain  # tracing never perturbs the stats
        summaries = reconcile_directory(trace_dir)
        assert {(s.benchmark, s.config) for s in summaries} == {
            ("gzip", "base"), ("gzip", "dmp"),
        }
        for summary in summaries:
            stats = traced.stats(summary.benchmark, summary.config)
            assert _dejson(summary.stats) == dataclasses.asdict(stats)

    def test_parallel_traced_suite_matches_serial(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = run_suite(CONFIGS, benchmarks=("gzip", "parser"),
                           iterations=ITERATIONS, trace_dir=serial_dir)
        parallel = run_suite(CONFIGS, benchmarks=("gzip", "parser"),
                             iterations=ITERATIONS, jobs=2,
                             trace_dir=parallel_dir)
        assert parallel == serial
        serial_sums = reconcile_directory(serial_dir)
        parallel_sums = reconcile_directory(parallel_dir)
        assert len(parallel_sums) == 4
        # Workers wrote per-cell files; the two trees reconcile to the
        # same episode accounting in the same (sorted) order.
        for a, b in zip(serial_sums, parallel_sums):
            assert (a.benchmark, a.config) == (b.benchmark, b.config)
            assert a.exit_cases == b.exit_cases
            assert a.stats == b.stats

    def test_runtime_toggle_reaches_run_suite(self, tmp_path):
        trace_dir = str(tmp_path / "toggled")
        with tracing(trace_dir):
            run_suite({"base": CONFIGS["base"]}, benchmarks=("gzip",),
                      iterations=ITERATIONS)
        assert os.listdir(trace_dir) == ["gzip__base.jsonl"]
        reconcile_trace(os.path.join(trace_dir, "gzip__base.jsonl"))


class TestTracedSimulateBypassesMemo:
    def test_traced_run_always_simulates(self, tmp_path):
        context = BenchmarkContext("gzip", iterations=ITERATIONS, seed=0)
        config = CONFIGS["dmp"]
        first = context.simulate(config)
        runs_before = context.sims_run
        assert context.simulate(config) is first  # memo hit
        assert context.sims_run == runs_before

        out = trace_path(str(tmp_path), "gzip", "dmp")
        tracer = JsonlTracer(out, meta={"benchmark": "gzip", "config": "dmp"})
        try:
            traced = context.simulate(config, tracer=tracer)
        finally:
            tracer.close()
        assert context.sims_run == runs_before + 1  # memo bypassed
        assert dataclasses.asdict(traced) == dataclasses.asdict(first)
        reconcile_trace(out)
