"""Run-report rollups (repro.obs.metrics)."""

import dataclasses
import json

import pytest

from repro.core.modes import ExitCase
from repro.obs.metrics import REPORT_SCHEMA, RunMetrics, SuiteReport
from repro.uarch.stats import SimStats


def _stats(**overrides):
    stats = SimStats()
    defaults = dict(
        cycles=1000,
        retired_instructions=2000,
        executed_instructions=2500,
        retired_branches=200,
        mispredictions=40,
        pipeline_flushes=10,
        dpred_entries=25,
        dpred_restarts=2,
        select_uops=30,
        extra_uops=20,
    )
    defaults.update(overrides)
    for name, value in defaults.items():
        setattr(stats, name, value)
    return stats


class TestRunMetrics:
    def test_derived_quantities(self):
        m = RunMetrics.from_stats(_stats(), benchmark="gzip", config="dmp")
        assert m.ipc == pytest.approx(2.0)
        assert m.misprediction_rate == pytest.approx(0.2)
        assert m.mpki == pytest.approx(20.0)
        # 40 mispredictions, 10 flushed -> 75% converted to predication.
        assert m.flush_avoidance_rate == pytest.approx(0.75)
        assert m.dpred_coverage == pytest.approx(25 / 200)
        assert m.uop_overhead == pytest.approx((20 + 30) / 2500)

    def test_zero_denominators_yield_zero(self):
        m = RunMetrics.from_stats(SimStats())
        assert m.ipc == 0.0
        assert m.mpki == 0.0
        assert m.flush_avoidance_rate == 0.0
        assert m.dpred_coverage == 0.0
        assert m.uop_overhead == 0.0

    def test_accepts_json_round_tripped_dict(self):
        # A trace end record's stats payload: keys stringified by JSON.
        payload = json.loads(json.dumps(dataclasses.asdict(_stats())))
        m = RunMetrics.from_stats(payload, benchmark="mcf", config="dhp")
        assert set(m.exit_cases) == {int(case) for case in ExitCase}
        assert m.ipc == pytest.approx(2.0)

    def test_terminal_episodes(self):
        stats = _stats()
        stats.record_exit_case(1)
        stats.record_exit_case(6)
        stats.record_exit_case(6)
        m = RunMetrics.from_stats(stats)
        assert m.terminal_episodes == 3


class TestSuiteReport:
    def _report(self):
        cells = [
            RunMetrics.from_stats(_stats(), benchmark=b, config=c)
            for b in ("parser", "gzip")
            for c in ("base", "dmp")
        ]
        return SuiteReport(cells, meta={"iterations": 800})

    def test_json_round_trip(self):
        payload = json.loads(self._report().to_json())
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["meta"] == {"iterations": 800}
        assert len(payload["cells"]) == 4
        assert payload["cells"][0]["benchmark"] == "parser"

    def test_csv_layout(self):
        lines = self._report().to_csv().splitlines()
        header = lines[0].split(",")
        assert header[0] == "benchmark"
        # One exit-case column per enum member, at the tail.
        assert header[-len(ExitCase):] == [
            f"exit_case_{case.value}" for case in ExitCase
        ]
        assert len(lines) == 1 + 4
        assert all(len(line.split(",")) == len(header) for line in lines[1:])

    def test_render_dispatch(self):
        report = self._report()
        assert report.render("json") == report.to_json()
        assert report.render("csv") == report.to_csv()
        with pytest.raises(ValueError):
            report.render("yaml")
