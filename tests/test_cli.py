"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import CONFIG_FACTORIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.configs == "base,dhp,dmp,dmp-enhanced"
        assert args.iterations == 800

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig7", "--benchmarks", "mcf", "--iterations", "100"]
        )
        assert args.name == "fig7"
        assert args.iterations == 100


class TestConfigFactories:
    def test_all_factories_build(self):
        for name, factory in CONFIG_FACTORIES.items():
            config = factory()
            assert config.describe(), name

    def test_enhanced_flags(self):
        config = CONFIG_FACTORIES["dmp-enhanced"]()
        assert config.multiple_cfm and config.early_exit


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip2" in out
        assert "dmp-enhanced" in out
        assert "fig7" in out

    def test_suite_small(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "eon" in out

    def test_suite_relative(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60", "--relative",
        ]) == 0
        assert "%" in capsys.readouterr().out

    def test_figure_table(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "perceptron" in capsys.readouterr().out

    def test_figure_dynamic(self, capsys):
        assert main([
            "figure", "fig1", "--benchmarks", "eon", "--iterations", "60",
        ]) == 0
        assert "wrong" in capsys.readouterr().out

    def test_inspect(self, capsys):
        assert main(["inspect", "gzip", "--iterations", "80"]) == 0
        out = capsys.readouterr().out
        assert "diverge branches" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--benchmarks", "soplex", "--iterations", "60"])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--configs", "warp", "--iterations", "60"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestValidateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.iterations == 400
        assert args.inject == ""
        assert not args.expect_faults

    def test_seed_flags(self):
        assert build_parser().parse_args(["suite", "--seed", "7"]).seed == 7
        assert build_parser().parse_args(
            ["inspect", "mcf", "--seed", "5"]
        ).seed == 5

    def test_seeded_suite_runs(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base",
            "--iterations", "60", "--seed", "3",
        ]) == 0
        assert "eon" in capsys.readouterr().out

    def test_clean_validate_exits_zero(self, capsys):
        assert main([
            "validate", "--benchmarks", "eon", "--iterations", "60",
        ]) == 0
        assert "ok" in capsys.readouterr().out

    def test_injected_faults_detected_exit_two(self, capsys):
        code = main([
            "validate", "--benchmarks", "parser", "--iterations", "120",
            "--inject", "self-cfm",
        ])
        assert code == 2
        assert "fault-injection report" in capsys.readouterr().out

    def test_expect_faults_ci_mode(self, capsys):
        assert main([
            "validate", "--benchmarks", "parser", "--iterations", "120",
            "--inject", "self-cfm,truncated-table", "--expect-faults",
        ]) == 0

    def test_unknown_fault_class_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--inject", "bit-rot"])

    def test_paranoid_flag_restored_after_run(self, capsys):
        from repro.validation.runtime import paranoid_enabled

        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60", "--paranoid",
        ]) == 0
        assert not paranoid_enabled()


class TestParallelCacheFlags:
    def test_flag_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert not args.timings
        fig_args = build_parser().parse_args(["figure", "fig7", "--jobs", "3"])
        assert fig_args.jobs == 3

    def test_suite_parallel_runs(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60", "--jobs", "2",
        ]) == 0
        assert "eon" in capsys.readouterr().out

    def test_suite_timings_report(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base",
            "--iterations", "60", "--timings",
        ]) == 0
        out = capsys.readouterr().out
        assert "timings (jobs=1)" in out
        assert "simulations:" in out

    def test_suite_cache_warm_second_run(self, tmp_path, capsys):
        argv = [
            "suite", "--benchmarks", "eon", "--configs", "base",
            "--iterations", "60", "--cache-dir", str(tmp_path), "--timings",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 disk hit(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 run, 0 memo hit(s), 1 disk hit(s)" in warm
        assert "0 miss(es)" in warm

    def test_no_cache_overrides_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base",
            "--iterations", "60", "--no-cache",
        ]) == 0
        assert not list(tmp_path.iterdir())

    def test_env_cache_dir_used(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base",
            "--iterations", "60",
        ]) == 0
        assert (tmp_path / "sim").exists()

    def test_figure_with_cache_and_jobs(self, tmp_path, capsys):
        assert main([
            "figure", "fig1", "--benchmarks", "eon", "--iterations", "60",
            "--cache-dir", str(tmp_path), "--jobs", "2",
        ]) == 0
        assert "wrong" in capsys.readouterr().out
        assert (tmp_path / "sim").exists()


class TestListFaults:
    def test_lists_every_fault_class(self, capsys):
        from repro.validation.faults import FAULT_NAMES

        assert main(["validate", "--list-faults"]) == 0
        out = capsys.readouterr().out
        for name in FAULT_NAMES:
            assert name in out
        # Detection-channel legend markers are present.
        assert "static" in out and "runtime" in out

    def test_list_faults_runs_no_simulation(self, capsys):
        # --list-faults must return before any benchmark work; keep it
        # instant so `repro validate --list-faults | grep` is a shell
        # reflex, not a coffee break.
        import time

        start = time.perf_counter()
        assert main(["validate", "--list-faults"]) == 0
        assert time.perf_counter() - start < 1.0
        capsys.readouterr()


class TestFuzzCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seeds == "0:50"
        assert args.jobs == 1 and not args.minimize
        assert args.iterations == 120 and args.max_gadgets == 4

    def test_seed_range_and_list_syntax(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("0:4") == [0, 1, 2, 3]
        assert _parse_seeds("7,3,7") == [7, 3, 7]
        with pytest.raises(SystemExit):
            _parse_seeds("4:4")
        with pytest.raises(SystemExit):
            _parse_seeds("banana")

    def test_empty_seed_list_is_an_error(self):
        # Regression test: "" and "," used to parse to [] so a typo'd
        # nightly invocation fuzzed nothing and still exited 0 "clean".
        from repro.cli import _parse_seeds

        for raw in ("", ",", " ", ",,,"):
            with pytest.raises(SystemExit):
                _parse_seeds(raw)

    def test_clean_sweep_exits_zero(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main([
            "fuzz", "--seeds", "0:2", "--output", str(out_file),
        ]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
        import json

        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro-fuzz/1"
        assert payload["checked"] == 2


class TestBenchFlags:
    def test_min_speedup_accepts_bare_number_as_cold_floor(self):
        from repro.cli import _parse_min_speedup

        assert _parse_min_speedup("") == {}
        assert _parse_min_speedup("1.5") == {"cold": 1.5}

    def test_min_speedup_per_group_floors(self):
        from repro.cli import _parse_min_speedup

        assert _parse_min_speedup("cold=1.2,dmp=1.3,batch=2.0") == {
            "cold": 1.2, "dmp": 1.3, "batch": 2.0,
        }
        assert _parse_min_speedup("dmp=3") == {"dmp": 3.0}

    def test_min_speedup_rejects_unknown_group_and_junk(self):
        from repro.cli import _parse_min_speedup

        for raw in ("warm=2.0", "cold=fast", "cold=", "=1.5"):
            with pytest.raises(ValueError):
                _parse_min_speedup(raw)

    def test_bench_parser_carries_profile_and_floor_flags(self):
        args = build_parser().parse_args([
            "bench", "--smoke", "--profile",
            "--min-speedup", "cold=1.2,dmp=1.3,batch=2.0",
        ])
        assert args.profile is True
        assert args.min_speedup == "cold=1.2,dmp=1.3,batch=2.0"

    def test_fuzz_parser_carries_gang_flag(self):
        args = build_parser().parse_args(["fuzz", "--gang"])
        assert args.gang is True
        assert build_parser().parse_args(["fuzz"]).gang is False
