"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import CONFIG_FACTORIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.configs == "base,dhp,dmp,dmp-enhanced"
        assert args.iterations == 800

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig7", "--benchmarks", "mcf", "--iterations", "100"]
        )
        assert args.name == "fig7"
        assert args.iterations == 100


class TestConfigFactories:
    def test_all_factories_build(self):
        for name, factory in CONFIG_FACTORIES.items():
            config = factory()
            assert config.describe(), name

    def test_enhanced_flags(self):
        config = CONFIG_FACTORIES["dmp-enhanced"]()
        assert config.multiple_cfm and config.early_exit


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip2" in out
        assert "dmp-enhanced" in out
        assert "fig7" in out

    def test_suite_small(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "eon" in out

    def test_suite_relative(self, capsys):
        assert main([
            "suite", "--benchmarks", "eon", "--configs", "base,dmp",
            "--iterations", "60", "--relative",
        ]) == 0
        assert "%" in capsys.readouterr().out

    def test_figure_table(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "perceptron" in capsys.readouterr().out

    def test_figure_dynamic(self, capsys):
        assert main([
            "figure", "fig1", "--benchmarks", "eon", "--iterations", "60",
        ]) == 0
        assert "wrong" in capsys.readouterr().out

    def test_inspect(self, capsys):
        assert main(["inspect", "gzip", "--iterations", "80"]) == 0
        out = capsys.readouterr().out
        assert "diverge branches" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--benchmarks", "soplex", "--iterations", "60"])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--configs", "warp", "--iterations", "60"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
