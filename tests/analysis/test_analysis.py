"""Unit tests for the Figure 1 and Figure 6 analyses."""

from repro.analysis.classify import (
    MispredictionClassification,
    classify_mispredictions,
)
from repro.analysis.wrongpath import WrongPathBreakdown, wrong_path_breakdown
from repro.isa.encoding import DivergeHint, HintTable
from repro.profiling.profiler import BranchStats, ProgramProfile
from repro.uarch.stats import SimStats


class TestWrongPathBreakdown:
    def test_percentages(self):
        stats = SimStats(benchmark="x")
        stats.fetched_correct = 50
        stats.fetched_wrong_cd = 30
        stats.fetched_wrong_ci = 20
        b = wrong_path_breakdown(stats)
        assert b.fetched_total == 100
        assert b.pct_wrong_cd == 30.0
        assert b.pct_wrong_ci == 20.0
        assert b.pct_wrong == 50.0
        assert b.ci_share_of_wrong == 0.4

    def test_zero_safe(self):
        b = WrongPathBreakdown("x", 0, 0, 0)
        assert b.pct_wrong == 0.0
        assert b.ci_share_of_wrong == 0.0


def make_profile(branch_defs):
    """branch_defs: list of (pc, executions, mispredictions)."""
    profile = ProgramProfile("x")
    profile.total_instructions = 10_000
    for pc, executions, mispredictions in branch_defs:
        stats = BranchStats(pc, "main", f"b{pc}")
        stats.executions = executions
        stats.mispredictions = mispredictions
        profile.branches[pc] = stats
        profile.total_mispredictions += mispredictions
    return profile


class TestClassification:
    def test_three_way_split(self):
        profile = make_profile(
            [(0x10, 100, 40), (0x20, 100, 30), (0x30, 100, 20)]
        )
        diverge = HintTable()
        diverge.add(0x10, DivergeHint((1,)))
        diverge.add(0x20, DivergeHint((2,)))
        hammocks = HintTable()
        hammocks.add(0x10, DivergeHint((1,)))
        result = classify_mispredictions("x", profile, diverge, hammocks)
        assert result.simple_hammock_diverge == 40
        assert result.complex_diverge == 30
        assert result.other == 20
        assert result.total_mispredictions == 90

    def test_mpki_values(self):
        profile = make_profile([(0x10, 100, 50)])
        diverge = HintTable()
        diverge.add(0x10, DivergeHint((1,)))
        result = classify_mispredictions(
            "x", profile, diverge, HintTable()
        )
        assert result.mpki_complex_diverge == 5.0
        assert result.mpki_simple_hammock == 0.0

    def test_shares(self):
        profile = make_profile([(0x10, 100, 60), (0x20, 100, 40)])
        diverge = HintTable()
        diverge.add(0x10, DivergeHint((1,)))
        hammocks = HintTable()
        hammocks.add(0x10, DivergeHint((1,)))
        result = classify_mispredictions("x", profile, diverge, hammocks)
        assert result.diverge_share == 0.6
        assert result.hammock_share == 0.6

    def test_zero_mispredictions(self):
        result = MispredictionClassification("x", 1000, 0, 0, 0)
        assert result.diverge_share == 0.0
        assert result.mpki_other == 0.0

    def test_never_mispredicted_branches_ignored(self):
        profile = make_profile([(0x10, 100, 0), (0x20, 100, 10)])
        result = classify_mispredictions(
            "x", profile, HintTable(), HintTable()
        )
        assert result.other == 10
