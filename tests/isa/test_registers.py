"""Unit tests for the register file."""

import pytest

from repro.isa.registers import NUM_ARCH_REGS, REG_ZERO, RegisterFile, reg_name


class TestRegisterFile:
    def test_initially_zero(self):
        rf = RegisterFile()
        assert all(rf.read(i) == 0 for i in range(NUM_ARCH_REGS))

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(5, 42)
        assert rf.read(5) == 42

    def test_zero_register_is_hardwired(self):
        rf = RegisterFile()
        rf.write(REG_ZERO, 99)
        assert rf.read(REG_ZERO) == 0

    def test_values_wrap_at_64_bits(self):
        rf = RegisterFile()
        rf.write(1, (1 << 64) + 7)
        assert rf.read(1) == 7

    def test_snapshot_roundtrip(self):
        rf = RegisterFile()
        rf.write(3, 10)
        snap = rf.snapshot()
        rf.write(3, 20)
        rf.load_snapshot(snap)
        assert rf.read(3) == 10

    def test_snapshot_wrong_size_rejected(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.load_snapshot([0, 1, 2])


class TestRegName:
    def test_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            reg_name(-1)
