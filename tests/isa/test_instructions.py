"""Unit tests for the mini-ISA instruction definitions."""

import pytest

from repro.isa.instructions import (
    Condition,
    Instruction,
    Opcode,
    evaluate_condition,
)


class TestInstructionValidation:
    def test_branch_requires_condition(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=(1,), target="B")

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=(1,), cond=Condition.EQ)

    def test_branch_source_arity(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=(), cond=Condition.EQ, target="B")
        with pytest.raises(ValueError):
            Instruction(
                Opcode.BR, srcs=(1, 2, 3), cond=Condition.EQ, target="B"
            )

    def test_jump_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP)

    def test_load_shape(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, dest=None, srcs=(1,))
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, dest=2, srcs=(1, 3))
        instr = Instruction(Opcode.LOAD, dest=2, srcs=(1,), imm=8)
        assert instr.is_load

    def test_store_shape(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STORE, srcs=(1,))
        instr = Instruction(Opcode.STORE, srcs=(1, 2))
        assert instr.is_store


class TestInstructionClassification:
    def test_control_flags(self):
        br = Instruction(Opcode.BR, srcs=(1,), cond=Condition.NE, target="B")
        assert br.is_control
        assert br.is_cond_branch
        jmp = Instruction(Opcode.JMP, target="B")
        assert jmp.is_control
        assert not jmp.is_cond_branch
        add = Instruction(Opcode.ADD, dest=1, srcs=(2, 3))
        assert not add.is_control

    def test_fp_classification(self):
        assert Instruction(Opcode.FMUL, dest=1, srcs=(2, 3)).is_fp
        assert not Instruction(Opcode.MUL, dest=1, srcs=(2, 3)).is_fp

    def test_writes_register(self):
        assert Instruction(Opcode.MOVI, dest=4, imm=1).writes_register
        assert not Instruction(Opcode.STORE, srcs=(1, 2)).writes_register

    def test_latencies(self):
        assert Instruction(Opcode.ADD, dest=1, srcs=(2, 3)).latency == 1
        assert Instruction(Opcode.MUL, dest=1, srcs=(2, 3)).latency == 3
        assert Instruction(Opcode.FDIV, dest=1, srcs=(2, 3)).latency == 12
        # loads defer to the cache hierarchy
        assert Instruction(Opcode.LOAD, dest=1, srcs=(2,)).latency == 0


class TestConditionEvaluation:
    @pytest.mark.parametrize(
        "cond,lhs,rhs,expected",
        [
            (Condition.EQ, 5, 5, True),
            (Condition.EQ, 5, 6, False),
            (Condition.NE, 5, 6, True),
            (Condition.LT, -1 & ((1 << 64) - 1), 0, True),  # signed compare
            (Condition.GE, 0, 0, True),
            (Condition.LE, 3, 2, False),
            (Condition.GT, 3, 2, True),
        ],
    )
    def test_conditions(self, cond, lhs, rhs, expected):
        assert evaluate_condition(cond, lhs, rhs) is expected

    def test_signed_wraparound(self):
        big = (1 << 63)  # most negative value in two's complement
        assert evaluate_condition(Condition.LT, big, 0)
        assert evaluate_condition(Condition.GT, (1 << 63) - 1, 0)
