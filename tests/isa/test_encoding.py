"""Unit and property tests for the diverge-hint side table."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import DivergeHint, HintTable


class TestDivergeHint:
    def test_requires_cfm_point(self):
        with pytest.raises(ValueError):
            DivergeHint(())

    def test_empty_hint_error_is_structured(self):
        # Still a ValueError (old callers keep working), but now carries
        # the machine-readable issue list of the validation hierarchy.
        from repro.errors import HintValidationError

        with pytest.raises(HintValidationError) as excinfo:
            DivergeHint(())
        assert excinfo.value.issues == [
            "a diverge hint needs at least one CFM point"
        ]

    def test_primary_cfm(self):
        hint = DivergeHint((0x2000, 0x3000))
        assert hint.primary_cfm == 0x2000

    def test_equality(self):
        assert DivergeHint((1,), 8, False) == DivergeHint((1,), 8, False)
        assert DivergeHint((1,)) != DivergeHint((2,))


class TestHintTable:
    def test_add_and_lookup(self):
        table = HintTable()
        table.add(0x1000, DivergeHint((0x2000,)))
        assert table.is_diverge_branch(0x1000)
        assert not table.is_diverge_branch(0x1004)
        assert table.get(0x1000).primary_cfm == 0x2000
        assert table.get(0x9999) is None

    def test_duplicate_rejected(self):
        table = HintTable()
        table.add(0x1000, DivergeHint((0x2000,)))
        with pytest.raises(ValueError):
            table.add(0x1000, DivergeHint((0x3000,)))

    def test_duplicate_error_is_structured(self):
        from repro.errors import HintValidationError

        table = HintTable()
        table.add(0x1000, DivergeHint((0x2000,)))
        with pytest.raises(HintValidationError) as excinfo:
            table.add(0x1000, DivergeHint((0x3000,)))
        (issue,) = excinfo.value.issues
        assert "duplicate hint" in issue and "0x1000" in issue

    def test_iteration_sorted_by_pc(self):
        table = HintTable()
        table.add(0x3000, DivergeHint((1,)))
        table.add(0x1000, DivergeHint((2,)))
        assert [pc for pc, _ in table] == [0x1000, 0x3000]

    def test_serialization_roundtrip(self):
        table = HintTable()
        table.add(0x1000, DivergeHint((0x2000, 0x2100), 16, False))
        table.add(0x4000, DivergeHint((0x5000,), None, True))
        restored = HintTable.from_bytes(table.to_bytes())
        assert len(restored) == 2
        assert restored.get(0x1000) == table.get(0x1000)
        assert restored.get(0x4000) == table.get(0x4000)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            HintTable.from_bytes(b"XXXX\x00\x00\x00\x00")


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2**40),
        st.tuples(
            st.lists(
                st.integers(min_value=0, max_value=2**40),
                min_size=1,
                max_size=5,
                unique=True,
            ),
            st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
            st.booleans(),
        ),
        max_size=20,
    )
)
def test_serialization_roundtrip_property(entries):
    """to_bytes/from_bytes is lossless for arbitrary hint tables."""
    table = HintTable()
    for pc, (cfms, threshold, is_loop) in entries.items():
        table.add(pc, DivergeHint(tuple(cfms), threshold, is_loop))
    restored = HintTable.from_bytes(table.to_bytes())
    assert len(restored) == len(table)
    for pc, hint in table:
        assert restored.get(pc) == hint
