"""The fuzz program generator: validity, boundedness, determinism."""

import pytest

from repro.fuzz import (
    FUZZ_GADGET_KINDS,
    FuzzGadget,
    FuzzKnobs,
    FuzzSpec,
    build_fuzz_workload,
    draw_spec,
    static_instruction_count,
)
from repro.program.interpreter import ExecutionLimitExceeded


class TestDrawSpec:
    def test_pure_function_of_seed_and_knobs(self):
        assert draw_spec(17) == draw_spec(17)
        assert draw_spec(17, FuzzKnobs()) == draw_spec(17)

    def test_different_seeds_draw_different_specs(self):
        specs = [draw_spec(seed) for seed in range(10)]
        assert len({repr(s.gadgets) for s in specs}) > 1

    def test_knobs_bound_the_draw(self):
        knobs = FuzzKnobs(min_gadgets=2, max_gadgets=3, iterations=77)
        for seed in range(30):
            spec = draw_spec(seed, knobs)
            assert 2 <= len(spec.gadgets) <= 3
            assert spec.iterations == 77

    def test_every_kind_is_reachable(self):
        seen = set()
        for seed in range(120):
            seen.update(g.kind for g in draw_spec(seed).gadgets)
        assert seen == set(FUZZ_GADGET_KINDS)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            FuzzKnobs(min_gadgets=0)
        with pytest.raises(ValueError):
            FuzzKnobs(min_gadgets=3, max_gadgets=2)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FuzzGadget(kind="goto-considered-harmful")

    def test_colon_in_name_rejected(self):
        # Colon-joined data-seed tags must never be ambiguous.
        with pytest.raises(ValueError):
            FuzzSpec(seed=1, gadgets=[FuzzGadget(kind="hammock")], name="a:b")

    def test_empty_merge_block_rejected(self):
        # Blocks must be non-empty so every merge point has a first_pc.
        with pytest.raises(ValueError):
            FuzzGadget(kind="hammock", merge_work=0)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            build_fuzz_workload(FuzzSpec(seed=1, gadgets=[]))


@pytest.mark.parametrize("kind", FUZZ_GADGET_KINDS)
class TestEveryKind:
    def test_builds_and_terminates(self, kind):
        spec = FuzzSpec(
            seed=3, iterations=60, gadgets=[FuzzGadget(kind=kind)]
        )
        workload = build_fuzz_workload(spec)
        # Termination-by-construction: a small explicit cap, far below
        # the interpreter default, must never be hit.
        try:
            trace = workload.run(max_instructions=500_000)
        except ExecutionLimitExceeded:  # pragma: no cover
            pytest.fail(f"gadget {kind!r} did not terminate")
        assert trace.instruction_count > 0

    def test_static_count_matches_program(self, kind):
        spec = FuzzSpec(
            seed=3, iterations=60, gadgets=[FuzzGadget(kind=kind)]
        )
        count = static_instruction_count(spec)
        assert count == build_fuzz_workload(spec).program.instruction_count()
        assert count >= 5  # at least the main-loop skeleton


class TestGnarlyShapes:
    """Structural spot-checks that the adversarial shapes really have
    the CFG properties they claim."""

    def _blocks(self, kind, **fields):
        spec = FuzzSpec(
            seed=5, iterations=40, gadgets=[FuzzGadget(kind=kind, **fields)]
        )
        cfg = build_fuzz_workload(spec).program.entry_function
        return {block.name: block for block in cfg}

    def test_nest_is_properly_nested(self):
        blocks = self._blocks("nest", depth=3)
        # Merges unwind innermost-first: textual order ... M2, M1, M0 —
        # so each outer diverge region strictly contains the inner ones.
        nest_merges = [n for n in blocks if "_L" in n and n.endswith("_M")]
        assert nest_merges == ["g0_L2_M", "g0_L1_M", "g0_L0_M"]
        # Level 0's branch skips the entire inner nest to its own merge.
        assert "g0_L0_M" in blocks["g0_L0_A"].successors()

    def test_overlap_shares_a_tail_block(self):
        blocks = self._blocks("overlap")
        # The not-taken arm (B) cross-branches into the taken arm's
        # continuation (T2): T2 has predecessors from both arms, so
        # neither inner region is a hammock.
        assert "g0_T2" in blocks["g0_B"].successors()
        assert "g0_T2" in blocks["g0_C"].successors()

    def test_dispatch_arms_scale(self):
        few = self._blocks("dispatch", arms=2)
        many = self._blocks("dispatch", arms=5)
        assert len(many) > len(few)

    def test_multiexit_loop_has_two_exits(self):
        blocks = self._blocks("multiexit_loop")
        assert "g0_X" in blocks and "g0_X2" in blocks


class TestDeterminism:
    def test_build_is_bit_reproducible(self):
        a = build_fuzz_workload(draw_spec(9))
        b = build_fuzz_workload(draw_spec(9))
        assert a.memory._words == b.memory._words
        assert a.program.instruction_count() == b.program.instruction_count()
        ta, tb = a.run(), b.run()
        assert ta.instruction_count == tb.instruction_count

    def test_seed_reshapes_the_data(self):
        gadgets = [FuzzGadget(kind="hammock")]
        a = build_fuzz_workload(FuzzSpec(seed=1, gadgets=gadgets))
        b = build_fuzz_workload(FuzzSpec(seed=2, gadgets=gadgets))
        assert a.memory._words != b.memory._words

    def test_gadgets_never_share_data_arrays(self):
        # Two gadgets with identical knobs draw from *different* seeded
        # streams (the per-gadget index is in the data seed).
        spec = FuzzSpec(
            seed=1,
            iterations=64,
            gadgets=[FuzzGadget(kind="hammock"), FuzzGadget(kind="hammock")],
        )
        memory = build_fuzz_workload(spec).memory
        first = [memory._words.get(1_000_000 + i, 0) for i in range(64)]
        # The second array starts after the first plus padding.
        base2 = 1_000_000 + 64 + 64
        second = [memory._words.get(base2 + i, 0) for i in range(64)]
        assert first != second
