"""The differential harness: clean sweeps, bug catching, reporting.

The centerpiece is the injected-bug demonstration: an engine-asymmetric
mutation (the fast engine drops one select-uop per episode exit) must be
caught by the differential check and minimized to a reproducer of at
most 12 static instructions — the subsystem's acceptance contract.
"""

import dataclasses
import json

import pytest

from repro.core.dpred import PredicationAwareSimulator
from repro.fuzz import (
    FUZZ_MODES,
    FuzzKnobs,
    check_spec,
    draw_spec,
    minimize_finding,
    mode_configs,
    run_fuzz,
    static_instruction_count,
)
from repro.fuzz.harness import REPORT_SCHEMA

#: Seeds used by the clean-sweep tests (kept small: each seed runs a
#: 6-mode x 2-engine hardened matrix).
CLEAN_SEEDS = range(4)


class TestCleanSweep:
    def test_head_is_clean_on_smoke_seeds(self):
        for seed in CLEAN_SEEDS:
            findings = check_spec(draw_spec(seed))
            assert findings == [], [f.summary() for f in findings]

    def test_mode_configs_cover_every_fuzz_mode(self):
        configs = mode_configs()
        assert set(configs) == set(FUZZ_MODES)
        # Oracle/watchdog are armed by the harness, not baked in here.
        for config in configs.values():
            assert not config.oracle_checks and not config.watchdog

    def test_report_is_schema_versioned_json(self):
        report = run_fuzz(range(2))
        assert report.ok and report.checked == 2
        payload = report.to_dict()
        assert payload["schema"] == REPORT_SCHEMA
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_budget_caps_the_sweep(self):
        report = run_fuzz(range(50), budget=3)
        assert report.checked == 3 and report.seeds == [0, 1, 2]

    def test_parallel_sweep_matches_serial(self):
        serial = run_fuzz(CLEAN_SEEDS, jobs=1)
        parallel = run_fuzz(CLEAN_SEEDS, jobs=2)
        assert serial.seeds == parallel.seeds
        assert [dataclasses.asdict(f) for f in serial.findings] == [
            dataclasses.asdict(f) for f in parallel.findings
        ]


@pytest.fixture
def drop_one_select_on_fast_engine(monkeypatch):
    """Engine-asymmetric bug injection: on the fast engine only, the
    RAT 'forgets' the last select-uop request at every episode exit."""
    real = PredicationAwareSimulator._exit_after_alternate

    def broken(self, *args, **kwargs):
        if self.config.engine != "fast":
            return real(self, *args, **kwargs)
        orig = self.rat.compute_selects

        def dropped(cp2_rat):
            selects = orig(cp2_rat)
            return selects[:-1] if selects else selects

        self.rat.compute_selects = dropped
        try:
            return real(self, *args, **kwargs)
        finally:
            self.rat.compute_selects = orig

    monkeypatch.setattr(
        PredicationAwareSimulator, "_exit_after_alternate", broken
    )


class TestInjectedEngineBug:
    def test_mutation_is_caught_and_minimized(
        self, drop_one_select_on_fast_engine
    ):
        spec = draw_spec(0)
        findings = check_spec(spec)
        assert findings, "differential check missed the injected bug"
        divergences = [f for f in findings if f.kind == "divergence"]
        assert divergences, [f.summary() for f in findings]
        finding = divergences[0]
        assert finding.mode in ("dmp", "dhp", "loop-pred")
        assert "select_uops" in finding.stat_diff

        minimized = minimize_finding(finding)
        assert minimized.minimized
        assert minimized.static_instructions <= 12, (
            f"reproducer has {minimized.static_instructions} static "
            "instructions; acceptance bound is 12"
        )
        # The shrunk spec still reproduces the exact failure class.
        refound = check_spec(minimized.spec, modes=(finding.mode,))
        assert any(
            f.kind == "divergence" and f.mode == finding.mode
            for f in refound
        )

    def test_run_fuzz_reports_the_finding(
        self, drop_one_select_on_fast_engine
    ):
        report = run_fuzz(range(1), minimize=True)
        assert not report.ok
        assert report.minimized
        for finding in report.findings:
            assert finding.seed == 0
            if finding.kind == "divergence":
                assert finding.minimized
                assert 0 < finding.static_instructions <= 12
        # The JSON report carries the reproducer spec inline.
        payload = report.to_dict()
        assert payload["findings"][0]["spec"] is not None


class TestKnobsPropagate:
    def test_custom_knobs_change_the_programs(self):
        small = FuzzKnobs(min_gadgets=1, max_gadgets=1, iterations=50)
        spec = draw_spec(5, small)
        assert len(spec.gadgets) == 1 and spec.iterations == 50
        assert static_instruction_count(spec) < static_instruction_count(
            draw_spec(5, FuzzKnobs(min_gadgets=4, max_gadgets=4))
        )
