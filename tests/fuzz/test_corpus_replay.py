"""Tier-1 replay of the committed counterexample corpus.

Every file under ``tests/fuzz/corpus/`` is a minimized reproducer of a
bug class the differential harness once caught (or, for bootstrap
entries, a known injected mutation). Replaying them on every run makes
sure none of those bug classes silently returns: each spec must run the
full engine x mode differential matrix with **zero** findings on HEAD.
"""

import os

import pytest

from repro.fuzz import (
    FUZZ_MODES,
    GANG_MODE,
    check_spec,
    load_corpus,
    spec_from_dict,
)

_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
_ENTRIES = load_corpus(_CORPUS_DIR)


def test_corpus_is_committed_and_nonempty():
    assert _ENTRIES, f"no corpus entries found in {_CORPUS_DIR}"


@pytest.mark.parametrize(
    "entry", _ENTRIES, ids=[os.path.basename(e["path"]) for e in _ENTRIES]
)
def test_reproducer_is_clean_on_head(entry):
    spec = spec_from_dict(entry["spec"])
    findings = check_spec(spec)
    assert findings == [], [f.summary() for f in findings]


@pytest.mark.parametrize(
    "entry", _ENTRIES, ids=[os.path.basename(e["path"]) for e in _ENTRIES]
)
def test_reproducer_is_clean_on_batch_engine(entry):
    """The corpus replays against the vectorized batch engine too.

    ``harden=False`` is deliberate: hardened configs fall back to the
    fast engine per cell, so only an unhardened replay drives the
    corpus programs down the batch engine's vector path.  The mode
    matrix includes ``dmp-basic`` (the plain Table-1 machine, inside
    the vector envelope), so every replay also exercises the
    vectorized predicated-episode path — not just the unpredicated
    lockstep loop.  Appending the ``dmp-gang`` band fans each
    reproducer across machine sizings as one batch group, so the
    replay also covers the ganged-episode kernels (many lanes sharing
    an episode's (trace, signature) key), not just singleton
    episodes."""
    spec = spec_from_dict(entry["spec"])
    findings = check_spec(
        spec,
        modes=FUZZ_MODES + (GANG_MODE,),
        engines=("reference", "batch"),
        harden=False,
    )
    assert findings == [], [f.summary() for f in findings]


@pytest.mark.parametrize(
    "entry", _ENTRIES, ids=[os.path.basename(e["path"]) for e in _ENTRIES]
)
def test_entry_metadata_is_complete(entry):
    # Triage provenance must never be stripped from a committed entry.
    assert entry["notes"], entry["path"]
    # The harness finding kinds, plus "recovery": a proactively
    # committed exerciser (no failure at capture time) pinning the
    # learned-merge misprediction/recovery machinery of mode "mpp".
    assert entry["finding"]["kind"] in (
        "divergence",
        "oracle",
        "hang",
        "crash",
        "generator",
        "recovery",
    )
    assert entry["static_instructions"] > 0
