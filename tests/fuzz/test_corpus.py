"""Corpus persistence: spec round-trips, reproducer files, schema."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.fuzz import (
    CORPUS_SCHEMA,
    FuzzGadget,
    FuzzSpec,
    draw_spec,
    load_corpus,
    save_reproducer,
    spec_from_dict,
    spec_to_dict,
)
from repro.fuzz.harness import Finding


def _finding(spec):
    return Finding(
        seed=spec.seed,
        kind="divergence",
        mode="dmp",
        engine="both",
        detail="engines disagree on 1 SimStats field(s)",
        stat_diff=["select_uops"],
        spec=spec,
        minimized=True,
        static_instructions=9,
    )


class TestSpecRoundTrip:
    def test_drawn_specs_round_trip(self):
        for seed in range(8):
            spec = draw_spec(seed)
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_tuples_survive_json(self):
        spec = FuzzSpec(
            seed=2,
            iterations=60,
            gadgets=[
                FuzzGadget(
                    kind="nest",
                    data=("periodic", (1, 0, 0), 0.1),
                    inner_data=("biased", 0.9),
                )
            ],
        )
        wire = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(wire) == spec

    def test_unknown_gadget_field_rejected(self):
        data = spec_to_dict(draw_spec(0))
        data["gadgets"][0]["turbo"] = True
        with pytest.raises(ReproError):
            spec_from_dict(data)


class TestSaveAndLoad:
    def test_save_then_load(self, tmp_path):
        spec = draw_spec(7)
        path = save_reproducer(
            _finding(spec), directory=str(tmp_path), notes="unit test"
        )
        assert os.path.basename(path) == "divergence-dmp-seed7.json"
        entries = load_corpus(str(tmp_path))
        assert len(entries) == 1
        entry = entries[0]
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["notes"] == "unit test"
        assert entry["static_instructions"] == 9
        assert spec_from_dict(entry["spec"]) == spec

    def test_schema_mismatch_rejected(self, tmp_path):
        path = save_reproducer(_finding(draw_spec(1)), directory=str(tmp_path))
        with open(path) as handle:
            entry = json.load(handle)
        entry["schema"] = "repro-fuzz-corpus/0"
        with open(path, "w") as handle:
            json.dump(entry, handle)
        with pytest.raises(ReproError):
            load_corpus(str(tmp_path))

    def test_load_order_is_stable(self, tmp_path):
        for seed in (5, 3, 9):
            save_reproducer(_finding(draw_spec(seed)), directory=str(tmp_path))
        names = [
            os.path.basename(e["path"]) for e in load_corpus(str(tmp_path))
        ]
        assert names == sorted(names)

    def test_empty_directory_loads_empty(self, tmp_path):
        assert load_corpus(str(tmp_path)) == []
