"""Watchdog flight recorder on the fast engine (the ISSUE-6 satellite).

When a fuzz-generated runaway loop trips the cycle limit, the
:class:`~repro.errors.SimulationHangError` must carry the tracer's
ring-buffer tail (``recent_events``) with schema-valid records — the
postmortem a dead CI job turns into."""

import pytest

from repro.errors import SimulationHangError
from repro.fuzz import FuzzGadget, FuzzSpec, check_spec
from repro.fuzz.harness import FuzzProgram, mode_configs
from repro.obs.events import EVENT_FIELDS, CollectorTracer

#: A loop-heavy program whose full run needs far more than the tiny
#: cycle budget below — from the watchdog's point of view, an infinite
#: loop (the budget trips long before the program would end).
_SPEC = FuzzSpec(
    seed=23,
    iterations=400,
    gadgets=[FuzzGadget(kind="multiexit_loop", trips=4, work=4)],
)

_TINY_CYCLE_LIMIT = 64


class TestFlightRecorder:
    def _trip(self, mode="dmp", engine="fast"):
        ctx = FuzzProgram(_SPEC)
        config = (
            mode_configs()[mode]
            .hardened(_TINY_CYCLE_LIMIT)
            .replace(engine=engine)
        )
        tracer = CollectorTracer()
        with pytest.raises(SimulationHangError) as exc_info:
            ctx.simulate(mode, config, tracer=tracer)
        return exc_info.value

    def test_fast_engine_hang_carries_recent_events(self):
        error = self._trip(engine="fast")
        diagnostics = error.report()
        events = diagnostics["recent_events"]
        assert events, "flight recorder is empty"
        for record in events:
            kind = record.get("t")
            assert kind in EVENT_FIELDS, record
            missing = set(EVENT_FIELDS[kind]) - set(record)
            assert not missing, (kind, missing)

    def test_diagnostics_identify_the_trip(self):
        error = self._trip(engine="fast")
        diagnostics = error.report()
        assert diagnostics["cycle"] > _TINY_CYCLE_LIMIT
        assert diagnostics["cycle_limit"] == _TINY_CYCLE_LIMIT
        assert diagnostics["mode"] == "dmp"
        assert diagnostics["benchmark"] == _SPEC.name

    def test_reference_engine_records_the_same_shape(self):
        # The flight recorder is engine-independent; the differential
        # harness relies on both sides failing loudly and identically.
        fast = self._trip(engine="fast").report()
        ref = self._trip(engine="reference").report()
        assert ref["cycle_limit"] == fast["cycle_limit"]
        assert bool(ref["recent_events"]) == bool(fast["recent_events"])

    def test_check_spec_reports_hangs_as_findings(self):
        findings = check_spec(
            _SPEC, modes=("dmp",), cycle_limit=_TINY_CYCLE_LIMIT
        )
        hangs = [f for f in findings if f.kind == "hang"]
        assert {f.engine for f in hangs} == {"reference", "fast"}
