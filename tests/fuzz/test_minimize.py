"""The delta-debugging minimizer (predicate-only tests: no simulation,
so these exercise the shrink moves themselves, fast)."""

import pytest

from repro.fuzz import (
    FuzzGadget,
    FuzzSpec,
    minimize_spec,
    static_instruction_count,
)


def _spec(*kinds, iterations=160, seed=11):
    return FuzzSpec(
        seed=seed,
        iterations=iterations,
        gadgets=[
            FuzzGadget(kind=kind, work=5, depth=3, arms=4, trips=4)
            for kind in kinds
        ],
    )


class TestMinimizeSpec:
    def test_predicate_must_hold_on_input(self):
        spec = _spec("hammock")
        with pytest.raises(ValueError):
            minimize_spec(spec, lambda s: False)

    def test_drops_irrelevant_gadgets(self):
        spec = _spec("mem", "dispatch", "fp", "loop")
        out = minimize_spec(
            spec, lambda s: any(g.kind == "dispatch" for g in s.gadgets)
        )
        assert [g.kind for g in out.gadgets] == ["dispatch"]

    def test_shrinks_knobs_to_floors(self):
        spec = _spec("dispatch")
        out = minimize_spec(
            spec, lambda s: any(g.kind == "dispatch" for g in s.gadgets)
        )
        gadget = out.gadgets[0]
        assert gadget.work == 1 and gadget.merge_work == 1
        assert gadget.arms == 2 and gadget.trips == 1 and gadget.depth == 1
        assert out.iterations == 40  # the min_executions-safe floor

    def test_straightens_gnarly_kinds(self):
        spec = _spec("nest", "overlap")
        # Failure only needs *some* branchy gadget: everything should
        # collapse to a single plain hammock.
        out = minimize_spec(
            spec,
            lambda s: any(
                g.kind not in ("straight", "mem", "fp") for g in s.gadgets
            ),
        )
        assert [g.kind for g in out.gadgets] == ["hammock"]

    def test_never_up_ranks_a_straight_gadget(self):
        spec = _spec("straight")
        out = minimize_spec(spec, lambda s: True)
        assert [g.kind for g in out.gadgets] == ["straight"]

    def test_canonicalizes_data_to_uniform(self):
        spec = FuzzSpec(
            seed=3,
            iterations=80,
            gadgets=[FuzzGadget(kind="hammock", data=("biased", 0.85))],
        )
        out = minimize_spec(spec, lambda s: True)
        assert out.gadgets[0].data == ("uniform",)

    def test_deterministic(self):
        spec = _spec("dispatch", "mem", "nest")
        predicate = lambda s: any(g.kind == "nest" for g in s.gadgets)
        assert minimize_spec(spec, predicate) == minimize_spec(
            spec, predicate
        )

    def test_result_is_no_larger_than_input(self):
        spec = _spec("nest", "dispatch", "overlap")
        out = minimize_spec(spec, lambda s: True)
        assert static_instruction_count(out) <= static_instruction_count(spec)

    def test_check_budget_bounds_work(self):
        spec = _spec("nest", "dispatch", "overlap", "loop")
        calls = []

        def predicate(s):
            calls.append(1)
            return True

        minimize_spec(spec, predicate, max_checks=5)
        # 1 entry check + at most max_checks shrink probes.
        assert len(calls) <= 6

    def test_exploding_predicate_treated_as_not_failing(self):
        spec = _spec("hammock", "mem")

        def fragile(s):
            if len(s.gadgets) < 2:
                raise RuntimeError("checker crashed on the candidate")
            return True

        out = minimize_spec(spec, fragile)
        assert len(out.gadgets) == 2  # crash candidates were rejected
