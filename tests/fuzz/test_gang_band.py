"""The ``dmp-gang`` fuzz band: many-lane groups over shared episodes.

The per-mode differential matrix runs one cell at a time, so the batch
engine's ganged-episode kernels — one episode structure computed for
every lane sharing a (trace, signature) key, timing replayed per lane —
are only ever exercised with gangs of size one.  The gang band fans a
single fuzz program across :data:`GANG_SIZINGS` machine sizings as one
``run_batch`` group; these tests pin that the band really forms
many-lane gangs (not silent scalar fallbacks) and that every ganged
lane stays bit-identical to the reference engine.
"""

import pytest

from repro.fuzz import FuzzKnobs, check_spec, draw_spec
from repro.fuzz.harness import GANG_MODE, GANG_SIZINGS, FuzzProgram
from repro.uarch.config import MachineConfig

np = pytest.importorskip("numpy")

from repro.uarch.batch import BatchCell, run_batch  # noqa: E402

#: Seeds probed for a program that earns diverge hints.  The generator
#: is deterministic, so the first ganging seed is stable across runs.
_PROBE_SEEDS = range(24)


def _gang_cells(ctx: FuzzProgram):
    hints = ctx.hints_for(GANG_MODE)
    warm = ctx.workload.memory.warm_words()
    return [
        BatchCell(
            ctx.program,
            ctx.trace,
            MachineConfig.dmp().replace(
                engine="batch", fetch_width=width, pipeline_depth=depth,
                rob_size=rob, retire_width=retire,
            ),
            hints=hints,
            benchmark=ctx.spec.name,
            warm_words=warm,
        )
        for (width, depth, rob, retire) in GANG_SIZINGS
    ]


@pytest.fixture(scope="module")
def ganging_spec():
    """The first probe seed whose program actually gangs lanes."""
    for seed in _PROBE_SEEDS:
        spec = draw_spec(seed, FuzzKnobs())
        ctx = FuzzProgram(spec)
        gang_stats = {}
        fallback_reasons = {}
        try:
            run_batch(
                _gang_cells(ctx),
                fallback_reasons=fallback_reasons,
                gang_stats=gang_stats,
            )
        except Exception:
            continue
        if gang_stats.get("ganged_lanes", 0) >= 2:
            return spec, ctx, gang_stats, fallback_reasons
    pytest.fail(
        f"no probe seed in {_PROBE_SEEDS} formed a many-lane gang — "
        f"the dmp-gang band would be exercising nothing"
    )


def test_band_forms_many_lane_gangs(ganging_spec):
    _, _, gang_stats, _ = ganging_spec
    assert gang_stats["max_gang"] >= 2, gang_stats
    assert gang_stats["ganged_lanes"] >= 2, gang_stats
    assert gang_stats["gangs"] >= 1, gang_stats


def test_band_lanes_stay_on_the_vector_path(ganging_spec):
    # A plain-dmp sizing that falls off the vector envelope would turn
    # the band into a fast-engine self-comparison; the ganging seed
    # must keep every lane vectorized.
    _, _, _, fallback_reasons = ganging_spec
    assert fallback_reasons == {}, fallback_reasons


def test_band_is_clean_against_the_reference_engine(ganging_spec):
    spec, _, _, _ = ganging_spec
    findings = check_spec(spec, modes=(GANG_MODE,), harden=False)
    assert findings == [], [f.summary() for f in findings]
