"""Generator determinism audit (the ISSUE-6 satellite).

Two layers:

1. a *static* audit that no ``random.Random`` in the workload / fuzz
   generators is ever constructed without an explicit seed argument
   (an unseeded RNG would silently destroy bit-reproducibility); and
2. *fingerprint* coverage: :func:`repro.harness.fingerprint.
   workload_fingerprint` canonicalizes the complete spec — seed
   included — so cached artifacts keyed by it can never alias across
   seeds or across any other generation knob.
"""

import dataclasses
import inspect
import re

from repro.fuzz import FuzzGadget, FuzzSpec, draw_spec
from repro.fuzz import generator as fuzz_generator
from repro.harness.fingerprint import workload_fingerprint
from repro.workloads import behaviors
from repro.workloads import generator as workload_generator
from repro.workloads.generator import GadgetSpec, WorkloadSpec

_UNSEEDED = re.compile(r"random\.Random\(\s*\)")


class TestNoUnseededRandomness:
    def test_behaviors_module(self):
        assert not _UNSEEDED.search(inspect.getsource(behaviors))

    def test_workload_generator_module(self):
        assert not _UNSEEDED.search(inspect.getsource(workload_generator))

    def test_fuzz_generator_module(self):
        assert not _UNSEEDED.search(inspect.getsource(fuzz_generator))

    def test_no_module_level_random_calls(self):
        # random.randrange()/random.random() at module scope would use
        # the process-global RNG; every use must go through a seeded
        # random.Random instance.
        pattern = re.compile(r"(?<!\.)\brandom\.(randrange|random|randint|choice)\(")
        for module in (behaviors, workload_generator, fuzz_generator):
            assert not pattern.search(inspect.getsource(module)), module


class TestWorkloadFingerprint:
    def _workload_spec(self, seed=0):
        return WorkloadSpec(
            name="fp-audit",
            iterations=200,
            gadgets=[GadgetSpec(kind="if"), GadgetSpec(kind="mem")],
            seed=seed,
        )

    def test_equal_specs_share_a_fingerprint(self):
        assert workload_fingerprint(
            self._workload_spec()
        ) == workload_fingerprint(self._workload_spec())

    def test_seed_is_in_the_key(self):
        # The audit's core claim: artifacts cached under this key can
        # never alias across generation seeds.
        assert workload_fingerprint(
            self._workload_spec(seed=0)
        ) != workload_fingerprint(self._workload_spec(seed=1))

    def test_every_gadget_knob_is_in_the_key(self):
        base = self._workload_spec()
        for field, value in (
            ("threshold", 96),
            ("work", 9),
            ("data", ("biased", 0.25)),
        ):
            changed = dataclasses.replace(
                base,
                gadgets=[
                    dataclasses.replace(base.gadgets[0], **{field: value}),
                    base.gadgets[1],
                ],
            )
            assert workload_fingerprint(base) != workload_fingerprint(
                changed
            ), field

    def test_fuzz_specs_fingerprint_too(self):
        a = draw_spec(4)
        b = dataclasses.replace(a, seed=5)
        assert workload_fingerprint(a) == workload_fingerprint(draw_spec(4))
        assert workload_fingerprint(a) != workload_fingerprint(b)

    def test_fuzz_gadget_fields_are_in_the_key(self):
        spec = FuzzSpec(
            seed=1, iterations=60, gadgets=[FuzzGadget(kind="hammock")]
        )
        changed = spec.replace(
            gadgets=[FuzzGadget(kind="hammock", threshold=96)]
        )
        assert workload_fingerprint(spec) != workload_fingerprint(changed)
