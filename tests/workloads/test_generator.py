"""Unit tests for the workload generator and its gadgets."""

import pytest

from repro.profiling.hammock import classify_hammock
from repro.program.interpreter import Interpreter
from repro.workloads.generator import (
    GadgetSpec,
    WorkloadSpec,
    build_workload,
)


def spec_with(*gadgets, iterations=50, name="test"):
    return WorkloadSpec(name=name, iterations=iterations, gadgets=list(gadgets))


def run(workload):
    return workload.run()


class TestGadgetConstruction:
    @pytest.mark.parametrize(
        "kind",
        ["if", "ifelse", "nested", "ifelse_call", "no_merge", "split_merge",
         "loop", "mem", "fp"],
    )
    def test_each_gadget_builds_and_runs(self, kind):
        workload = build_workload(spec_with(GadgetSpec(kind)))
        trace = run(workload)
        assert trace.instruction_count > 0

    def test_unknown_gadget_rejected(self):
        with pytest.raises(ValueError):
            GadgetSpec("quantum")

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            build_workload(spec_with())

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            build_workload(spec_with(GadgetSpec("if"), iterations=0))


class TestDeterminism:
    def test_same_spec_same_trace(self):
        spec = spec_with(GadgetSpec("nested"), GadgetSpec("loop"))
        t1 = run(build_workload(spec))
        t2 = run(build_workload(spec))
        assert t1.instruction_count == t2.instruction_count
        assert t1.branch_outcomes() == t2.branch_outcomes()

    def test_different_seed_different_outcomes(self):
        base = spec_with(GadgetSpec("ifelse"))
        other = WorkloadSpec(
            name="test", iterations=50,
            gadgets=[GadgetSpec("ifelse")], seed=99,
        )
        t1 = run(build_workload(base))
        t2 = run(build_workload(other))
        assert t1.branch_outcomes() != t2.branch_outcomes()

    def test_workload_rerunnable(self):
        workload = build_workload(spec_with(GadgetSpec("mem")))
        t1 = run(workload)
        t2 = run(workload)
        assert t1.instruction_count == t2.instruction_count


class TestGadgetShapes:
    def test_if_gadget_is_simple_hammock(self):
        workload = build_workload(spec_with(GadgetSpec("if")))
        body = workload.program.function("body")
        assert classify_hammock(body, "g0_A") is not None

    def test_ifelse_gadget_is_simple_hammock(self):
        workload = build_workload(spec_with(GadgetSpec("ifelse")))
        body = workload.program.function("body")
        assert classify_hammock(body, "g0_A") is not None

    def test_nested_gadget_is_not_simple_hammock(self):
        workload = build_workload(spec_with(GadgetSpec("nested")))
        body = workload.program.function("body")
        assert classify_hammock(body, "g0_A") is None

    def test_ifelse_call_is_not_simple_hammock(self):
        workload = build_workload(spec_with(GadgetSpec("ifelse_call")))
        body = workload.program.function("body")
        assert classify_hammock(body, "g0_A") is None

    def test_ifelse_call_creates_helper(self):
        workload = build_workload(spec_with(GadgetSpec("ifelse_call")))
        assert "helper" in workload.program

    def test_loop_gadget_iterates(self):
        workload = build_workload(spec_with(GadgetSpec("loop")))
        trace = run(workload)
        # Inner loop blocks appear more than once per iteration on average.
        heads = sum(
            1 for r in trace if r.block.name == "g0_H"
        )
        assert heads > workload.spec.iterations

    def test_no_merge_long_arm_exceeds_cap(self):
        gadget = GadgetSpec("no_merge", long_work=140)
        workload = build_workload(spec_with(gadget))
        body = workload.program.function("body")
        assert len(body.block("g0_LONG")) > 120

    def test_split_merge_has_two_merge_points(self):
        workload = build_workload(spec_with(GadgetSpec("split_merge")))
        body = workload.program.function("body")
        assert "g0_M1" in body
        assert "g0_M2" in body
        # Both merge blocks reach the common continuation.
        assert body.block("g0_M1").successors() == ("g0_AFTER",)
        assert body.block("g0_M2").successors() == ("g0_AFTER",)


class TestBranchBehaviourControl:
    def test_biased_data_gives_biased_branch(self):
        gadget = GadgetSpec("if", data=("biased", 0.9))
        workload = build_workload(spec_with(gadget, iterations=300))
        trace = run(workload)
        outcomes = [
            r.taken for r in trace if r.block.name == "g0_A"
        ]
        taken_rate = 1 - (sum(outcomes) / len(outcomes))
        # 'if' branch: taken means SKIP (value >= threshold); the data is
        # biased so ~90% of values are below the threshold.
        assert taken_rate > 0.75

    def test_uniform_data_gives_coinflip_branch(self):
        gadget = GadgetSpec("ifelse", data=("uniform",))
        workload = build_workload(spec_with(gadget, iterations=400))
        trace = run(workload)
        outcomes = [r.taken for r in trace if r.block.name == "g0_A"]
        rate = sum(outcomes) / len(outcomes)
        assert 0.35 < rate < 0.65

    def test_scaled_spec_changes_length_only(self):
        spec = spec_with(GadgetSpec("if"), iterations=50)
        small = run(build_workload(spec))
        big = run(build_workload(spec.scaled(100)))
        assert big.instruction_count > small.instruction_count


class TestRegisterDiscipline:
    def test_loop_counter_never_clobbered(self):
        """The main loop must execute exactly `iterations` times even with
        every gadget kind active (regression test: work filler once
        clobbered the inner-loop registers)."""
        spec = spec_with(
            GadgetSpec("if"), GadgetSpec("ifelse"), GadgetSpec("nested"),
            GadgetSpec("ifelse_call"), GadgetSpec("no_merge"),
            GadgetSpec("split_merge"), GadgetSpec("loop"),
            GadgetSpec("mem"), GadgetSpec("fp"),
            iterations=30,
        )
        workload = build_workload(spec)
        trace = run(workload)
        heads = [r for r in trace if r.block.name == "head"]
        assert len(heads) == 31  # 30 not-taken + 1 exit
