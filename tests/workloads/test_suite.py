"""Unit tests for the 15-benchmark suite."""

import pytest

from repro.workloads.behaviors import (
    biased,
    noisy_periodic,
    pointer_chase_indices,
    strided_indices,
    uniform,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    benchmark_spec,
    build_benchmark,
)


class TestSuiteStructure:
    def test_fifteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 15
        assert len(INT_BENCHMARKS) == 12
        assert len(FP_BENCHMARKS) == 3

    def test_paper_names_present(self):
        for name in ("bzip2", "gcc", "mcf", "parser", "mesa", "fma3d"):
            assert name in BENCHMARK_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            benchmark_spec("soplex")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_builds_and_runs(self, name):
        workload = build_benchmark(name, iterations=20)
        trace = workload.run()
        assert trace.instruction_count > 20 * 10
        assert trace.branch_count > 20

    def test_iterations_override(self):
        spec = benchmark_spec("gzip", iterations=123)
        assert spec.iterations == 123


class TestCharacterDifferences:
    def test_fp_benchmarks_have_fp_instructions(self):
        workload = build_benchmark("mesa", iterations=10)
        from repro.isa.instructions import Opcode

        ops = {
            instr.opcode
            for cfg in workload.program.functions()
            for block in cfg
            for instr in block.instructions
        }
        assert Opcode.FDIV in ops

    def test_int_benchmarks_have_no_fp(self):
        workload = build_benchmark("gcc", iterations=10)
        from repro.isa.instructions import Opcode

        ops = {
            instr.opcode
            for cfg in workload.program.functions()
            for block in cfg
            for instr in block.instructions
        }
        assert Opcode.FDIV not in ops

    def test_mcf_has_large_footprint(self):
        mcf = benchmark_spec("mcf")
        chase = [g for g in mcf.gadgets if g.kind == "mem"]
        assert chase and chase[0].access == "chase"
        assert chase[0].footprint > 1 << 17

    def test_gcc_has_no_merge_gadgets(self):
        gcc = benchmark_spec("gcc")
        assert any(g.kind == "no_merge" for g in gcc.gadgets)

    def test_hard_benchmarks_have_nested_gadgets(self):
        for name in ("bzip2", "parser", "twolf", "vpr"):
            spec = benchmark_spec(name)
            assert any(g.kind == "nested" for g in spec.gadgets), name


class TestBehaviours:
    def test_uniform_range(self):
        values = uniform(500, seed=1, bound=256)
        assert all(0 <= v < 256 for v in values)

    def test_uniform_deterministic(self):
        assert uniform(50, seed=1) == uniform(50, seed=1)
        assert uniform(50, seed=1) != uniform(50, seed=2)

    def test_biased_fraction(self):
        values = biased(2000, seed=1, taken_fraction=0.9)
        below = sum(1 for v in values if v < 128)
        assert 0.85 < below / len(values) < 0.95

    def test_biased_bounds_validated(self):
        with pytest.raises(ValueError):
            biased(10, seed=1, taken_fraction=1.5)

    def test_periodic_zero_noise_is_exact(self):
        pattern = (10, 20, 30)
        values = noisy_periodic(9, seed=1, pattern=pattern, noise=0.0)
        assert values == [10, 20, 30] * 3

    def test_periodic_validations(self):
        with pytest.raises(ValueError):
            noisy_periodic(10, seed=1, pattern=())
        with pytest.raises(ValueError):
            noisy_periodic(10, seed=1, pattern=(1,), noise=2.0)

    def test_pointer_chase_within_footprint(self):
        idx = pointer_chase_indices(100, seed=1, footprint=64)
        assert all(0 <= i < 64 for i in idx)

    def test_strided_indices(self):
        idx = strided_indices(10, stride=3, footprint=16)
        assert idx == [(i * 3) % 16 for i in range(10)]
