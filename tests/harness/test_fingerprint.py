"""Canonical fingerprinting: the cache/memo keys must be total over the
object's data and independent of dict insertion order."""

import dataclasses

import pytest

from repro.harness.fingerprint import (
    canonicalize,
    config_fingerprint,
    context_fingerprint,
    fingerprint,
)
from repro.profiling.diverge_selection import SelectionThresholds
from repro.uarch.config import MachineConfig


class TestCanonicalize:
    def test_dict_order_independent(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert canonicalize(a) == canonicalize(b)
        assert fingerprint(a) == fingerprint(b)

    def test_type_distinctions(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(1) != fingerprint(True)
        assert fingerprint("1") != fingerprint(1)

    def test_nested_structures(self):
        a = {"outer": {"b": 2, "a": 1}, "seq": [1, 2, (3, 4)]}
        b = {"seq": [1, 2, (3, 4)], "outer": {"a": 1, "b": 2}}
        assert fingerprint(a) == fingerprint(b)

    def test_rejects_arbitrary_objects(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            canonicalize(Opaque())


class TestConfigFingerprint:
    def test_repr_order_bug_regression(self):
        """Two equal configs whose dict fields differ only in insertion
        order used to get distinct ``repr``-based memo keys (wasted
        runs); the canonical fingerprint must unify them."""
        a = MachineConfig.baseline(
            confidence_args={"table_size": 2048, "threshold": 12}
        )
        b = MachineConfig.baseline(
            confidence_args={"threshold": 12, "table_size": 2048}
        )
        assert a == b
        assert repr(a) != repr(b)  # the old, broken key
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_every_field_participates(self):
        """No field can be omitted from the key (a ``repr`` omission
        would collide two different configs onto the same cached
        stats): flipping any field changes the fingerprint."""
        base = MachineConfig.baseline()
        seen = {config_fingerprint(base)}
        for field in dataclasses.fields(MachineConfig):
            value = getattr(base, field.name)
            if isinstance(value, bool):
                changed = not value
            elif isinstance(value, int):
                changed = value + 1
            elif isinstance(value, str):
                candidates = {
                    "mode": "dmp",
                    "engine": "reference",
                    "predictor_kind": "gshare",
                    "confidence_kind": "perfect",
                    "dpred_ghr_policy": "alternate",
                    "multiple_diverge_policy": "nested",
                }
                changed = candidates[field.name]
            elif isinstance(value, dict):
                changed = {"marker": 1}
            elif value is None:
                changed = 123456
            else:  # pragma: no cover - no other field types today
                continue
            fp = config_fingerprint(
                dataclasses.replace(base, **{field.name: changed})
            )
            assert fp not in seen, f"field {field.name} not in fingerprint"
            seen.add(fp)

    def test_distinct_configs_distinct_keys(self):
        assert config_fingerprint(MachineConfig.dmp()) != config_fingerprint(
            MachineConfig.dhp()
        )


class TestContextFingerprint:
    def test_sensitive_to_every_parameter(self):
        base = context_fingerprint("parser", 100, 0, SelectionThresholds())
        assert base != context_fingerprint(
            "gzip", 100, 0, SelectionThresholds()
        )
        assert base != context_fingerprint(
            "parser", 200, 0, SelectionThresholds()
        )
        assert base != context_fingerprint(
            "parser", 100, 1, SelectionThresholds()
        )
        assert base != context_fingerprint(
            "parser", 100, 0, SelectionThresholds(min_misprediction_rate=0.5)
        )

    def test_stable_across_calls(self):
        assert context_fingerprint(
            "parser", 100, 0, SelectionThresholds()
        ) == context_fingerprint("parser", 100, 0, SelectionThresholds())
