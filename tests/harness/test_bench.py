"""The engine microbenchmark harness (repro.harness.bench)."""

import math

import pytest

from repro.harness import bench


def _cell(benchmark="parser", config="base", speedup=2.0, identical=True,
          traced_identical=True, degenerate=False):
    return {
        "benchmark": benchmark,
        "config": config,
        "retired_instructions": 1000,
        "identical": identical,
        "traced_identical": traced_identical,
        "traced_events": 10,
        "degenerate": degenerate,
        "reference_cold_s": speedup,
        "fast_cold_s": 1.0,
        "fast_warm_s": 1.0,
        "reference_cold_ips": 1000 / speedup if speedup else 0.0,
        "fast_cold_ips": 1000.0,
        "fast_warm_ips": 1000.0,
        "speedup_cold": speedup,
        "speedup_warm": speedup,
    }


def _report(cells):
    live = [c for c in cells if not c.get("degenerate")]
    return {
        "schema": bench.SCHEMA,
        "parameters": {},
        "host": {},
        "cells": cells,
        "summary": {
            "geomean_speedup_cold": bench.geomean(
                c["speedup_cold"] for c in live
            ),
            "geomean_speedup_warm": bench.geomean(
                c["speedup_warm"] for c in live
            ),
            "all_identical": all(c["identical"] for c in cells),
            "all_traced_identical": all(
                c.get("traced_identical", True) for c in cells
            ),
            "degenerate_cells": [
                f"{c['benchmark']}/{c['config']}" for c in cells
                if c.get("degenerate")
            ],
        },
    }


class TestGeomean:
    def test_basic(self):
        assert bench.geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_ignores_nonpositive(self):
        assert bench.geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert bench.geomean([]) == 0.0


class TestCompare:
    def test_clean_pass(self):
        report = _report([_cell()])
        assert bench.compare(report, report) == []

    def test_within_budget_passes(self):
        current = _report([_cell(speedup=1.6)])
        baseline = _report([_cell(speedup=2.0)])
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_cell_regression_fails(self):
        current = _report([_cell(speedup=1.4)])
        baseline = _report([_cell(speedup=2.0)])
        problems = bench.compare(current, baseline, max_regression=0.25)
        assert any("parser/base" in p for p in problems)

    def test_overall_geomean_regression_fails(self):
        current = _report([_cell(speedup=1.0)])
        baseline = _report([_cell(speedup=2.0)])
        problems = bench.compare(current, baseline, max_regression=0.25)
        assert any(p.startswith("overall") for p in problems)

    def test_identity_mismatch_always_fails(self):
        current = _report([_cell(identical=False)])
        problems = bench.compare(current, current)
        assert any("diverge" in p for p in problems)

    def test_unmatched_cells_are_skipped(self):
        current = _report([_cell(config="dhp", speedup=1.0)])
        baseline = _report([_cell(config="base", speedup=2.0)])
        problems = bench.compare(current, baseline, max_regression=0.25)
        # No per-cell match; only the overall geomean can fire.
        assert all(p.startswith("overall") for p in problems)

    def test_faster_is_never_a_regression(self):
        current = _report([_cell(speedup=3.0)])
        baseline = _report([_cell(speedup=2.0)])
        assert bench.compare(current, baseline) == []

    def test_traced_mismatch_always_fails(self):
        current = _report([_cell(traced_identical=False)])
        problems = bench.compare(current, current)
        assert any("tracing perturbed" in p for p in problems)

    def test_missing_summary_geomeans_do_not_crash(self):
        # An all-degenerate report (every cell below the process_time
        # tick) can legitimately lack the summary geomeans; compare must
        # treat the absent key as "no ratio information", not KeyError.
        current = _report([_cell()])
        baseline = _report([_cell()])
        del baseline["summary"]["geomean_speedup_cold"]
        assert bench.compare(current, baseline) == []
        del current["summary"]["geomean_speedup_cold"]
        assert bench.compare(current, baseline) == []

    def test_all_degenerate_report_compares_clean(self):
        report = _report([_cell(speedup=0.0, degenerate=True)])
        assert report["summary"]["geomean_speedup_cold"] == 0.0
        assert bench.compare(report, report) == []


class TestDegenerateCells:
    """Cells that finished below the process_time tick carry no ratio
    information and must be excluded rather than ingested as 0.0."""

    def test_degenerate_current_cell_is_not_a_regression(self):
        # A degenerate current cell would read as an (impossible)
        # speedup collapse if its fake zero ratio were compared.
        current = _report([_cell(speedup=0.0, degenerate=True),
                           _cell(config="dhp", speedup=2.0)])
        baseline = _report([_cell(speedup=2.0),
                            _cell(config="dhp", speedup=2.0)])
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_degenerate_baseline_cell_is_skipped(self):
        current = _report([_cell(speedup=0.5)])
        baseline = _report([_cell(speedup=0.0, degenerate=True)])
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_zero_speedup_baseline_with_explicit_marker_false(self):
        # Regression test: a baseline cell that claims degenerate=False
        # while carrying a 0.0 speedup used to crash the per-cell loop
        # with ZeroDivisionError; it must be skipped like any other
        # ratio-free cell, not take down the CI gate.
        current = _report([_cell(speedup=2.0)])
        baseline = _report([_cell(speedup=0.0, degenerate=False)])
        assert bench._degenerate(baseline["cells"][0])
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_geomean_excludes_degenerate(self):
        report = _report([_cell(speedup=4.0),
                          _cell(config="dhp", speedup=0.0, degenerate=True)])
        assert report["summary"]["geomean_speedup_cold"] == pytest.approx(4.0)
        assert report["summary"]["degenerate_cells"] == ["parser/dhp"]

    def test_pre_marker_reports_infer_from_zero_speedup(self):
        # Reports written before the marker existed signalled a dead
        # cell only through a 0.0 speedup; compare() must still skip it.
        old_cell = {k: v for k, v in _cell(speedup=0.0).items()
                    if k not in ("degenerate", "traced_identical",
                                 "traced_events")}
        assert bench._degenerate(old_cell)
        current = _report([_cell(speedup=2.0)])
        baseline = _report([old_cell])
        assert bench.compare(current, baseline, max_regression=0.25) == []

    def test_pre_marker_live_cell_still_compared(self):
        old_cell = {k: v for k, v in _cell(speedup=2.0).items()
                    if k not in ("degenerate", "traced_identical",
                                 "traced_events")}
        assert not bench._degenerate(old_cell)
        current = _report([_cell(speedup=1.0)])
        problems = bench.compare(current, _report([old_cell]),
                                 max_regression=0.25)
        assert any("parser/base" in p for p in problems)


class TestReportIO:
    def test_save_load_round_trip(self, tmp_path):
        report = _report([_cell()])
        path = tmp_path / "BENCH_test.json"
        bench.save_report(report, path)
        assert bench.load_report(path) == report

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        bench.save_report({**_report([]), "schema": "other/9"}, path)
        with pytest.raises(ValueError):
            bench.load_report(path)


class TestRunBench:
    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            bench.run_bench(configs=("warp-drive",))

    def test_tiny_run_structure(self):
        report = bench.run_bench(
            benchmarks=("gzip",),
            configs=("base",),
            iterations=60,
            repeats=1,
            batch="off",
        )
        assert report["schema"] == bench.SCHEMA
        (cell,) = report["cells"]
        assert cell["identical"] is True
        assert cell["traced_identical"] is True
        assert cell["traced_events"] > 0
        assert cell["degenerate"] is False
        assert cell["retired_instructions"] > 0
        assert cell["fast_cold_ips"] > 0
        assert cell["speedup_cold"] > 0
        summary = report["summary"]
        assert summary["all_identical"] is True
        assert summary["all_traced_identical"] is True
        assert summary["degenerate_cells"] == []
        assert summary["geomean_speedup_cold"] == pytest.approx(
            cell["speedup_cold"]
        )
        assert not math.isnan(summary["geomean_speedup_warm"])

    def test_unknown_batch_mode_rejected(self):
        with pytest.raises(ValueError):
            bench.run_bench(batch="sideways")

    def test_empty_sweep_is_skipped_not_divided_by(self):
        # A degenerate sweep description (no benchmarks, seeds or
        # configs) has zero cells; the group must report the skip
        # instead of dying on the per-cell share division.
        from repro.uarch.batch import batch_supported

        if not batch_supported():
            pytest.skip("numpy unavailable; batch engine inactive")
        for empty in (
            {"benchmarks": ()},
            {"seeds": ()},
            {"config_names": ()},
        ):
            kwargs = dict(
                benchmarks=("gzip",), iterations=10, seeds=(0,), sample=1,
                cache=None,
            )
            kwargs.update(empty)
            messages = []
            cell = bench._run_batch_group(
                "batch-test", say=messages.append, **kwargs
            )
            assert cell is None
            assert any("empty sweep" in m for m in messages)

    def test_batch_group_cell_structure(self):
        from repro.uarch.batch import batch_supported

        if not batch_supported():
            pytest.skip("numpy unavailable; batch engine inactive")
        cell = bench._run_batch_group(
            "batch-test", benchmarks=("gzip",), iterations=60,
            seeds=(0,), sample=2, cache=None, say=lambda _msg: None,
        )
        assert cell["benchmark"] == "suite"
        assert cell["config"] == "batch-test"
        assert cell["identical"] is True
        assert cell["degenerate"] is False
        assert cell["sweep_cells"] == len(bench._batch_grid())
        assert cell["sampled_reference_cells"] == 2
        assert cell["retired_instructions"] > 0
        assert cell["speedup_cold"] > 0
        # Phase attribution must account for the group's wall time and
        # carry every phase key, measured not estimated.
        assert set(cell["profile"]) == {
            "arena_build", "step_loop", "episode_tails",
            "scalar_walks", "scalar_fallback",
        }
        assert cell["profile"]["step_loop"] > 0
        assert set(cell["gang_stats"]) == {
            "gangs", "ganged_lanes", "singleton_lanes", "max_gang",
        }
        # Batch cells carry no warm/traced keys; the summary treats the
        # missing trace marker as non-perturbing rather than crashing.
        assert "speedup_warm" not in cell
        assert "traced_identical" not in cell

    def test_dmp_batch_group_cell_structure(self):
        from repro.uarch.batch import batch_supported

        if not batch_supported():
            pytest.skip("numpy unavailable; batch engine inactive")
        cell = bench._run_batch_group(
            "batch-dmp-test", benchmarks=("gzip",), iterations=60,
            seeds=(0,), sample=2, cache=None, say=lambda _msg: None,
            config_names=bench.DMP_BATCH_CONFIGS, use_hints=True,
            fast_modes=("dmp",),
        )
        assert cell["identical"] is True
        assert cell["degenerate"] is False
        assert cell["sweep_cells"] == len(
            bench._batch_grid(bench.DMP_BATCH_CONFIGS)
        )
        # The dmp arm must actually predicate on the vector path: the
        # fast-engine comparator samples dmp-mode cells only and its
        # geomean is the headline the CI gate rides on.
        assert cell["fast_sampled_cells"] > 0
        assert cell["speedup_fast_dmp"] > 0
        assert cell["fast_percell_s"] > 0
        # dmp lanes must actually reach the ganged-episode kernels:
        # a sweep whose every episode ran the singleton scalar path
        # would silently measure the wrong thing.
        assert cell["gang_stats"]["ganged_lanes"] > 0
        assert cell["gang_stats"]["max_gang"] >= 2
        assert cell["profile"]["episode_tails"] > 0


class TestFindLatestBaseline:
    def test_picks_newest_by_embedded_timestamp(self, tmp_path):
        for stamp in ("20260101T000000Z", "20261231T235959Z",
                      "20260615T120000Z"):
            bench.save_report(_report([]), tmp_path / f"BENCH_{stamp}.json")
        assert bench.find_latest_baseline(str(tmp_path)).endswith(
            "BENCH_20261231T235959Z.json"
        )

    def test_empty_directory_is_actionable(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="repro bench"):
            bench.find_latest_baseline(str(tmp_path))
