"""Tests for the multi-seed statistical harness."""

import pytest

from repro.harness.experiment import (
    MultiSeedResult,
    SuiteResult,
    run_multi_seed,
)
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats


def fake_suite(base_ipc, dmp_ipc):
    result = SuiteResult()
    base = SimStats(benchmark="x")
    base.cycles = 1000
    base.retired_instructions = int(1000 * base_ipc)
    dmp = SimStats(benchmark="x")
    dmp.cycles = 1000
    dmp.retired_instructions = int(1000 * dmp_ipc)
    result.add("x", "base", base)
    result.add("x", "dmp", dmp)
    return result


class TestMultiSeedResult:
    def test_improvement_stats(self):
        multi = MultiSeedResult()
        multi.add(0, fake_suite(1.0, 1.1))
        multi.add(1, fake_suite(1.0, 1.3))
        mean, lo, hi = multi.improvement_stats("x", "dmp")
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(30.0)
        assert mean == pytest.approx(20.0)

    def test_sign_stable_positive(self):
        multi = MultiSeedResult()
        multi.add(0, fake_suite(1.0, 1.1))
        multi.add(1, fake_suite(1.0, 1.2))
        assert multi.sign_stable("x", "dmp")

    def test_sign_unstable(self):
        multi = MultiSeedResult()
        multi.add(0, fake_suite(1.0, 1.2))
        multi.add(1, fake_suite(1.0, 0.8))
        assert not multi.sign_stable("x", "dmp")

    def test_near_zero_counts_as_stable(self):
        multi = MultiSeedResult()
        multi.add(0, fake_suite(1.0, 1.005))
        multi.add(1, fake_suite(1.0, 0.999))
        assert multi.sign_stable("x", "dmp", tolerance=1.0)


class TestRunMultiSeed:
    def test_two_seeds_differ(self):
        configs = {"base": MachineConfig.baseline()}
        results = run_multi_seed(
            configs, benchmarks=("gzip",), seeds=(0, 1), iterations=80
        )
        assert set(results.by_seed) == {0, 1}
        cycles = {
            seed: result.stats("gzip", "base").cycles
            for seed, result in results.by_seed.items()
        }
        # Different seeds generate different data, hence different timing.
        assert cycles[0] != cycles[1]
