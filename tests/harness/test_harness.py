"""Integration tests for the experiment harness (small workloads)."""

import pytest

from repro.harness.experiment import (
    BenchmarkContext,
    SuiteResult,
    figure7_configs,
    figure9_configs,
    run_suite,
)
from repro.harness.tables import format_series, format_table
from repro.harness import figures
from repro.uarch.config import MachineConfig

SMALL = 150  # iterations for fast harness tests


@pytest.fixture(scope="module")
def parser_context():
    return BenchmarkContext("parser", iterations=SMALL)


class TestBenchmarkContext:
    def test_artifacts_lazy_and_cached(self, parser_context):
        trace1 = parser_context.trace
        trace2 = parser_context.trace
        assert trace1 is trace2
        assert parser_context.profile.total_instructions == (
            trace1.instruction_count
        )

    def test_hint_tables_built(self, parser_context):
        assert len(parser_context.diverge_hints) > 0
        # parser has at least one simple hammock among its hard branches
        # (the hard ifelse gadget).
        assert len(parser_context.hammock_hints) >= 1

    def test_hints_dispatch_by_mode(self, parser_context):
        assert parser_context.hints_for(MachineConfig.dmp()) is (
            parser_context.diverge_hints
        )
        assert parser_context.hints_for(MachineConfig.dhp()) is (
            parser_context.hammock_hints
        )
        assert parser_context.hints_for(MachineConfig.baseline()) is None

    def test_simulation_memoized(self, parser_context):
        config = MachineConfig.baseline()
        s1 = parser_context.simulate(config)
        s2 = parser_context.simulate(config)
        assert s1 is s2

    def test_dmp_beats_baseline_on_parser(self, parser_context):
        base = parser_context.simulate(MachineConfig.baseline())
        dmp = parser_context.simulate(MachineConfig.dmp(enhanced=True))
        assert dmp.ipc > base.ipc
        assert dmp.pipeline_flushes < base.pipeline_flushes


class TestRunSuite:
    def test_suite_over_two_benchmarks(self):
        configs = {
            "base": MachineConfig.baseline(),
            "dmp": MachineConfig.dmp(),
        }
        result = run_suite(
            configs, benchmarks=("gzip", "eon"), iterations=SMALL
        )
        assert set(result.benchmarks) == {"gzip", "eon"}
        assert result.stats("gzip", "base").cycles > 0
        improvements = result.ipc_improvements("dmp")
        assert set(improvements) == {"gzip", "eon"}
        assert isinstance(result.mean_improvement("dmp"), float)

    def test_contexts_shared(self):
        contexts = {}
        configs = {"base": MachineConfig.baseline()}
        run_suite(configs, benchmarks=("eon",), iterations=SMALL,
                  contexts=contexts)
        assert "eon" in contexts

    def test_figure_config_sets(self):
        f7 = figure7_configs()
        assert set(f7) >= {
            "base", "DHP-jrs", "diverge-jrs", "perfect-cbp", "dualpath"
        }
        f9 = figure9_configs()
        assert "enhanced-mcfm-eexit-mdb" in f9
        assert f9["enhanced-mcfm-eexit-mdb"].multiple_diverge


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in text
        assert "22.25" in text

    def test_format_series(self):
        text = format_series("s", {"a": 1.0, "b": 2})
        assert "s:" in text
        assert "1.00" in text


class TestFigureDrivers:
    def test_table1_is_static(self):
        result = figures.table1()
        assert len(result.rows) == 6
        assert "flush the pipeline" in result.format()

    def test_table2_reflects_config(self):
        result = figures.table2(MachineConfig(rob_size=128))
        assert ["reorder buffer", 128] in result.rows

    def test_fig1_runs_small(self):
        result = figures.fig1(benchmarks=("eon",), iterations=SMALL)
        rows = result.by_benchmark()
        assert "eon" in rows
        cd, ci, total = rows["eon"]
        assert total == pytest.approx(cd + ci)

    def test_fig6_classifies(self):
        result = figures.fig6(benchmarks=("parser",), iterations=SMALL)
        row = result.by_benchmark()["parser"]
        assert sum(row) > 0  # parser has mispredictions in some class

    def test_fig7_and_fig9_share_contexts(self):
        contexts = {}
        r7 = figures.fig7(
            contexts=contexts, benchmarks=("gzip",), iterations=SMALL
        )
        r9 = figures.fig9(
            contexts=contexts, benchmarks=("gzip",), iterations=SMALL
        )
        assert "gzip" in r7.by_benchmark()
        assert "gzip" in r9.by_benchmark()
        assert "gzip" in contexts

    def test_fig8_distribution_sums_to_100(self):
        result = figures.fig8(benchmarks=("parser",), iterations=SMALL)
        shares = result.by_benchmark()["parser"]
        assert sum(shares) == pytest.approx(100.0, abs=0.1)

    def test_fig11_flush_reduction(self):
        result = figures.fig11(benchmarks=("parser",), iterations=SMALL)
        reduction = result.by_benchmark()["parser"][0]
        assert reduction > 0

    def test_fig12_counts(self):
        result = figures.fig12(benchmarks=("parser",), iterations=SMALL)
        row = result.by_benchmark()["parser"]
        fetch_base, fetch_dmp, exec_base, exec_dmp, extra, selects = row
        assert fetch_base > 0 and exec_dmp >= exec_base
        assert extra > 0 and selects > 0

    def test_fig13_sweep_shapes(self):
        result = figures.fig13(
            benchmarks=("gzip",), iterations=SMALL,
            windows=(128, 512), depths=(10, 30),
        )
        assert len(result.rows) == 4
        kinds = [row[0] for row in result.rows]
        assert kinds == ["window", "window", "depth", "depth"]
