"""Parallel suite runner + persistent artifact cache.

The contract under test (ISSUE 2): a parallel (``jobs=N``) run and a
cache-warm run each produce a :class:`SuiteResult` *exactly equal* to a
serial cold run; corrupted cache entries are detected, discarded and
recomputed; and the harness keying/context-reuse bugfixes hold.
"""

import pytest

from repro.errors import ReproError
from repro.harness import figures
from repro.harness.cache import ArtifactCache
from repro.harness.experiment import (
    BenchmarkContext,
    SuiteResult,
    run_multi_seed,
    run_suite,
)
from repro.profiling.diverge_selection import SelectionThresholds
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.runtime import paranoid

SMALL = 80
BENCHMARKS = ("parser", "gzip")


def small_configs():
    return {
        "base": MachineConfig.baseline(),
        "dmp": MachineConfig.dmp(enhanced=True),
    }


@pytest.fixture(scope="module")
def serial_cold():
    return run_suite(small_configs(), BENCHMARKS, iterations=SMALL)


class TestParallelEqualsSerial:
    def test_parallel_bit_identical(self, serial_cold):
        par = run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL, jobs=4
        )
        assert par == serial_cold
        assert par.timings.jobs == 4
        assert par.timings.simulations_run == len(BENCHMARKS) * 2

    def test_parallel_verbose_and_single_pending(self, serial_cold, capsys):
        # Warm memo via shared contexts: only some cells go to the pool.
        contexts = {}
        run_suite(
            {"base": MachineConfig.baseline()},
            BENCHMARKS,
            iterations=SMALL,
            contexts=contexts,
        )
        par = run_suite(
            small_configs(),
            BENCHMARKS,
            iterations=SMALL,
            contexts=contexts,
            jobs=2,
            verbose=True,
        )
        assert par == serial_cold
        assert par.timings.sim_memo_hits == len(BENCHMARKS)
        assert par.timings.simulations_run == len(BENCHMARKS)
        assert "IPC=" in capsys.readouterr().out

    def test_oracle_checks_stay_armed_in_workers(self):
        with paranoid(True):
            result = run_suite(
                {"dmp": MachineConfig.dmp()},
                ("parser",),
                iterations=60,
                jobs=2,
            )
        assert result.stats("parser", "dmp").oracle_checks > 0

    def test_bad_jobs_rejected(self):
        with pytest.raises(ReproError):
            run_suite(small_configs(), ("gzip",), iterations=SMALL, jobs=0)


class TestPersistentCache:
    def test_warm_run_identical_and_all_hits(self, serial_cold, tmp_path):
        cold_cache = ArtifactCache(tmp_path)
        cold = run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL, cache=cold_cache
        )
        assert cold == serial_cold
        assert cold_cache.counters.stores > 0

        warm_cache = ArtifactCache(tmp_path)
        warm = run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL, cache=warm_cache
        )
        assert warm == serial_cold
        # Every stage skipped: no simulations executed, no cache misses.
        assert warm.timings.simulations_run == 0
        assert warm.timings.sim_cache_hits == len(BENCHMARKS) * 2
        assert warm_cache.counters.total_misses == 0
        assert warm_cache.counters.total_hits > 0
        assert warm.timings.wall_seconds < cold.timings.wall_seconds

    def test_parallel_with_cache_warm(self, serial_cold, tmp_path):
        run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL,
            cache=ArtifactCache(tmp_path),
        )
        warm = run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL, jobs=4,
            cache=ArtifactCache(tmp_path),
        )
        assert warm == serial_cold
        assert warm.timings.simulations_run == 0

    def test_corrupt_sim_entry_recomputed(self, serial_cold, tmp_path):
        run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL,
            cache=ArtifactCache(tmp_path),
        )
        victims = sorted((tmp_path / "sim").glob("*.bin"))
        assert victims
        victims[0].write_bytes(victims[0].read_bytes()[: 10])  # truncate
        victims[1].write_bytes(b"\x00" * 100)                  # garbage

        cache = ArtifactCache(tmp_path)
        result = run_suite(
            small_configs(), BENCHMARKS, iterations=SMALL, cache=cache
        )
        assert result == serial_cold
        assert cache.counters.corrupt_discarded == 2
        assert result.timings.simulations_run == 2  # only the victims

    def test_corrupt_hint_entry_recomputed(self, tmp_path):
        """A bit-flipped hint-table entry fails its checksum, is
        discarded, and the table is rebuilt identically (the
        HintValidationError detect-and-recover pathway)."""
        pristine = BenchmarkContext(
            "parser", iterations=SMALL, cache=ArtifactCache(tmp_path)
        )
        expected = pristine.diverge_hints.to_bytes()

        victim = sorted((tmp_path / "hints-dmp").glob("*.bin"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-4] ^= 0xFF  # flip payload bits: checksum must catch it
        victim.write_bytes(bytes(blob))

        cache = ArtifactCache(tmp_path)
        rebuilt = BenchmarkContext("parser", iterations=SMALL, cache=cache)
        assert rebuilt.diverge_hints.to_bytes() == expected
        assert cache.counters.corrupt_discarded == 1

    def test_valid_checksum_bad_pickle_recovered(self, tmp_path):
        """A checksummed entry whose payload no longer unpickles (stale
        class shapes) is discarded and recomputed, not crashed on."""
        cache = ArtifactCache(tmp_path)
        context = BenchmarkContext("eon", iterations=60, cache=cache)
        cache.store_bytes("trace", context.fingerprint, b"not a pickle")
        trace = context.trace  # must rebuild, not raise
        assert trace.instruction_count > 0
        assert cache.counters.corrupt_discarded == 1

    def test_different_iterations_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = run_suite(
            {"base": MachineConfig.baseline()}, ("gzip",),
            iterations=60, cache=cache,
        )
        b = run_suite(
            {"base": MachineConfig.baseline()}, ("gzip",),
            iterations=120, cache=cache,
        )
        assert a.stats("gzip", "base") != b.stats("gzip", "base")


class TestHarnessBugfixes:
    def test_memo_key_ignores_dict_order(self):
        """Regression: ``repr``-keyed memoization gave two equal configs
        distinct cache entries when dict fields differed in insertion
        order."""
        context = BenchmarkContext("eon", iterations=60)
        a = MachineConfig.baseline(
            confidence_args={"table_size": 2048, "threshold": 12}
        )
        b = MachineConfig.baseline(
            confidence_args={"threshold": 12, "table_size": 2048}
        )
        assert context.simulate(a) is context.simulate(b)
        assert context.sims_run == 1

    def test_thresholds_default_not_shared(self):
        """Regression: the shared default-argument ``SelectionThresholds``
        instance let a mutation leak into every later context."""
        first = BenchmarkContext("parser")
        second = BenchmarkContext("gzip")
        assert first.thresholds is not second.thresholds
        assert first.thresholds == SelectionThresholds()
        # Even a thresholds object smuggled past the frozen-dataclass
        # guard cannot leak: every context gets a fresh instance.
        object.__setattr__(first.thresholds, "min_misprediction_rate", 0.99)
        assert second.thresholds.min_misprediction_rate != 0.99
        assert (
            BenchmarkContext("vpr").thresholds.min_misprediction_rate
            == SelectionThresholds().min_misprediction_rate
        )

    def test_explicit_thresholds_still_honoured(self):
        custom = SelectionThresholds(min_misprediction_rate=0.5)
        context = BenchmarkContext("parser", thresholds=custom)
        assert context.thresholds is custom

    def test_stale_context_iterations_rejected(self):
        """Regression: ``run_suite(..., contexts=...)`` silently reused a
        context built with different parameters."""
        contexts = {"gzip": BenchmarkContext("gzip", iterations=40)}
        with pytest.raises(ReproError, match="stale context"):
            run_suite(
                {"base": MachineConfig.baseline()}, ("gzip",),
                iterations=SMALL, contexts=contexts,
            )

    def test_stale_context_seed_rejected(self):
        contexts = {"gzip": BenchmarkContext("gzip", iterations=SMALL, seed=3)}
        with pytest.raises(ReproError, match="stale context"):
            run_suite(
                {"base": MachineConfig.baseline()}, ("gzip",),
                iterations=SMALL, contexts=contexts, seed=0,
            )

    def test_figure_drivers_reject_stale_contexts(self):
        contexts = {"eon": BenchmarkContext("eon", iterations=40)}
        with pytest.raises(ReproError, match="stale context"):
            figures.fig1(
                contexts=contexts, benchmarks=("eon",), iterations=SMALL
            )

    def test_matching_context_accepted(self):
        contexts = {"gzip": BenchmarkContext("gzip", iterations=SMALL)}
        result = run_suite(
            {"base": MachineConfig.baseline()}, ("gzip",),
            iterations=SMALL, contexts=contexts,
        )
        assert result.stats("gzip", "base").cycles > 0


class TestSuiteResultEquality:
    def test_equal_and_unequal(self):
        a, b = SuiteResult(), SuiteResult()
        stats = SimStats(benchmark="x")
        stats.cycles = 10
        a.add("x", "base", stats)
        b.add("x", "base", stats)
        assert a == b
        other = SimStats(benchmark="x")
        other.cycles = 11
        b.add("x", "dmp", other)
        assert a != b
        assert a != "not a result"


class TestMultiSeedPassthrough:
    def test_multi_seed_cache_warm_identical(self, tmp_path):
        configs = {"base": MachineConfig.baseline()}
        cold = run_multi_seed(
            configs, ("gzip",), seeds=(0, 1), iterations=60,
            cache=ArtifactCache(tmp_path),
        )
        warm = run_multi_seed(
            configs, ("gzip",), seeds=(0, 1), iterations=60,
            cache=ArtifactCache(tmp_path),
        )
        assert warm.by_seed == cold.by_seed
        assert all(
            result.timings.simulations_run == 0
            for result in warm.by_seed.values()
        )
