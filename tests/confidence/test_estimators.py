"""Unit tests for the confidence estimators."""

import pytest

from repro.confidence import make_estimator
from repro.confidence.jrs import JRSConfidenceEstimator
from repro.confidence.perfect import (
    AlwaysConfident,
    NeverConfident,
    PerfectConfidenceEstimator,
)


class TestJRS:
    def test_starts_unconfident(self):
        jrs = JRSConfidenceEstimator(table_size=64, counter_bits=4)
        assert not jrs.is_confident(0x1000, 0)

    def test_becomes_confident_after_streak(self):
        jrs = JRSConfidenceEstimator(table_size=64, counter_bits=4)
        for _ in range(15):
            jrs.update(0x1000, 0, was_correct=True)
        assert jrs.is_confident(0x1000, 0)

    def test_misprediction_resets(self):
        jrs = JRSConfidenceEstimator(table_size=64, counter_bits=4)
        for _ in range(15):
            jrs.update(0x1000, 0, was_correct=True)
        jrs.update(0x1000, 0, was_correct=False)
        assert not jrs.is_confident(0x1000, 0)

    def test_history_contexts_are_separate(self):
        jrs = JRSConfidenceEstimator(
            table_size=64, history_bits=6, counter_bits=2
        )
        for _ in range(3):
            jrs.update(0x1000, 0b101010, was_correct=True)
        assert jrs.is_confident(0x1000, 0b101010)
        assert not jrs.is_confident(0x1000, 0b010101)

    def test_custom_threshold(self):
        jrs = JRSConfidenceEstimator(
            table_size=64, counter_bits=4, threshold=2
        )
        jrs.update(0x1000, 0, True)
        assert not jrs.is_confident(0x1000, 0)
        jrs.update(0x1000, 0, True)
        assert jrs.is_confident(0x1000, 0)

    def test_counter_saturates(self):
        jrs = JRSConfidenceEstimator(table_size=64, counter_bits=2)
        for _ in range(100):
            jrs.update(0x1000, 0, True)
        index = jrs._index(0x1000, 0)
        assert jrs._counters[index] == 3

    def test_power_of_two_table(self):
        with pytest.raises(ValueError):
            JRSConfidenceEstimator(table_size=100)


class TestJRSPaperPreset:
    """The Table 2 instance: 1KB = 2048 x 4-bit MDCs, 12-bit history,
    full-saturation confidence threshold."""

    def test_paper_parameters(self):
        jrs = JRSConfidenceEstimator.paper()
        assert jrs.table_size == 2048
        assert jrs.history_bits == 12
        assert jrs.counter_max == 15          # 4-bit counters
        assert jrs.threshold == jrs.counter_max  # full saturation
        # 2048 counters x 4 bits = 1KB of state.
        assert jrs.table_size * 4 // 8 == 1024

    def test_paper_requires_full_saturation(self):
        jrs = JRSConfidenceEstimator.paper()
        for _ in range(14):
            jrs.update(0x1000, 0, was_correct=True)
        assert not jrs.is_confident(0x1000, 0)
        jrs.update(0x1000, 0, was_correct=True)
        assert jrs.is_confident(0x1000, 0)

    def test_paper_uses_twelve_history_bits(self):
        jrs = JRSConfidenceEstimator.paper()
        # History bit 10 lands inside both the 12-bit history mask and
        # the 2048-entry table index, so it selects a different counter;
        # bit 12 is masked off entirely, so that context aliases.
        for _ in range(15):
            jrs.update(0x1000, 0, was_correct=True)
        assert jrs.is_confident(0x1000, 1 << 12)
        assert not jrs.is_confident(0x1000, 1 << 10)

    def test_defaults_differ_from_paper(self):
        """The constructor defaults are deliberately NOT the Table 2
        instance (shorter history, sub-saturation threshold)."""
        default = JRSConfidenceEstimator()
        paper = JRSConfidenceEstimator.paper()
        assert default.table_size == paper.table_size == 2048
        assert default.history_bits == 4
        assert paper.history_bits == 12
        assert default.threshold == 12
        assert paper.threshold == 15

    def test_describe_mentions_parameters(self):
        text = JRSConfidenceEstimator.paper().describe()
        assert "2048" in text and "12" in text


class TestOracles:
    def test_perfect_tracks_oracle(self):
        est = PerfectConfidenceEstimator()
        est.set_oracle(prediction_will_be_correct=False)
        assert not est.is_confident(0x1000, 0)
        est.set_oracle(prediction_will_be_correct=True)
        assert est.is_confident(0x1000, 0)

    def test_always(self):
        est = AlwaysConfident()
        assert est.is_confident(0, 0)
        est.update(0, 0, False)
        assert est.is_confident(0, 0)

    def test_never(self):
        est = NeverConfident()
        assert not est.is_confident(0, 0)
        est.update(0, 0, True)
        assert not est.is_confident(0, 0)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_estimator("jrs"), JRSConfidenceEstimator)
        assert isinstance(make_estimator("always"), AlwaysConfident)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_estimator("magic")
