"""Unit tests for the baseline timing model."""

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.uarch.config import MachineConfig
from repro.uarch.timing import TimingSimulator


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def run_workload(program, memory=None, config=None):
    interp = Interpreter(program, memory=memory)
    trace = interp.run()
    sim = TimingSimulator(program, trace, config or MachineConfig())
    return sim.run(), trace


def straightline_program(n_blocks=10, block_size=16):
    b = CFGBuilder("main")
    for i in range(n_blocks):
        blk = b.block(f"b{i}")
        for j in range(block_size):
            blk.addi(10 + (j % 4), 0, j)
    b.block("end").halt()
    return build_program(b.build())


def loop_program(iterations, data_values, memory):
    """A loop with one data-dependent branch per iteration."""
    memory.fill_array(1000, data_values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(data_values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="taken_side")
    b.block("nt_side").addi(20, 20, 1).jmp("step")
    b.block("taken_side").addi(21, 21, 1)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return build_program(b.build())


class TestBasicAccounting:
    def test_cycles_positive_and_retired_matches_trace(self):
        program = straightline_program()
        stats, trace = run_workload(program)
        assert stats.cycles > 0
        assert stats.retired_instructions == trace.instruction_count

    def test_fetch_width_lower_bound(self):
        """Cycles can never beat perfect fetch bandwidth."""
        program = straightline_program(n_blocks=50)
        config = MachineConfig()
        stats, trace = run_workload(program, config=config)
        assert stats.cycles >= trace.instruction_count / config.fetch_width

    def test_deterministic(self):
        program = straightline_program()
        s1, _ = run_workload(program)
        s2, _ = run_workload(program)
        assert s1.cycles == s2.cycles

    def test_ipc_definition(self):
        program = straightline_program()
        stats, _ = run_workload(program)
        assert stats.ipc == pytest.approx(
            stats.retired_instructions / stats.cycles
        )


class TestBranchHandling:
    def test_predictable_branch_no_flushes(self):
        memory = Memory()
        program = loop_program(200, [0] * 200, memory)
        stats, _ = run_workload(program, memory=Memory() or memory)
        # Rebuild memory since run_workload used a fresh one.
        memory = Memory()
        memory.fill_array(1000, [0] * 200)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        sim = TimingSimulator(program, trace, MachineConfig())
        stats = sim.run()
        # All-not-taken branch: a couple of warmup mispredictions at most.
        assert stats.mispredictions <= 5
        assert stats.pipeline_flushes == stats.mispredictions

    def test_random_branch_causes_flushes(self):
        import random

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(300)]
        memory = Memory()
        program = loop_program(300, values, memory)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        stats = TimingSimulator(program, trace, MachineConfig()).run()
        assert stats.mispredictions > 30
        assert stats.pipeline_flushes == stats.mispredictions
        assert stats.fetched_wrong > 0

    def test_mispredictions_cost_cycles(self):
        import random

        rng = random.Random(3)
        hard = [rng.randrange(2) for _ in range(300)]
        easy = [0] * 300

        def cycles_for(values):
            memory = Memory()
            program = loop_program(300, values, memory)
            interp = Interpreter(program, memory=memory)
            trace = interp.run()
            return TimingSimulator(program, trace, MachineConfig()).run()

        hard_stats = cycles_for(hard)
        easy_stats = cycles_for(easy)
        assert hard_stats.cycles > easy_stats.cycles * 1.5

    def test_perfect_predictor_never_mispredicts(self):
        import random

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(300)]
        memory = Memory()
        program = loop_program(300, values, memory)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        config = MachineConfig(predictor_kind="perfect")
        stats = TimingSimulator(program, trace, config).run()
        assert stats.mispredictions == 0
        assert stats.pipeline_flushes == 0
        assert stats.fetched_wrong == 0

    def test_deeper_pipeline_hurts_mispredict_heavy_code(self):
        import random

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(300)]

        def cycles_at_depth(depth):
            memory = Memory()
            program = loop_program(300, values, memory)
            interp = Interpreter(program, memory=memory)
            trace = interp.run()
            config = MachineConfig(pipeline_depth=depth)
            return TimingSimulator(program, trace, config).run().cycles

        assert cycles_at_depth(30) > cycles_at_depth(10)


class TestWindowEffects:
    def test_tiny_rob_slows_execution(self):
        program = straightline_program(n_blocks=40)
        interp = Interpreter(program)
        trace = interp.run()
        big = TimingSimulator(
            program, trace, MachineConfig(rob_size=512)
        ).run()
        interp = Interpreter(program)
        trace = interp.run()
        small = TimingSimulator(
            program, trace, MachineConfig(rob_size=32)
        ).run()
        assert small.cycles >= big.cycles


class TestDualPath:
    def test_forks_on_low_confidence(self):
        import random

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(400)]
        memory = Memory()
        program = loop_program(400, values, memory)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        stats = TimingSimulator(
            program, trace, MachineConfig.dualpath()
        ).run()
        assert stats.dualpath_forks > 0
        # Forked mispredictions do not flush.
        assert stats.pipeline_flushes < stats.mispredictions

    def test_dualpath_beats_baseline_on_coinflips(self):
        import random

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(400)]

        def run_mode(config):
            memory = Memory()
            program = loop_program(400, values, memory)
            interp = Interpreter(program, memory=memory)
            trace = interp.run()
            return TimingSimulator(program, trace, config).run()

        base = run_mode(MachineConfig())
        dual = run_mode(MachineConfig.dualpath())
        assert dual.cycles < base.cycles


class TestWrongPathClassification:
    def test_hammock_wrong_path_reaches_ci(self):
        """The wrong path of a hammock reconverges: some fetched wrong-path
        instructions must be classified control-independent."""
        import random

        rng = random.Random(9)
        values = [rng.randrange(2) for _ in range(400)]
        memory = Memory()
        program = loop_program(400, values, memory)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        stats = TimingSimulator(program, trace, MachineConfig()).run()
        assert stats.fetched_wrong_ci > 0
        assert stats.fetched_wrong_cd > 0


class TestCacheWarming:
    def test_warmed_run_is_faster(self):
        memory = Memory()
        values = [0] * 400
        program = loop_program(400, values, memory)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        cold = TimingSimulator(program, trace, MachineConfig()).run()
        warm = TimingSimulator(
            program, trace, MachineConfig(),
            warm_words=range(1000, 1400),
        ).run()
        assert warm.cycles <= cold.cycles
