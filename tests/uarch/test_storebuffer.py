"""Unit tests for the Section 2.5 store-buffer forwarding rules."""

from repro.uarch.storebuffer import (
    ForwardDecision,
    StoreBuffer,
)


def make_buffer():
    return StoreBuffer(capacity=16)


class TestRule1NonPredicatedStores:
    def test_forwards_to_any_later_load(self):
        sb = make_buffer()
        sb.insert(address=100, seq=1, data_ready_cycle=10)
        result = sb.lookup(address=100, load_seq=2)
        assert result.decision == ForwardDecision.FORWARD
        assert result.entry.data_ready_cycle == 10

    def test_no_forward_to_older_load(self):
        sb = make_buffer()
        sb.insert(address=100, seq=5, data_ready_cycle=10)
        result = sb.lookup(address=100, load_seq=3)
        assert result.decision == ForwardDecision.MEMORY

    def test_different_address_goes_to_memory(self):
        sb = make_buffer()
        sb.insert(address=100, seq=1, data_ready_cycle=10)
        assert sb.lookup(address=200, load_seq=2).decision == (
            ForwardDecision.MEMORY
        )

    def test_youngest_older_store_wins(self):
        sb = make_buffer()
        sb.insert(address=100, seq=1, data_ready_cycle=10)
        sb.insert(address=100, seq=2, data_ready_cycle=20)
        result = sb.lookup(address=100, load_seq=3)
        assert result.entry.seq == 2


class TestRule2ResolvedPredicates:
    def test_resolved_true_forwards(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=True,
        )
        result = sb.lookup(address=100, load_seq=2, current_cycle=60)
        assert result.decision == ForwardDecision.FORWARD

    def test_resolved_false_is_skipped(self):
        sb = make_buffer()
        sb.insert(address=100, seq=1, data_ready_cycle=5)  # older plain store
        sb.insert(
            address=100, seq=2, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=False,
        )
        result = sb.lookup(address=100, load_seq=3, current_cycle=60)
        assert result.decision == ForwardDecision.FORWARD
        assert result.entry.seq == 1  # fell through to the older store

    def test_explicit_resolution_broadcast(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50,
        )
        sb.resolve_predicate(7, True)
        result = sb.lookup(address=100, load_seq=2, current_cycle=0)
        assert result.decision == ForwardDecision.FORWARD

    def test_resolve_false_drops_entry(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50,
        )
        assert sb.resolve_predicate(7, False) == 1
        assert len(sb) == 0


class TestRule3UnresolvedPredicates:
    def test_same_predicate_id_forwards(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=True,
        )
        # Before cycle 50 the predicate is architecturally unresolved.
        result = sb.lookup(
            address=100, load_seq=2, load_predicate_id=7, current_cycle=20
        )
        assert result.decision == ForwardDecision.FORWARD

    def test_different_predicate_id_waits(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=True,
        )
        result = sb.lookup(
            address=100, load_seq=2, load_predicate_id=9, current_cycle=20
        )
        assert result.decision == ForwardDecision.WAIT
        assert result.wait_until == 50

    def test_unpredicated_load_waits(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=True,
        )
        result = sb.lookup(address=100, load_seq=2, current_cycle=20)
        assert result.decision == ForwardDecision.WAIT

    def test_wait_counts_tracked(self):
        sb = make_buffer()
        sb.insert(
            address=100, seq=1, data_ready_cycle=10,
            predicate_id=7, predicate_ready_cycle=50, predicate_value=True,
        )
        sb.lookup(address=100, load_seq=2, current_cycle=0)
        assert sb.waited == 1


class TestBufferMechanics:
    def test_capacity_drains_oldest(self):
        sb = StoreBuffer(capacity=2)
        sb.insert(address=1, seq=1, data_ready_cycle=1)
        sb.insert(address=2, seq=2, data_ready_cycle=1)
        sb.insert(address=3, seq=3, data_ready_cycle=1)
        assert len(sb) == 2
        assert sb.lookup(address=1, load_seq=9).decision == (
            ForwardDecision.MEMORY
        )

    def test_drain_resolved(self):
        sb = make_buffer()
        sb.insert(address=1, seq=1, data_ready_cycle=5)
        sb.insert(
            address=2, seq=2, data_ready_cycle=5,
            predicate_id=1, predicate_ready_cycle=100, predicate_value=True,
        )
        assert sb.drain_resolved(up_to_cycle=50) == 1  # only the plain store
        assert len(sb) == 1
