"""Unit tests for the fetch-stream helpers (TraceCursor / StaticWalker)."""

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.program import Program
from repro.uarch.frontend import StaticWalker, TraceCursor


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def diamond_with_call():
    main = CFGBuilder("main")
    main.block("A").movi(1, 1).br(Condition.EQ, 1, imm=1, taken="C")
    main.block("B").addi(2, 2, 1).jmp("D")
    main.block("C").call("helper")
    main.block("CD").nop()
    main.block("D").halt()
    helper = CFGBuilder("helper")
    helper.block("h").addi(3, 3, 1).ret()
    return build_program(main.build(), helper.build())


class TestTraceCursor:
    def test_walks_trace(self):
        program = diamond_with_call()
        trace = Interpreter(program).run()
        cursor = TraceCursor(trace)
        names = []
        while not cursor.exhausted:
            names.append(cursor.record.block.name)
            cursor.advance()
        assert names == ["A", "C", "h", "CD", "D"]

    def test_save_restore(self):
        program = diamond_with_call()
        trace = Interpreter(program).run()
        cursor = TraceCursor(trace)
        cursor.advance()
        saved = cursor.save()
        cursor.advance()
        cursor.restore(saved)
        assert cursor.record.block.name == "C"

    def test_peek(self):
        program = diamond_with_call()
        trace = Interpreter(program).run()
        cursor = TraceCursor(trace, index=len(trace.records))
        assert cursor.exhausted
        assert cursor.peek_block() is None


class TestStaticWalker:
    def test_follows_predictions(self):
        program = diamond_with_call()
        cfg = program.entry_function
        walker = StaticWalker(program, "main", cfg.block("A"))
        assert walker.predict_needed
        walker.step(predicted_taken=False)
        assert walker.block.name == "B"
        walker.step()  # jmp
        assert walker.block.name == "D"
        walker.step()  # halt
        assert walker.exhausted

    def test_walks_through_calls_and_returns(self):
        program = diamond_with_call()
        cfg = program.entry_function
        walker = StaticWalker(program, "main", cfg.block("C"))
        walker.step()  # call -> helper entry
        assert walker.function == "helper"
        assert walker.block.name == "h"
        walker.step()  # ret -> back to CD
        assert walker.function == "main"
        assert walker.block.name == "CD"

    def test_ret_with_empty_stack_exhausts(self):
        program = diamond_with_call()
        walker = StaticWalker(
            program, "helper", program.function("helper").block("h")
        )
        walker.step()
        assert walker.exhausted

    def test_seeded_call_stack_allows_return(self):
        program = diamond_with_call()
        walker = StaticWalker(
            program,
            "helper",
            program.function("helper").block("h"),
            call_stack=[("main", "CD")],
        )
        walker.step()
        assert not walker.exhausted
        assert walker.block.name == "CD"

    def test_branch_requires_direction(self):
        program = diamond_with_call()
        walker = StaticWalker(
            program, "main", program.entry_function.block("A")
        )
        with pytest.raises(ValueError):
            walker.step()

    def test_exhausted_walker_rejects_step(self):
        program = diamond_with_call()
        walker = StaticWalker(
            program, "main", program.entry_function.block("D")
        )
        walker.step()
        with pytest.raises(RuntimeError):
            walker.step()
