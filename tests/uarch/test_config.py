"""Unit tests for MachineConfig and the uop definitions."""

import pytest

from repro.uarch.config import MachineConfig
from repro.uarch.uops import Uop, UopKind


class TestMachineConfig:
    def test_table2_defaults(self):
        config = MachineConfig()
        assert config.fetch_width == 8
        assert config.max_branches_per_cycle == 3
        assert config.pipeline_depth == 30
        assert config.rob_size == 512
        assert config.predictor_kind == "perceptron"
        assert config.confidence_kind == "jrs"
        assert config.btb_entries == 4096
        assert config.ras_depth == 64
        assert config.memory_latency == 300

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(mode="warp")

    def test_size_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(fetch_width=0)

    def test_dmp_factory_basic(self):
        config = MachineConfig.dmp()
        assert config.mode == "dmp"
        assert not config.multiple_cfm

    def test_dmp_factory_enhanced(self):
        config = MachineConfig.dmp(enhanced=True)
        assert config.multiple_cfm
        assert config.early_exit
        assert config.multiple_diverge

    def test_dhp_factory_disables_enhancements(self):
        config = MachineConfig.dhp()
        assert config.mode == "dhp"
        assert not config.multiple_cfm

    def test_replace(self):
        config = MachineConfig().replace(rob_size=128)
        assert config.rob_size == 128
        assert config.fetch_width == 8

    def test_is_predicating(self):
        assert MachineConfig.dmp().is_predicating
        assert MachineConfig.dhp().is_predicating
        assert MachineConfig.mpp().is_predicating
        assert not MachineConfig.baseline().is_predicating
        assert not MachineConfig.dualpath().is_predicating

    def test_mpp_factory(self):
        config = MachineConfig.mpp()
        assert config.mode == "mpp"
        # The learned-table geometry defaults (see
        # docs/merge_point_prediction.md).
        assert config.merge_table_entries == 128
        assert config.merge_max_candidates == 8
        assert config.merge_window_instructions == 120
        assert config.merge_min_instances == 16
        assert config.merge_min_fraction == 0.7
        assert (config.merge_conf_init, config.merge_conf_max) == (2, 7)
        assert config.merge_miss_penalty == 2

    @pytest.mark.parametrize("overrides", [
        {"merge_table_entries": 0},
        {"merge_max_candidates": 0},
        {"merge_window_instructions": -1},
        {"merge_min_instances": 0},
        {"merge_min_fraction": 0.0},
        {"merge_min_fraction": 1.5},
        {"merge_conf_init": 0},
        {"merge_conf_init": 5, "merge_conf_max": 4},
        {"merge_miss_penalty": -1},
    ])
    def test_merge_knob_validation(self, overrides):
        with pytest.raises(ValueError, match="merge"):
            MachineConfig.mpp(**overrides)

    def test_describe_mentions_enhancements(self):
        text = MachineConfig.dmp(enhanced=True).describe()
        assert "mcfm" in text and "eexit" in text and "mdb" in text

    def test_dualpath_uses_saturated_confidence(self):
        config = MachineConfig.dualpath()
        assert config.confidence_args.get("threshold", "missing") is None


class TestUops:
    def test_kinds_named_like_paper(self):
        assert UopKind.ENTER_PRED_PATH.value == "enter.pred.path"
        assert UopKind.ENTER_ALT_PATH.value == "enter.alternate.path"
        assert UopKind.EXIT_PRED.value == "exit.pred"

    def test_select_requires_destination(self):
        with pytest.raises(ValueError):
            Uop(UopKind.SELECT)
        uop = Uop(UopKind.SELECT, dest_arch=3, pred_tag=10, alt_tag=20)
        assert "r3" in repr(uop)

    def test_marker_uops(self):
        assert "enter.pred.path" in repr(Uop(UopKind.ENTER_PRED_PATH))
