"""Unit tests for the register alias table: the paper's Figure 5 walk-through."""

from repro.uarch.rat import RegisterAliasTable


class TestRenaming:
    def test_initial_identity_mapping(self):
        rat = RegisterAliasTable(num_regs=8)
        assert [rat.lookup(i) for i in range(8)] == list(range(8))

    def test_rename_allocates_fresh_tags(self):
        rat = RegisterAliasTable(num_regs=8)
        t1 = rat.rename_dest(1)
        t2 = rat.rename_dest(1)
        assert t1 != t2
        assert rat.lookup(1) == t2

    def test_rename_sets_m_bit(self):
        rat = RegisterAliasTable(num_regs=8)
        rat.clear_modified()
        rat.rename_dest(3)
        assert rat.modified_registers() == (3,)


class TestCheckpoints:
    def test_restore_returns_old_mapping(self):
        rat = RegisterAliasTable(num_regs=8)
        rat.rename_dest(1)
        cp = rat.checkpoint()
        old = rat.lookup(1)
        rat.rename_dest(1)
        rat.restore(cp)
        assert rat.lookup(1) == old

    def test_restore_returns_m_bits(self):
        rat = RegisterAliasTable(num_regs=8)
        rat.clear_modified()
        cp = rat.checkpoint()
        rat.rename_dest(2)
        rat.restore(cp)
        assert rat.modified_registers() == ()


class TestFigure5WalkThrough:
    """Reproduce the paper's REGMAP1..REGMAP4 example exactly.

    Predicted path (blocks B, E) writes R1 and R3; alternate path (block
    C) writes R1.  Two select-uops result: R1 (written on both paths) and
    R3 (written only on the predicted path).
    """

    def test_example(self):
        rat = RegisterAliasTable(num_regs=5)  # R0..R4
        # REGMAP1 / CP1: taken before renaming block B.
        rat.clear_modified()
        cp1 = rat.checkpoint()
        pr13 = rat.lookup(3)
        # Predicted path: B writes R1, E writes R3.
        pr21 = rat.rename_dest(1)
        pr23 = rat.rename_dest(3)
        cp2 = rat.checkpoint()  # REGMAP2
        # Alternate path starts from CP1.
        rat.restore(cp1)
        assert rat.lookup(3) == pr13  # C sources the pre-branch R3
        pr31 = rat.rename_dest(1)     # REGMAP3
        # Select-uop insertion.
        selects = rat.compute_selects(cp2)
        merged = {s.arch: (s.pred_tag, s.alt_tag) for s in selects}
        assert set(merged) == {1, 3}
        assert merged[1] == (pr21, pr31)
        assert merged[3] == (pr23, pr13)
        installed = rat.apply_selects(selects)
        # REGMAP4: R1 and R3 now map to fresh select destinations.
        assert rat.lookup(1) == installed[1]
        assert rat.lookup(3) == installed[3]
        assert rat.lookup(2) == cp1.phys(2)  # untouched registers keep CP1
        assert rat.modified_registers() == ()

    def test_register_written_identically_needs_no_select(self):
        rat = RegisterAliasTable(num_regs=4)
        rat.clear_modified()
        cp1 = rat.checkpoint()
        rat.rename_dest(1)
        cp2 = rat.checkpoint()
        rat.restore(cp1)
        # Alternate path writes nothing: R1 still differs (predicted wrote it).
        selects = rat.compute_selects(cp2)
        assert [s.arch for s in selects] == [1]
        # But a register untouched by both paths yields nothing.
        assert all(s.arch != 2 for s in selects)

    def test_no_selects_when_paths_write_nothing(self):
        rat = RegisterAliasTable(num_regs=4)
        rat.clear_modified()
        cp1 = rat.checkpoint()
        cp2 = rat.checkpoint()
        rat.restore(cp1)
        assert rat.compute_selects(cp2) == []
