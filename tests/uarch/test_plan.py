"""Block execution plans: the decoded tables must mirror the block."""

from repro.cfg.analysis import ProgramAnalysis
from repro.isa.instructions import Opcode
from repro.uarch.plan import (
    KIND_ALU,
    KIND_LOAD,
    KIND_STORE,
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_NONE,
    TERM_RET,
    build_block_plan,
    BlockPlan,
)
from repro.workloads.suite import build_benchmark


def _program():
    return build_benchmark("gzip", 50, 0).program


def _plans(program):
    for cfg in program.functions():
        function = cfg.name
        for block in cfg:
            yield function, cfg, block, build_block_plan(
                program, function, block
            )


class TestRowLayout:
    def test_one_row_per_instruction(self):
        program = _program()
        for _function, _cfg, block, plan in _plans(program):
            assert plan.n == len(block.instructions)
            assert len(plan.rows) == plan.n
            assert plan.first_pc == block.first_pc

    def test_rows_mirror_instructions(self):
        program = _program()
        for _function, _cfg, block, plan in _plans(program):
            for instr, row in zip(block.instructions, plan.rows):
                is_cond, kind, latency, latency1, dest, srcs = row
                assert is_cond == instr.is_cond_branch
                assert latency == instr.latency
                assert latency1 == max(instr.latency, 1)
                assert dest == (-1 if instr.dest is None else instr.dest)
                assert srcs == tuple(instr.srcs)
                if instr.opcode == Opcode.LOAD:
                    assert kind == KIND_LOAD
                elif instr.opcode == Opcode.STORE:
                    assert kind == KIND_STORE
                else:
                    assert kind == KIND_ALU

    def test_memory_counts_match_mem_profile(self):
        program = _program()
        for _function, _cfg, block, plan in _plans(program):
            assert (plan.load_count, plan.store_count) == block.mem_profile()


class TestTerminators:
    def test_terminator_kind_and_targets(self):
        program = _program()
        saw = set()
        for function, cfg, block, plan in _plans(program):
            term = block.terminator
            if term is None or term.opcode not in (
                Opcode.BR, Opcode.JMP, Opcode.CALL, Opcode.RET
            ):
                assert plan.term_kind == TERM_NONE
                saw.add(TERM_NONE)
                continue
            saw.add(plan.term_kind)
            assert plan.term_pc == term.pc
            if term.opcode == Opcode.BR:
                assert plan.term_kind == TERM_BR
                assert plan.taken_block is cfg.block(term.target)
                assert plan.taken_pc == plan.taken_block.first_pc
                # body_rows excludes the branch, which is fetched by the
                # branch-handling path.
                assert len(plan.body_rows) == plan.n - 1
            elif term.opcode == Opcode.JMP:
                assert plan.term_kind == TERM_JMP
                assert plan.target_block is cfg.block(term.target)
                assert plan.target_pc == plan.target_block.first_pc
            elif term.opcode == Opcode.CALL:
                assert plan.term_kind == TERM_CALL
                callee = program.function(term.target)
                assert plan.callee_block is callee.entry
                assert plan.callee_pc == callee.entry.first_pc
                if block.fallthrough is not None:
                    assert plan.fallthrough_name == block.fallthrough
                    assert plan.return_pc == cfg.block(
                        block.fallthrough
                    ).first_pc
            else:
                assert plan.term_kind == TERM_RET
        # The workload generator emits every terminator kind.
        assert {TERM_NONE, TERM_BR, TERM_JMP, TERM_CALL, TERM_RET} <= saw

    def test_fallthrough_successor(self):
        program = _program()
        for _function, cfg, block, plan in _plans(program):
            if block.terminator is not None and (
                block.terminator.opcode == Opcode.BR
            ):
                if block.fallthrough is not None:
                    assert plan.fall_block is cfg.block(block.fallthrough)
                else:
                    assert plan.fall_block is None


class TestSharing:
    def test_analysis_attaches_and_memoizes(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        cfg = next(program.functions())
        block = next(iter(cfg))
        plan = analysis.block_plan(block)
        assert isinstance(plan, BlockPlan)
        assert block._plan is plan
        assert analysis.block_plan(block) is plan

    def test_reset_detaches_plans(self):
        program = _program()
        analysis = ProgramAnalysis.of(program)
        cfg = next(program.functions())
        block = next(iter(cfg))
        analysis.block_plan(block)
        ProgramAnalysis.reset(program)
        assert block._plan is None
        assert ProgramAnalysis.of(program) is not analysis
