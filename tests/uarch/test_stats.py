"""Unit tests for SimStats bookkeeping, chiefly the exit-case table."""

import pytest

from repro.core.modes import ExitCase
from repro.uarch.stats import SimStats


class TestExitCases:
    def test_default_keys_match_enum(self):
        stats = SimStats()
        assert set(stats.exit_cases) == {int(case) for case in ExitCase}
        assert all(count == 0 for count in stats.exit_cases.values())

    def test_record_accepts_enum_member(self):
        stats = SimStats()
        stats.record_exit_case(ExitCase.REDIRECT_TO_CFM)
        assert stats.exit_cases[int(ExitCase.REDIRECT_TO_CFM)] == 1

    def test_record_accepts_plain_int(self):
        stats = SimStats()
        for case in ExitCase:
            stats.record_exit_case(int(case))
        assert all(count == 1 for count in stats.exit_cases.values())

    @pytest.mark.parametrize("bogus", [0, 7, -1, 42])
    def test_record_rejects_non_enum_values(self, bogus):
        stats = SimStats()
        with pytest.raises(ValueError, match="ExitCase"):
            stats.record_exit_case(bogus)
        assert all(count == 0 for count in stats.exit_cases.values())
