"""Unit tests for SimStats bookkeeping, chiefly the exit-case table."""

import pytest

from repro.core.modes import ExitCase
from repro.uarch.stats import SimStats


class TestExitCases:
    def test_default_keys_match_enum(self):
        stats = SimStats()
        assert set(stats.exit_cases) == {int(case) for case in ExitCase}
        assert all(count == 0 for count in stats.exit_cases.values())

    def test_record_accepts_enum_member(self):
        stats = SimStats()
        stats.record_exit_case(ExitCase.REDIRECT_TO_CFM)
        assert stats.exit_cases[int(ExitCase.REDIRECT_TO_CFM)] == 1

    def test_record_accepts_plain_int(self):
        stats = SimStats()
        for case in ExitCase:
            stats.record_exit_case(int(case))
        assert all(count == 1 for count in stats.exit_cases.values())

    @pytest.mark.parametrize("bogus", [0, 7, -1, 42])
    def test_record_rejects_non_enum_values(self, bogus):
        stats = SimStats()
        with pytest.raises(ValueError, match="ExitCase"):
            stats.record_exit_case(bogus)
        assert all(count == 0 for count in stats.exit_cases.values())


class TestMergeAccuracy:
    def test_zero_when_nothing_resolved(self):
        # No outcome-resolving mpp episode yet: 0.0, never a division
        # error (the figure and report rollups divide by this).
        assert SimStats().merge_accuracy == 0.0

    def test_hits_over_resolved_outcomes(self):
        stats = SimStats()
        stats.mpp_merge_hits = 3
        stats.mpp_merge_misses = 1
        assert stats.merge_accuracy == pytest.approx(0.75)

    def test_summary_line_only_when_predicting(self):
        stats = SimStats()
        assert "mpp:" not in stats.summary()
        stats.mpp_predictions = 4
        stats.mpp_merge_hits = 4
        stats.mpp_recoveries = 1
        stats.mpp_retrains = 2
        line = stats.summary()
        assert "mpp: predictions=4" in line
        assert "accuracy=100.00%" in line
        assert "recoveries=1" in line and "retrains=2" in line
