"""Directed micro-tests of the Table 2 fetch-engine rules."""

from repro.cfg.builder import CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.program import Program
from repro.uarch.config import MachineConfig
from repro.uarch.timing import TimingSimulator


def build_program(cfg):
    program = Program("t")
    program.add_function(cfg)
    return program.seal()


def run(program, **config_overrides):
    """Run with an ideal memory system and oracle prediction so only the
    fetch rule under test contributes cycles."""
    config_overrides.setdefault("memory_latency", 0)
    config_overrides.setdefault("predictor_kind", "perfect")
    trace = Interpreter(program).run()
    config = MachineConfig(**config_overrides)
    sim = TimingSimulator(program, trace, config)
    return sim.run()


def straightline(n_instructions):
    b = CFGBuilder("main")
    blk = b.block("only")
    for i in range(n_instructions):
        blk.addi(10 + (i % 8), 0, i)
    blk.halt()
    return build_program(b.build())


def jump_chain(n_blocks):
    """Blocks connected by unconditional taken jumps."""
    b = CFGBuilder("main")
    for i in range(n_blocks):
        blk = b.block(f"b{i}")
        blk.addi(10, 0, i)
        if i + 1 < n_blocks:
            blk.jmp(f"b{i + 1}")
        else:
            blk.halt()
    return build_program(b.build())


class TestFetchWidth:
    def test_straightline_fetch_bound(self):
        """160 independent instructions at 8-wide: about 20 fetch cycles
        plus the drain."""
        program = straightline(160)
        stats = run(program)
        # The fetch engine itself takes ceil(161/8) cycles; total runtime
        # adds the pipeline drain and the (ideal-memory) I-cache fills.
        assert stats.cycles < 161 / 8 + 80

    def test_narrow_fetch_scales(self):
        program = straightline(160)
        wide = run(program, fetch_width=8)
        narrow = run(program, fetch_width=2)
        assert narrow.cycles > wide.cycles + 40  # ~4x the fetch cycles


class TestTakenBranchBreaks:
    def test_taken_jumps_end_fetch_cycles(self):
        """A chain of 40 two-instruction blocks joined by taken jumps
        cannot be fetched faster than one block per cycle."""
        program = jump_chain(40)
        stats = run(program)
        assert stats.cycles >= 40

    def test_fallthrough_blocks_pack_into_wide_fetch(self):
        """The same instructions without taken transfers fetch much
        faster."""
        chain = run(jump_chain(40))
        flat = run(straightline(80))
        assert flat.cycles < chain.cycles


class TestBranchesPerCycle:
    def _branchy_program(self, n):
        """n not-taken conditional branches in a row."""
        b = CFGBuilder("main")
        for i in range(n):
            blk = b.block(f"b{i}")
            # r0 is always 0: GE 1 is never true -> never taken.
            blk.br(Condition.GE, 0, imm=1, taken=f"b{i}")
        b.block("end").halt()
        return build_program(b.build())

    def test_three_branch_limit(self):
        program = self._branchy_program(30)
        stats = run(program, max_branches_per_cycle=3)
        # 30 branches at <=3/cycle: at least 10 fetch cycles.
        assert stats.cycles >= 10

    def test_single_branch_per_cycle_slower(self):
        program = self._branchy_program(30)
        three = run(program, max_branches_per_cycle=3)
        one = run(program, max_branches_per_cycle=1)
        assert one.cycles > three.cycles


class TestICache:
    def test_cold_icache_misses_stall_fetch(self):
        """A large code footprint pays I-cache miss bubbles on first
        touch."""
        program = jump_chain(60)
        trace = Interpreter(program).run()
        cold = TimingSimulator(program, trace, MachineConfig())
        cold_stats = cold.run()
        assert cold.hierarchy.l1i.misses > 0
        # Second pass over the same static code is mostly warm.
        trace2 = Interpreter(program).run()
        warm = TimingSimulator(program, trace2, MachineConfig())
        warm.hierarchy.l1i = cold.hierarchy.l1i
        warm_stats = warm.run()
        assert warm_stats.cycles <= cold_stats.cycles


class TestRetireBandwidth:
    def test_retire_width_bounds_throughput(self):
        program = straightline(400)
        wide = run(program, retire_width=8)
        narrow = run(program, retire_width=1)
        # 400 instructions at 1/cycle retire: at least 400 cycles.
        assert narrow.cycles >= 400
        assert wide.cycles < narrow.cycles


class TestBtb:
    def test_taken_transfers_warm_the_btb(self):
        program = jump_chain(30)
        trace = Interpreter(program).run()
        sim = TimingSimulator(program, trace, MachineConfig())
        sim.run()
        # Every jump target was inserted once (all cold misses).
        assert sim.btb.misses >= 29
