"""Unit tests for caches and the hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.memsys.cache import Cache
from repro.memsys.hierarchy import CacheHierarchy, MainMemory


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache("t", size_words=64, associativity=2, line_words=8)
        assert not c.access(0)
        assert c.access(0)
        assert c.hits == 1
        assert c.misses == 1

    def test_spatial_locality_within_line(self):
        c = Cache("t", size_words=64, associativity=2, line_words=8)
        c.access(0)
        assert c.access(7)       # same 8-word line
        assert not c.access(8)   # next line

    def test_lru_eviction(self):
        # 2 lines of 8 words, 2-way => a single set.
        c = Cache("t", size_words=16, associativity=2, line_words=8)
        c.access(0)    # line 0
        c.access(8)    # line 1
        c.access(0)    # touch line 0, line 1 becomes LRU
        c.access(16)   # line 2 evicts line 1
        assert c.access(0)
        assert not c.access(8)

    def test_probe_does_not_disturb(self):
        c = Cache("t", size_words=64, associativity=2, line_words=8)
        assert not c.probe(0)
        c.access(0)
        hits, misses = c.hits, c.misses
        assert c.probe(0)
        assert (c.hits, c.misses) == (hits, misses)

    def test_invalidate_all(self):
        c = Cache("t", size_words=64, associativity=2, line_words=8)
        c.access(0)
        c.invalidate_all()
        assert not c.probe(0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("t", size_words=24, associativity=16, line_words=8)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    def test_accounting_invariant(self, addresses):
        """hits + misses always equals accesses; hit_rate stays in [0, 1]."""
        c = Cache("t", size_words=128, associativity=4, line_words=8)
        for addr in addresses:
            c.access(addr)
        assert c.hits + c.misses == len(addresses)
        assert 0.0 <= c.hit_rate <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_small_footprint_never_misses_after_warmup(self, addresses):
        """A working set that fits in the cache only takes cold misses."""
        c = Cache("t", size_words=64, associativity=8, line_words=8)
        for addr in addresses:
            c.access(addr)
        misses_after_warmup = c.misses
        for addr in addresses:
            c.access(addr)
        assert c.misses == misses_after_warmup


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy()
        first = h.data_access(100)
        second = h.data_access(100)
        assert first == 2 + 10 + 300   # cold: L1 + L2 + memory
        assert second == 2             # L1 hit

    def test_l2_hit_after_l1_eviction(self):
        l1 = Cache("L1D", size_words=16, associativity=1, line_words=8,
                   latency=2)
        h = CacheHierarchy(l1d=l1)
        h.data_access(0)
        # Evict line 0 from the tiny direct-mapped L1 (same set, diff tag).
        h.data_access(16)
        latency = h.data_access(0)
        assert latency == 2 + 10       # L1 miss, L2 hit

    def test_inst_stream_uses_l1i(self):
        h = CacheHierarchy()
        h.inst_access(0x1000)
        assert h.l1i.accesses == 1
        assert h.l1d.accesses == 0

    def test_memory_access_counted(self):
        mem = MainMemory(latency=300)
        h = CacheHierarchy(memory=mem)
        h.data_access(5)
        assert mem.accesses == 1


class TestStreamPrefetcher:
    def test_disabled_by_default(self):
        h = CacheHierarchy()
        h.data_access(0)
        assert h.prefetches_issued == 0

    def test_prefetches_on_miss(self):
        h = CacheHierarchy(prefetch_lines=2)
        h.data_access(0)           # miss on line 0: prefetch lines 1-2
        assert h.prefetches_issued == 2
        assert h.data_access(8) == h.l1d.latency    # line 1: prefetched
        assert h.data_access(16) == h.l1d.latency   # line 2: prefetched

    def test_sequential_stream_mostly_hits(self):
        cold = CacheHierarchy()
        warm = CacheHierarchy(prefetch_lines=4)
        cold_latency = sum(cold.data_access(a) for a in range(0, 512))
        warm_latency = sum(warm.data_access(a) for a in range(0, 512))
        assert warm_latency < cold_latency / 2

    def test_pointer_chase_unaffected(self):
        import random

        rng = random.Random(1)
        addresses = [rng.randrange(1 << 22) for _ in range(300)]
        plain = CacheHierarchy()
        prefetching = CacheHierarchy(prefetch_lines=4)
        plain_latency = sum(plain.data_access(a) for a in addresses)
        pf_latency = sum(prefetching.data_access(a) for a in addresses)
        # Random accesses gain nothing from next-line prefetching.
        assert pf_latency >= plain_latency * 0.9

    def test_no_duplicate_prefetch(self):
        h = CacheHierarchy(prefetch_lines=1)
        h.data_access(0)
        issued = h.prefetches_issued
        h.data_access(1)  # same line: hit, no more prefetches
        assert h.prefetches_issued == issued
