"""Tests for the Section 2.7.4 extensions: diverge loop branches, the
nested multiple-diverge policy, and the selective predictor update."""

import random

import pytest

from repro.cfg.builder import CFGBuilder
from repro.core.dpred import PredicationAwareSimulator
from repro.core.modes import ExitCase
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Condition
from repro.profiling.loop_selection import (
    find_loop_exit_branches,
    merge_hint_tables,
    select_diverge_loop_branches,
)
from repro.profiling.profiler import profile_trace
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.uarch.config import MachineConfig
from repro.uarch.timing import TimingSimulator


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def hard_loop_program(trip_counts):
    """An outer loop whose inner loop's trip count is data-dependent:
    the inner loop-exit branch mispredicts on most exits."""
    memory = Memory()
    memory.fill_array(1000, trip_counts)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("ohead").br(Condition.GE, 1, imm=len(trip_counts), taken="exit")
    setup = b.block("setup")
    setup.load(4, 1, offset=1000)   # r4 = trips for this outer iteration
    setup.movi(5, 0)                # inner counter
    inner = b.block("inner")        # the loop-exit (diverge loop) branch
    inner.br(Condition.GE, 5, 4, taken="after")
    body = b.block("ibody")
    body.addi(20, 20, 3)
    body.xor(21, 20, 5)
    body.addi(5, 5, 1)
    body.jmp("inner")
    after = b.block("after")        # the loop's exit block == CFM
    after.add(22, 20, 21)
    b.block("step").addi(1, 1, 1).jmp("ohead")
    b.block("exit").halt()
    return build_program(b.build()), memory


def run_loop_case(trip_counts, loop_predication, hints=None):
    program, memory = hard_loop_program(trip_counts)
    trace = Interpreter(program, memory=memory).run()
    if hints is None:
        cfg = program.entry_function
        hints = HintTable()
        hints.add(
            cfg.block("inner").instructions[-1].pc,
            DivergeHint((cfg.block("after").first_pc,), is_loop=True),
        )
    config = MachineConfig.dmp(
        confidence_kind="never", loop_predication=loop_predication
    )
    sim = PredicationAwareSimulator(
        program, trace, config, hints=hints, warm_words=range(1000, 1600)
    )
    return sim.run(), program, trace


def random_trips(n, seed=3):
    rng = random.Random(seed)
    return [rng.randrange(1, 5) for _ in range(n)]


class TestLoopExitDiscovery:
    def test_inner_loop_branch_found(self):
        program, _ = hard_loop_program([1, 2, 3])
        exits = find_loop_exit_branches(program)
        found = {(fn, block) for fn, block, _, _ in exits}
        assert ("main", "inner") in found
        assert ("main", "ohead") in found
        inner = [e for e in exits if e[1] == "inner"][0]
        assert inner[3] == "after"  # the exit side

    def test_selection_marks_hard_loop(self):
        program, memory = hard_loop_program(random_trips(400))
        trace = Interpreter(program, memory=memory).run()
        profile = profile_trace(program, trace)
        table = select_diverge_loop_branches(program, trace, profile)
        inner_pc = program.entry_function.block("inner").instructions[-1].pc
        assert table.is_diverge_branch(inner_pc)
        hint = table.get(inner_pc)
        assert hint.is_loop
        after_pc = program.entry_function.block("after").first_pc
        assert hint.primary_cfm == after_pc

    def test_predictable_loop_not_marked(self):
        program, memory = hard_loop_program([3] * 400)  # constant trips
        trace = Interpreter(program, memory=memory).run()
        profile = profile_trace(program, trace)
        table = select_diverge_loop_branches(program, trace, profile)
        assert len(table) == 0

    def test_merge_hint_tables(self):
        a, b = HintTable(), HintTable()
        a.add(0x10, DivergeHint((1,)))
        b.add(0x10, DivergeHint((2,), is_loop=True))
        b.add(0x20, DivergeHint((3,), is_loop=True))
        merged = merge_hint_tables(a, b)
        assert merged.get(0x10).primary_cfm == 1  # first table wins
        assert merged.get(0x20).is_loop


class TestLoopPredication:
    def test_disabled_by_default(self):
        stats, _, _ = run_loop_case(
            random_trips(300), loop_predication=False
        )
        assert stats.dpred_entries == 0
        assert stats.loop_iteration_saves == 0

    def test_saves_loop_exit_mispredictions(self):
        stats, _, _ = run_loop_case(random_trips(300), loop_predication=True)
        assert stats.dpred_entries > 0
        assert stats.loop_iteration_saves > 50

    def test_reduces_flushes(self):
        trips = random_trips(300)
        off, program, trace = run_loop_case(trips, loop_predication=False)
        on, _, _ = run_loop_case(trips, loop_predication=True)
        assert on.pipeline_flushes < off.pipeline_flushes

    def test_improves_performance_on_hard_loop(self):
        trips = random_trips(300)
        off, _, _ = run_loop_case(trips, loop_predication=False)
        on, _, _ = run_loop_case(trips, loop_predication=True)
        assert on.cycles < off.cycles

    def test_charges_false_iteration_work(self):
        stats, _, _ = run_loop_case(random_trips(300), loop_predication=True)
        assert stats.predicated_false_instructions > 0

    def test_retired_work_unchanged(self):
        trips = random_trips(200)
        off, _, trace = run_loop_case(trips, loop_predication=False)
        on, _, _ = run_loop_case(trips, loop_predication=True)
        assert on.retired_instructions == off.retired_instructions

    def test_exit_cases_recorded(self):
        stats, _, _ = run_loop_case(random_trips(300), loop_predication=True)
        normal = (
            stats.exit_cases[ExitCase.NORMAL_CORRECT]
            + stats.exit_cases[ExitCase.NORMAL_MISPREDICTED]
        )
        assert normal > 0


def nested_hammocks_program(values_outer, values_inner):
    """Two hammocks where the second sits on the first's predicted path
    before the first's (distant) merge point."""
    memory = Memory()
    memory.fill_array(1000, values_outer)
    memory.fill_array(3000, values_inner)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values_outer), taken="exit")
    outer = b.block("outer")
    outer.load(4, 1, offset=1000)
    outer.br(Condition.GE, 4, imm=1, taken="o_tk")
    o_nt = b.block("o_nt")
    o_nt.addi(20, 20, 1)
    o_nt.addi(26, 20, 2)
    o_nt.xor(27, 26, 20)
    o_nt.addi(26, 26, 1)
    o_nt.add(27, 27, 26)
    # The inner diverge branch lives on the outer's not-taken side, far
    # enough along the path to clear the restart progress gate.
    inner_blk = b.block("o_nt2")
    inner_blk.load(5, 1, offset=3000)
    inner_blk.br(Condition.GE, 5, imm=1, taken="i_tk")
    b.block("i_nt").addi(21, 21, 1).jmp("i_merge")
    b.block("i_tk").addi(22, 22, 1)
    b.block("i_merge").addi(23, 21, 2).jmp("o_merge")
    b.block("o_tk").addi(24, 24, 1)
    b.block("o_merge").addi(25, 20, 3)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return build_program(b.build()), memory


class TestNestedMultipleDiverge:
    def _run(self, policy):
        rng = random.Random(5)
        outer = [1 if rng.random() < 0.10 else 0 for _ in range(400)]
        inner = [rng.randrange(2) for _ in range(400)]
        program, memory = nested_hammocks_program(outer, inner)
        trace = Interpreter(program, memory=memory).run()
        cfg = program.entry_function
        hints = HintTable()
        hints.add(
            cfg.block("outer").instructions[-1].pc,
            DivergeHint((cfg.block("o_merge").first_pc,),
                        early_exit_threshold=2),
        )
        hints.add(
            cfg.block("o_nt2").instructions[-1].pc,
            DivergeHint((cfg.block("i_merge").first_pc,),
                        early_exit_threshold=2),
        )
        config = MachineConfig.dmp(
            confidence_kind="never",
            multiple_diverge=True,
            multiple_diverge_policy=policy,
        )
        sim = PredicationAwareSimulator(
            program, trace, config, hints=hints,
            warm_words=list(range(1000, 1400)) + list(range(3000, 3400)),
        )
        return sim.run()

    def test_nested_policy_runs_inner_episodes(self):
        stats = self._run("nested")
        assert stats.nested_episodes > 0
        assert stats.dpred_restarts == 0

    def test_restart_policy_restarts(self):
        stats = self._run("restart")
        assert stats.dpred_restarts > 0
        assert stats.nested_episodes == 0

    def test_both_policies_save_inner_mispredictions(self):
        for policy in ("nested", "restart"):
            stats = self._run(policy)
            saved = (
                stats.exit_cases[ExitCase.NORMAL_MISPREDICTED]
                + stats.exit_cases[ExitCase.CONTINUE_ALTERNATE]
            )
            assert saved > 0, policy

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig.dmp(multiple_diverge_policy="sideways")


class TestSelectivePredictorUpdate:
    def test_flag_accepted_and_runs(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = nested_hammocks_program(values, values)
        trace = Interpreter(program, memory=memory).run()
        cfg = program.entry_function
        hints = HintTable()
        hints.add(
            cfg.block("outer").instructions[-1].pc,
            DivergeHint((cfg.block("o_merge").first_pc,)),
        )
        for selective in (False, True):
            config = MachineConfig.dmp(
                confidence_kind="never",
                selective_predictor_update=selective,
            )
            sim = PredicationAwareSimulator(
                program, trace, config, hints=hints
            )
            stats = sim.run()
            assert stats.dpred_entries > 0
