"""Directed tests for the dynamic-predication engine: every Table 1 exit
case is forced with a purpose-built mini-program and checked end to end."""

import random

import pytest

from repro.cfg.builder import CFGBuilder
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.core.dpred import PredicationAwareSimulator
from repro.core.modes import ExitCase
from repro.uarch.config import MachineConfig
from repro.uarch.timing import TimingSimulator


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def hammock_loop(values, long_alternate=False, far_cfm=False):
    """A loop with one diverge branch per iteration.

    Branch taken iff data value >= 1.  ``long_alternate`` pads the taken
    side far beyond any reasonable resolution window.  ``far_cfm`` moves
    the merge point past hundreds of instructions on both sides.
    """
    memory = Memory()
    memory.fill_array(1000, values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    nt = b.block("nt")
    nt.addi(20, 20, 1)
    if far_cfm:
        nt.nop(400)
    nt.jmp("merge")
    tk = b.block("tk")
    tk.addi(21, 21, 1)
    if long_alternate or far_cfm:
        tk.nop(400)
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    program = build_program(b.build())
    return program, memory


_WARM = range(1000, 1500)


def run_with_hints(program, memory, hint_cfm_block="merge", config=None,
                   extra_cfms=()):
    interp = Interpreter(program, memory=memory)
    trace = interp.run()
    cfg = program.entry_function
    branch_pc = cfg.block("body").instructions[-1].pc
    hints = HintTable()
    cfm_pcs = (cfg.block(hint_cfm_block).first_pc,) + tuple(
        cfg.block(name).first_pc for name in extra_cfms
    )
    hints.add(branch_pc, DivergeHint(cfm_pcs))
    config = config or MachineConfig.dmp(confidence_kind="never")
    sim = PredicationAwareSimulator(
        program, trace, config, hints=hints, warm_words=_WARM
    )
    return sim.run(), trace


def baseline_stats(program, memory):
    interp = Interpreter(program, memory=memory)
    trace = interp.run()
    return TimingSimulator(
        program, trace, MachineConfig(), warm_words=_WARM
    ).run()


class TestCase1NormalCorrect:
    def test_correct_prediction_both_paths_merge(self):
        # All-zero data: branch always not-taken, trivially predicted.
        program, memory = hammock_loop([0] * 100)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.NORMAL_CORRECT] > 80
        assert stats.exit_cases[ExitCase.FLUSH] == 0

    def test_select_uops_inserted(self):
        program, memory = hammock_loop([0] * 50)
        stats, _ = run_with_hints(program, memory)
        # Each episode merges register state written on the two sides.
        assert stats.select_uops >= stats.exit_cases[ExitCase.NORMAL_CORRECT]

    def test_three_bookkeeping_uops_per_normal_episode(self):
        program, memory = hammock_loop([0] * 50)
        stats, _ = run_with_hints(program, memory)
        normal = (
            stats.exit_cases[ExitCase.NORMAL_CORRECT]
            + stats.exit_cases[ExitCase.NORMAL_MISPREDICTED]
        )
        # enter.pred.path + enter.alternate.path + exit.pred
        assert stats.extra_uops == pytest.approx(3 * normal, abs=2 * 50)
        assert stats.extra_uops >= 3 * normal

    def test_case1_costs_cycles_but_not_flushes(self):
        # With a perfect predictor every episode is pure case-1 overhead:
        # the machine must never be faster than not predicating at all.
        program, memory = hammock_loop([0] * 100)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        base = TimingSimulator(
            program, trace, MachineConfig(predictor_kind="perfect"),
            warm_words=_WARM,
        ).run()
        cfg = program.entry_function
        hints = HintTable()
        hints.add(
            cfg.block("body").instructions[-1].pc,
            DivergeHint((cfg.block("merge").first_pc,)),
        )
        stats = PredicationAwareSimulator(
            program,
            trace,
            MachineConfig.dmp(
                predictor_kind="perfect", confidence_kind="never"
            ),
            hints=hints,
            warm_words=_WARM,
        ).run()
        assert stats.pipeline_flushes == 0
        assert stats.exit_cases[ExitCase.NORMAL_CORRECT] > 90
        assert stats.cycles >= base.cycles  # pure predication overhead


class TestCase2NormalMispredicted:
    def test_random_branch_saves_flushes(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = hammock_loop(values)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        base = baseline_stats(program, memory2)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.NORMAL_MISPREDICTED] > 50
        assert stats.pipeline_flushes < base.pipeline_flushes / 2

    def test_case2_faster_than_baseline(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = hammock_loop(values)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        base = baseline_stats(program, memory2)
        stats, _ = run_with_hints(program, memory)
        assert stats.cycles < base.cycles

    def test_eliminated_mispredictions_still_counted(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = hammock_loop(values)
        stats, _ = run_with_hints(program, memory)
        assert stats.mispredictions >= stats.exit_cases[
            ExitCase.NORMAL_MISPREDICTED
        ]


class TestCase3RedirectToCfm:
    def test_correct_prediction_alternate_never_merges(self):
        # Branch almost always not-taken; the taken side is 400+ NOPs, so
        # the alternate path cannot reach the CFM before resolution.
        program, memory = hammock_loop([0] * 200, long_alternate=True)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.REDIRECT_TO_CFM] > 100
        # Predictor warmup may yield a stray mispredicted episode.
        assert stats.exit_cases[ExitCase.FLUSH] <= 3

    def test_no_select_uops_on_case3(self):
        program, memory = hammock_loop([0] * 200, long_alternate=True)
        stats, _ = run_with_hints(program, memory)
        # Only the predicted path completed: no data-flow merge happens
        # on case-3 exits (selects may still come from warmup episodes).
        normal = (
            stats.exit_cases[ExitCase.NORMAL_CORRECT]
            + stats.exit_cases[ExitCase.NORMAL_MISPREDICTED]
        )
        assert stats.select_uops <= 4 * max(normal, 1)


class TestCase4ContinueAlternate:
    def test_mispredicted_alternate_is_correct_path(self):
        # Mostly not-taken so the predictor predicts not-taken, with
        # occasional taken outcomes; the taken (actual) side is long, so
        # on mispredictions the alternate path is still being fetched at
        # resolution: case 4, no flush.
        rng = random.Random(11)
        values = [1 if rng.random() < 0.12 else 0 for _ in range(400)]
        program, memory = hammock_loop(values, long_alternate=True)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.CONTINUE_ALTERNATE] > 10

    def test_case4_saves_the_flush(self):
        rng = random.Random(11)
        values = [1 if rng.random() < 0.12 else 0 for _ in range(400)]
        program, memory = hammock_loop(values, long_alternate=True)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        base = baseline_stats(program, memory2)
        stats, _ = run_with_hints(program, memory)
        assert stats.pipeline_flushes < base.pipeline_flushes


class TestCases5And6NoPredictedCfm:
    def test_case5_correct_prediction(self):
        # CFM unreachable within the resolution window on both sides.
        program, memory = hammock_loop([0] * 150, far_cfm=True)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.CONTINUE_PREDICTED] > 100
        assert stats.exit_cases[ExitCase.FLUSH] <= 5

    def test_case6_mispredicted_flushes(self):
        rng = random.Random(5)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = hammock_loop(values, far_cfm=True)
        stats, _ = run_with_hints(program, memory)
        assert stats.exit_cases[ExitCase.FLUSH] > 30
        # A case-6 flush is a real pipeline flush.
        assert stats.pipeline_flushes >= stats.exit_cases[ExitCase.FLUSH]

    def test_case6_no_worse_than_baseline_by_much(self):
        rng = random.Random(5)
        values = [rng.randrange(2) for _ in range(300)]
        program, memory = hammock_loop(values, far_cfm=True)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        base = baseline_stats(program, memory2)
        stats, _ = run_with_hints(program, memory)
        # Table 1: cases 5/6 perform "same" as branch prediction (modulo
        # bookkeeping overhead).
        assert stats.cycles <= base.cycles * 1.35


class TestArchitecturalInvariants:
    def test_retired_instructions_identical_across_modes(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        base = baseline_stats(program, memory2)
        stats, trace = run_with_hints(program, memory)
        assert stats.retired_instructions == base.retired_instructions
        assert stats.retired_instructions == trace.instruction_count

    def test_exit_cases_account_for_all_entries(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        stats, _ = run_with_hints(program, memory)
        assert sum(stats.exit_cases.values()) == (
            stats.dpred_entries - stats.dpred_restarts
        )

    def test_confident_estimator_disables_predication(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        stats, _ = run_with_hints(
            program,
            memory,
            config=MachineConfig.dmp(confidence_kind="always"),
        )
        assert stats.dpred_entries == 0
        assert stats.select_uops == 0

    def test_perfect_confidence_only_enters_on_mispredictions(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        stats, _ = run_with_hints(
            program,
            memory,
            config=MachineConfig.dmp(confidence_kind="perfect"),
        )
        assert stats.dpred_entries > 0
        # Every entry corresponds to an actual misprediction: no case 1.
        assert stats.exit_cases[ExitCase.NORMAL_CORRECT] == 0
        assert stats.exit_cases[ExitCase.REDIRECT_TO_CFM] == 0


class TestMultipleCfm:
    def test_cam_locks_first_seen_point(self):
        # Hint carries both "merge" and "step" as CFM points; the predicted
        # path reaches "merge" first and the episode must lock onto it.
        program, memory = hammock_loop([0] * 100)
        stats, _ = run_with_hints(
            program,
            memory,
            config=MachineConfig.dmp(
                confidence_kind="never", multiple_cfm=True
            ),
            extra_cfms=("step",),
        )
        assert stats.exit_cases[ExitCase.NORMAL_CORRECT] > 80

    def test_basic_machine_ignores_extra_cfms(self):
        program, memory = hammock_loop([0] * 100)
        basic, _ = run_with_hints(
            program, memory, extra_cfms=("step",),
        )
        assert basic.exit_cases[ExitCase.NORMAL_CORRECT] > 80


class TestEarlyExit:
    def test_early_exit_reduces_case3_stall(self):
        program, memory = hammock_loop([0] * 200, long_alternate=True)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        cfg = program.entry_function
        branch_pc = cfg.block("body").instructions[-1].pc
        hints = HintTable()
        hints.add(
            branch_pc,
            DivergeHint(
                (cfg.block("merge").first_pc,), early_exit_threshold=12
            ),
        )
        config = MachineConfig.dmp(
            confidence_kind="never", early_exit=True
        )
        sim = PredicationAwareSimulator(program, trace, config, hints=hints)
        stats = sim.run()
        assert stats.early_exits > 100
        assert stats.exit_cases[ExitCase.REDIRECT_TO_CFM] > 100


class TestGhrPolicy:
    def test_policies_differ_only_in_history(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        predicted, _ = run_with_hints(
            program, memory,
            config=MachineConfig.dmp(
                confidence_kind="never", dpred_ghr_policy="predicted"
            ),
        )
        memory2 = Memory()
        memory2.fill_array(1000, values)
        alternate, _ = run_with_hints(
            program, memory2,
            config=MachineConfig.dmp(
                confidence_kind="never", dpred_ghr_policy="alternate"
            ),
        )
        # Same architectural work either way.
        assert predicted.retired_instructions == alternate.retired_instructions

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig.dmp(dpred_ghr_policy="bogus")


class TestDhpMode:
    def test_dhp_requires_hints(self):
        from repro.core.processors import simulate

        program, memory = hammock_loop([0] * 20)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        with pytest.raises(ValueError):
            simulate(program, trace, MachineConfig.dhp())

    def test_dhp_predicates_hammock(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = hammock_loop(values)
        interp = Interpreter(program, memory=memory)
        trace = interp.run()
        from repro.profiling.hammock import find_simple_hammocks

        hints = find_simple_hammocks(program)
        assert len(hints) >= 1
        config = MachineConfig.dhp(confidence_kind="never")
        sim = PredicationAwareSimulator(program, trace, config, hints=hints)
        stats = sim.run()
        assert stats.dpred_entries > 0
        assert stats.exit_cases[ExitCase.NORMAL_MISPREDICTED] > 0
