"""End-to-end tests of predicated memory semantics (Section 2.5).

Directed programs where both sides of a dynamically predicated hammock
store to the same address and a load after the CFM point consumes it —
the exact store-load forwarding situation the paper's rules govern.
"""

import random

from repro.cfg.builder import CFGBuilder
from repro.core.dpred import PredicationAwareSimulator
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.uarch.config import MachineConfig

SLOT = 5000  # the contended memory word


def build_program(cfg):
    program = Program("t")
    program.add_function(cfg)
    return program.seal()


def store_hammock(values):
    """Both hammock sides store to SLOT; the merge block loads it."""
    memory = Memory()
    memory.fill_array(1000, values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    nt = b.block("nt")
    nt.addi(20, 4, 10)
    nt.store(20, 0, offset=SLOT)        # predicated store, path A
    nt.jmp("merge")
    tk = b.block("tk")
    tk.addi(21, 4, 99)
    tk.store(21, 0, offset=SLOT)        # predicated store, path B
    merge = b.block("merge")
    merge.load(22, 0, offset=SLOT)      # load after the CFM point
    merge.add(23, 22, 4)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return build_program(b.build()), memory


def run_dmp(program, memory, **config_kwargs):
    trace = Interpreter(program, memory=memory).run()
    cfg = program.entry_function
    hints = HintTable()
    hints.add(
        cfg.block("body").instructions[-1].pc,
        DivergeHint((cfg.block("merge").first_pc,)),
    )
    config_kwargs.setdefault("confidence_kind", "never")
    config = MachineConfig.dmp(**config_kwargs)
    sim = PredicationAwareSimulator(
        program, trace, config, hints=hints, warm_words=range(1000, 1500)
    )
    return sim.run(), trace


class TestFunctionalCorrectness:
    def test_interpreter_memory_values(self):
        """Architecturally, the merge load sees the taken-path value on
        taken instances and the fall-through value otherwise."""
        program, memory = store_hammock([1, 0, 1])
        interp = Interpreter(program, memory=memory)
        interp.run()
        # Last iteration is taken (value 1): slot holds r4 + 99 = 100.
        assert interp.memory.load(SLOT) == 1 + 99


class TestPredicatedForwardingTiming:
    def test_load_after_cfm_waits_on_unresolved_predicated_store(self):
        """Rule 3 fallout: the post-CFM load carries no predicate id, so
        it must WAIT for the predicated stores' predicate values."""
        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = store_hammock(values)
        stats, _ = run_dmp(program, memory)
        assert stats.dpred_entries > 100
        assert stats.load_wait_on_predicate > 50

    def test_no_episodes_no_waits(self):
        """With a fully-confident estimator nothing is ever predicated,
        so no load can block on a predicate."""
        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = store_hammock(values)
        predicated, _ = run_dmp(program, memory)
        memory2 = Memory()
        memory2.fill_array(1000, values)
        unpredicated, _ = run_dmp(program, memory2, confidence_kind="always")
        assert unpredicated.dpred_entries == 0
        assert unpredicated.load_wait_on_predicate == 0
        assert predicated.load_wait_on_predicate > 0

    def test_architectural_results_identical(self):
        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = store_hammock(values)
        stats, trace = run_dmp(program, memory)
        assert stats.retired_instructions == trace.instruction_count


class TestUnpredicatedStoresUnaffected:
    def test_plain_store_forwarding_has_no_waits(self):
        """The same program without predication never waits on predicates."""
        from repro.uarch.timing import TimingSimulator

        rng = random.Random(3)
        values = [rng.randrange(2) for _ in range(200)]
        program, memory = store_hammock(values)
        trace = Interpreter(program, memory=memory).run()
        stats = TimingSimulator(
            program, trace, MachineConfig(), warm_words=range(1000, 1500)
        ).run()
        assert stats.load_wait_on_predicate == 0
        assert stats.retired_instructions == trace.instruction_count
