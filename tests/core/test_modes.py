"""Unit tests for exit-case classification (Table 1) and the CFM CAM."""

import pytest

from repro.core.cfm import CfmCam
from repro.core.modes import ExitCase, classify_exit


class TestClassifyExit:
    """Each row of Table 1."""

    def test_case1(self):
        assert classify_exit(True, True, mispredicted=False) == (
            ExitCase.NORMAL_CORRECT
        )

    def test_case2(self):
        assert classify_exit(True, True, mispredicted=True) == (
            ExitCase.NORMAL_MISPREDICTED
        )

    def test_case3(self):
        assert classify_exit(True, False, mispredicted=False) == (
            ExitCase.REDIRECT_TO_CFM
        )

    def test_case4(self):
        assert classify_exit(True, False, mispredicted=True) == (
            ExitCase.CONTINUE_ALTERNATE
        )

    def test_case5(self):
        assert classify_exit(False, False, mispredicted=False) == (
            ExitCase.CONTINUE_PREDICTED
        )

    def test_case6(self):
        assert classify_exit(False, False, mispredicted=True) == (
            ExitCase.FLUSH
        )

    def test_only_case6_flushes(self):
        flushing = [case for case in ExitCase if case.flushes_pipeline]
        assert flushing == [ExitCase.FLUSH]

    def test_saved_mispredictions(self):
        saving = [case for case in ExitCase if case.saves_misprediction]
        assert saving == [
            ExitCase.NORMAL_MISPREDICTED,
            ExitCase.CONTINUE_ALTERNATE,
        ]


class TestCfmCam:
    def test_single_entry(self):
        cam = CfmCam((0x2000,))
        assert cam.matches(0x2000)
        assert not cam.matches(0x2004)

    def test_multiple_entries(self):
        cam = CfmCam((0x2000, 0x3000))
        assert cam.matches(0x2000)
        assert cam.matches(0x3000)

    def test_lock_restricts_to_first_seen(self):
        cam = CfmCam((0x2000, 0x3000))
        cam.lock(0x3000)
        assert cam.matches(0x3000)
        assert not cam.matches(0x2000)
        assert cam.locked_pc == 0x3000
        assert cam.entries == (0x3000,)

    def test_lock_requires_live_entry(self):
        cam = CfmCam((0x2000,))
        with pytest.raises(ValueError):
            cam.lock(0x9999)

    def test_capacity_drops_extras(self):
        cam = CfmCam(range(100), capacity=4)
        assert len(cam.entries) == 4
        assert cam.matches(3)
        assert not cam.matches(99)

    def test_duplicates_cost_one_slot(self):
        # Regression: the CAM deduplicates BEFORE truncating, so a
        # candidate repeated by a sloppy (or learned) hint occupies one
        # slot instead of pushing a distinct candidate off the edge.
        cam = CfmCam((0x2000, 0x2000, 0x2000, 0x3000), capacity=2)
        assert cam.entries == (0x2000, 0x3000)
        assert cam.matches(0x3000)

    def test_duplicates_keep_first_seen_order(self):
        cam = CfmCam((0x3000, 0x2000, 0x3000), capacity=8)
        assert cam.entries == (0x3000, 0x2000)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CfmCam(())

    def test_errors_are_structured(self):
        # CfmError slots into the ReproError hierarchy while remaining a
        # ValueError for the raw raises it replaced.
        from repro.errors import CfmError, ReproError, SimulationError

        assert issubclass(CfmError, ReproError)
        assert issubclass(CfmError, SimulationError)
        assert issubclass(CfmError, ValueError)
        with pytest.raises(CfmError):
            CfmCam(())
        cam = CfmCam((0x2000,))
        with pytest.raises(CfmError):
            cam.lock(0x9999)
