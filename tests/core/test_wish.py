"""Tests for the wish-branch machine (Section 5.2 comparison)."""

import random

import pytest

from repro.cfg.builder import CFGBuilder
from repro.core.dpred import PredicationAwareSimulator
from repro.core.modes import ExitCase
from repro.core.processors import simulate, wish_branch_processor
from repro.isa.instructions import Condition
from repro.profiling.wish_selection import (
    select_wish_branches,
    wish_region,
)
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.uarch.config import MachineConfig
from repro.uarch.timing import TimingSimulator

_WARM = range(1000, 1600)


def build_program(*cfgs):
    program = Program("t")
    for cfg in cfgs:
        program.add_function(cfg)
    return program.seal()


def hammock_loop(values):
    memory = Memory()
    memory.fill_array(1000, values)
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=len(values), taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=1000)
    body.br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt").addi(20, 20, 1).xor(23, 20, 4).jmp("merge")
    b.block("tk").addi(21, 21, 1).add(24, 21, 4)
    b.block("merge").addi(22, 20, 5)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()
    return build_program(b.build()), memory


def call_hammock():
    """A hammock with a call inside: DMP-predicable, NOT wish-predicable."""
    b = CFGBuilder("main")
    b.block("entry").br(Condition.GE, 4, imm=1, taken="tk")
    b.block("nt").call("helper")
    b.block("ntc").jmp("merge")
    b.block("tk").addi(21, 21, 1)
    b.block("merge").halt()
    h = CFGBuilder("helper")
    h.block("h").addi(20, 20, 1).ret()
    return build_program(b.build(), h.build())


class TestWishRegion:
    def test_simple_hammock_region(self):
        program, _ = hammock_loop([0, 1])
        cfg = program.entry_function
        region = wish_region(cfg, "body", "merge")
        assert set(region) == {"nt", "tk"}

    def test_call_inside_rejected(self):
        program = call_hammock()
        cfg = program.entry_function
        assert wish_region(cfg, "entry", "merge") is None

    def test_cyclic_region_rejected(self):
        program, _ = hammock_loop([0, 1])
        cfg = program.entry_function
        # The outer loop branch's "region" loops back through head.
        assert wish_region(cfg, "head", "exit") is None


class TestWishSelection:
    def test_hammock_selected(self):
        program, _ = hammock_loop([0, 1])
        table, regions = select_wish_branches(program)
        branch_pc = program.entry_function.block("body").instructions[-1].pc
        assert table.is_diverge_branch(branch_pc)
        assert set(regions[branch_pc]) == {"nt", "tk"}

    def test_call_hammock_not_selected(self):
        program = call_hammock()
        table, _ = select_wish_branches(program)
        entry_pc = program.entry_function.block("entry").instructions[-1].pc
        assert not table.is_diverge_branch(entry_pc)

    def test_size_cap(self):
        b = CFGBuilder("main")
        b.block("entry").br(Condition.GE, 4, imm=1, taken="tk")
        b.block("nt").nop(200).jmp("merge")
        b.block("tk").nop(5)
        b.block("merge").halt()
        program = build_program(b.build())
        table, _ = select_wish_branches(program, max_region_instructions=120)
        assert len(table) == 0


class TestWishMachine:
    def _run(self, values, confidence="never"):
        program, memory = hammock_loop(values)
        trace = Interpreter(program, memory=memory).run()
        table, _ = select_wish_branches(program)
        config = MachineConfig.wish(confidence_kind=confidence)
        sim = PredicationAwareSimulator(
            program, trace, config, hints=table, warm_words=_WARM
        )
        return sim.run(), program, trace

    def test_predicated_mode_eliminates_flushes(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(300)]
        stats, program, trace = self._run(values)
        base = TimingSimulator(
            program, trace, MachineConfig(), warm_words=_WARM
        ).run()
        assert stats.pipeline_flushes < base.pipeline_flushes / 2
        assert stats.exit_cases[ExitCase.NORMAL_MISPREDICTED] > 50

    def test_fetches_whole_region(self):
        """Wish predication fetches BOTH sides every time (paper point 2:
        DMP fetches only the two predictor-followed paths — here the same,
        but wish pays it on every low-confidence instance by design)."""
        stats, _, _ = self._run([0] * 200)
        # All-not-taken data: the taken side (2 instructions) is fetched
        # as predicated-FALSE work on every predicated instance.
        assert stats.predicated_false_instructions >= (
            2 * stats.dpred_entries * 0.9
        )

    def test_always_on_predication_is_software_predication(self):
        """confidence='never' ⇒ every instance predicated: the classic
        compile-time predication baseline, which loses on easy branches.
        Compared under a perfect predictor so warmup mispredictions cannot
        mask the pure predication overhead."""
        program, memory = hammock_loop([0] * 300)
        trace = Interpreter(program, memory=memory).run()
        base = TimingSimulator(
            program, trace, MachineConfig(predictor_kind="perfect"),
            warm_words=_WARM,
        ).run()
        table, _ = select_wish_branches(program)
        sim = PredicationAwareSimulator(
            program, trace,
            MachineConfig.wish(
                predictor_kind="perfect", confidence_kind="never"
            ),
            hints=table, warm_words=_WARM,
        )
        easy = sim.run()
        assert base.pipeline_flushes == 0
        # Predicating a perfectly-predictable branch costs cycles.
        assert easy.cycles >= base.cycles

    def test_facade(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(100)]
        program, memory = hammock_loop(values)
        trace = Interpreter(program, memory=memory).run()
        table, _ = select_wish_branches(program)
        sim = wish_branch_processor(program, trace, table)
        stats = sim.run()
        assert stats.config_description.startswith("wish")

    def test_simulate_dispatches_wish(self):
        rng = random.Random(7)
        values = [rng.randrange(2) for _ in range(100)]
        program, memory = hammock_loop(values)
        trace = Interpreter(program, memory=memory).run()
        table, _ = select_wish_branches(program)
        stats = simulate(
            program, trace, MachineConfig.wish(), hints=table
        )
        assert stats.retired_instructions == trace.instruction_count

    def test_wish_requires_hints(self):
        program, memory = hammock_loop([0] * 10)
        trace = Interpreter(program, memory=memory).run()
        with pytest.raises(ValueError):
            simulate(program, trace, MachineConfig.wish())


class TestDmpVsWish:
    def test_dmp_covers_call_regions_wish_cannot(self):
        """The paper's point 1: DMP predicates regions with calls."""
        from repro.isa.encoding import DivergeHint, HintTable

        program = call_hammock()
        trace = Interpreter(program).run()
        wish_table, _ = select_wish_branches(program)
        assert len(wish_table) == 0
        cfg = program.entry_function
        dmp_table = HintTable()
        dmp_table.add(
            cfg.block("entry").instructions[-1].pc,
            DivergeHint((cfg.block("merge").first_pc,)),
        )
        stats = simulate(
            program, trace,
            MachineConfig.dmp(confidence_kind="never"),
            hints=dmp_table,
        )
        assert stats.dpred_entries == 1
