"""Every Table 1 exit case is exercised under injected hint faults.

Runs the full fault catalog over two complex-CFG benchmarks with the
oracle checker and watchdog armed, then asserts — parametrized per
:class:`~repro.core.modes.ExitCase` — that each exit-case counter is hit
by at least one corrupted-hint run.  That is the paper's
graceful-degradation story made testable: no matter how wrong the CFM
hints are, the machine takes one of the six bounded exits, stays
architecturally correct (the oracle passes), and keeps IPC within the
documented margin of the baseline (docs/robustness.md).
"""

import pytest

from repro.core.modes import ExitCase
from repro.validation.faults import run_fault_suite


@pytest.fixture(scope="module")
def fault_report():
    return run_fault_suite(benchmarks=["parser", "twolf"], iterations=250)


def _injected_exit_totals(report):
    totals = {}
    for run in report.injected_runs:
        for case, count in run.exit_cases.items():
            totals[int(case)] = totals.get(int(case), 0) + count
    return totals


@pytest.mark.parametrize("case", list(ExitCase), ids=lambda c: c.name)
def test_exit_case_reached_by_injected_fault(fault_report, case):
    totals = _injected_exit_totals(fault_report)
    assert totals.get(int(case), 0) >= 1, (
        f"{case.name} was never observed under any injected hint fault"
    )


def test_oracle_passes_on_every_faulted_run(fault_report):
    assert fault_report.oracle_mismatches == []
    for run in fault_report.runs:
        assert run.oracle_checks > 0, (run.benchmark, run.fault)


def test_no_crashes_or_hangs(fault_report):
    assert fault_report.crashes == []
    assert fault_report.hangs == []


def test_ipc_within_documented_margin(fault_report):
    assert fault_report.ipc_violations == []


def test_full_catalog_contract_holds(fault_report):
    assert fault_report.require_all_exit_cases
    assert fault_report.all_exit_cases_observed
    assert fault_report.ok


def test_every_fault_class_detected_somewhere(fault_report):
    detected = {r.fault for r in fault_report.detections}
    injected = {r.fault for r in fault_report.injected_runs}
    assert detected == injected
