"""Boundedness of the batch engine's arena/analysis memos.

The arena layer memoizes per-program block tables, per-trace record
tables and (through the horizon registries) span macro blocks.  The
memos are weak-keyed, so entries never outlive their program/trace —
but a long-lived process that keeps thousands of trace objects alive
(fuzz harness, notebook, service) must not grow them without bound
either.  :class:`_BoundedArenaCache` enforces an LRU entry cap; these
tests pin the cap's behavior and its wiring into the suite executors.
"""

import pytest

from repro.harness.experiment import BenchmarkContext, run_suite
from repro.uarch.config import MachineConfig

np = pytest.importorskip("numpy")

from repro.uarch.batch.arena import (  # noqa: E402
    _DEFAULT_PROGRAM_CAP,
    _DEFAULT_TRACE_CAP,
    arena_cache_sizes,
    clear_arena_caches,
    program_arena,
    set_arena_cache_cap,
    trace_arena,
)


@pytest.fixture
def small_caps():
    """Shrink the memo caps for the test, restore the defaults after."""
    clear_arena_caches()
    set_arena_cache_cap(programs=4, traces=6)
    yield
    set_arena_cache_cap(
        programs=_DEFAULT_PROGRAM_CAP, traces=_DEFAULT_TRACE_CAP
    )
    clear_arena_caches()


def _build(ctx: BenchmarkContext):
    pa = program_arena(ctx.program)
    trace_arena(pa, ctx.program, ctx.trace,
                ctx.workload.memory.warm_words())


def test_arena_memos_respect_the_lru_cap(small_caps):
    """Building more arenas than the cap keeps live trace objects from
    growing the memos: entry counts stay at the cap, LRU-evicted."""
    contexts = [
        BenchmarkContext("gzip", iterations=40, seed=seed)
        for seed in range(10)
    ]
    for ctx in contexts:
        _build(ctx)
    programs, traces = arena_cache_sizes()
    assert programs <= 4, f"program memo grew past the cap: {programs}"
    assert traces <= 6, f"trace memo grew past the cap: {traces}"


def test_evicted_arena_rebuilds_identically(small_caps):
    """Eviction is a cache policy, not a semantic change: an arena
    rebuilt after falling off the LRU carries the same tables."""
    contexts = [
        BenchmarkContext("gzip", iterations=40, seed=seed)
        for seed in range(8)
    ]
    first = program_arena(contexts[0].program)
    probe = (first.NROWS.copy(), first.TERM.copy(), first.n)
    for ctx in contexts[1:]:
        _build(ctx)
    rebuilt = program_arena(contexts[0].program)
    assert rebuilt is not first, "expected an LRU eviction"
    assert rebuilt.n == probe[2]
    assert (rebuilt.NROWS == probe[0]).all()
    assert (rebuilt.TERM == probe[1]).all()


def test_batch_executor_enforces_the_cap(small_caps):
    """A batch-executor suite run over more contexts than the cap must
    leave the memos at (or under) the cap — the executor re-trims after
    every group run."""
    configs = {"base": MachineConfig.baseline().replace(engine="batch")}
    benchmarks = ("gzip", "parser", "mcf", "eon")
    for seed in range(3):
        run_suite(configs, benchmarks, iterations=40, seed=seed)
    programs, traces = arena_cache_sizes()
    assert programs <= 4, f"program memo grew past the cap: {programs}"
    assert traces <= 6, f"trace memo grew past the cap: {traces}"
