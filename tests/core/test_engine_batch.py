"""Differential validation of the vectorized batch engine.

The batch engine advances many (program, trace, config) cells in
lockstep over numpy struct-of-arrays (:mod:`repro.uarch.batch`); its
contract is the same as the fast engine's — *bit identity* with the
reference engine — reached two ways: the vector path for cells inside
the supported envelope, and a per-cell fast-engine fallback for
everything else.  Both paths are exercised here; the committed fuzz
corpus replays against the batch engine too
(tests/fuzz/test_corpus_replay.py).
"""

import dataclasses

import pytest

from repro.harness.experiment import BenchmarkContext, run_suite
from repro.uarch.batch import (
    BatchCell,
    batch_supported,
    cell_supported,
    run_batch,
)
from repro.uarch.config import MachineConfig
from repro.workloads.suite import BENCHMARK_NAMES

ITERATIONS = 120

_contexts = {}


def _context(name: str) -> BenchmarkContext:
    ctx = _contexts.get(name)
    if ctx is None:
        ctx = _contexts[name] = BenchmarkContext(
            name, iterations=ITERATIONS, seed=0
        )
    return ctx


def _cell(ctx: BenchmarkContext, config: MachineConfig) -> BatchCell:
    return BatchCell(
        ctx.program, ctx.trace, config.replace(engine="batch"),
        hints=ctx.hints_for(config), benchmark=ctx.name,
        warm_words=ctx.workload.memory.warm_words(),
    )


def _reference(ctx: BenchmarkContext, config: MachineConfig):
    return ctx.simulate(config.replace(engine="reference"))


def test_vector_path_bit_identical_across_the_suite():
    """One lockstep group holding every benchmark under every vector-
    eligible mode (baseline, dualpath, dmp, dhp) must reproduce the
    reference stats bit for bit, cell for cell.  Running them as *one*
    group (not one group per cell) is the point: it proves cells cannot
    bleed state into each other through the shared arrays."""
    cells, refs = [], []
    for name in BENCHMARK_NAMES:
        ctx = _context(name)
        for config in (
            MachineConfig.baseline(), MachineConfig.dualpath(),
            MachineConfig.dmp(), MachineConfig.dhp(),
        ):
            cells.append(_cell(ctx, config))
            refs.append(_reference(ctx, config))
    if batch_supported():
        for cell in cells:
            ok, reason = cell_supported(cell)
            assert ok, f"{cell.benchmark}: expected vector path, {reason}"
    results = run_batch(cells)
    for cell, ref, got in zip(cells, refs, results):
        assert dataclasses.asdict(got) == dataclasses.asdict(ref), (
            cell.benchmark, cell.config.mode,
        )


def test_mixed_sizing_grid_bit_identical():
    """Heterogeneous frontend/backend sizings in one group, including
    ROBs smaller than a block (the non-static ring-buffer path)."""
    grid = [
        MachineConfig.baseline().replace(fetch_width=8, rob_size=512),
        MachineConfig.baseline().replace(rob_size=16),
        MachineConfig.dualpath().replace(rob_size=32, retire_width=8),
        MachineConfig.dualpath().replace(
            fetch_width=8, pipeline_depth=30
        ),
    ]
    cells, refs = [], []
    for name in ("parser", "gzip", "mcf"):
        ctx = _context(name)
        for config in grid:
            cells.append(_cell(ctx, config))
            refs.append(_reference(ctx, config))
    results = run_batch(cells)
    for cell, ref, got in zip(cells, refs, results):
        assert dataclasses.asdict(got) == dataclasses.asdict(ref), (
            cell.benchmark, cell.config.describe(),
        )


def test_mixed_mode_grid_bit_identical():
    """Predicated and non-predicated cells side by side in one group,
    over the dpred knobs the envelope admits (multiple CFM targets, the
    alternate GHR policy, tight path limits) plus sizing variants —
    episodes must not leak into neighbouring lanes through the shared
    tables, and every dpred counter (entries, exit cases, select/extra
    uops, predicated-false fetches, load predicate waits) must match."""
    grid = [
        MachineConfig.dmp(),
        MachineConfig.dmp(multiple_cfm=True),
        MachineConfig.dmp(rob_size=16, fetch_width=8),
        MachineConfig.dmp(dpred_ghr_policy="alternate"),
        MachineConfig.dmp(dpred_path_limit=24),
        MachineConfig.dhp(retire_width=8, pipeline_depth=30),
        MachineConfig.dhp(fetch_stops_at_taken=True),
        MachineConfig.baseline(),
        MachineConfig.dualpath(),
    ]
    cells, refs = [], []
    for name in ("parser", "gzip", "twolf"):
        ctx = _context(name)
        for config in grid:
            cells.append(_cell(ctx, config))
            refs.append(_reference(ctx, config))
    results = run_batch(cells)
    covered = set()
    for cell, ref, got in zip(cells, refs, results):
        assert dataclasses.asdict(got) == dataclasses.asdict(ref), (
            cell.benchmark, cell.config.describe(),
        )
        covered.update(c for c, n in ref.exit_cases.items() if n)
    assert covered, "no dpred episodes resolved — grid too shallow"


def test_single_cell_simulate_route():
    """``simulate(engine="batch")`` — the processors.py route — works
    for a lone cell, vector path included."""
    ctx = _context("parser")
    config = MachineConfig.dualpath()
    got = ctx.simulate(config.replace(engine="batch"))
    assert dataclasses.asdict(got) == dataclasses.asdict(
        _reference(ctx, config)
    )


@pytest.mark.parametrize(
    "config_name", ("dmp", "dhp", "wish", "loop-pred", "mpp")
)
@pytest.mark.parametrize("bench_name", ("parser", "gzip"))
def test_fallback_path_bit_identical(bench_name, config_name):
    """Configurations outside the vector envelope (predicated modes,
    hardened runs) silently fall back to the fast engine per cell — and
    must still match the hardened reference bit for bit."""
    factory = {
        "dmp": lambda: MachineConfig.dmp(enhanced=True),
        "dhp": MachineConfig.dhp,
        "wish": MachineConfig.wish,
        "loop-pred": lambda: MachineConfig.dmp(loop_predication=True),
        "mpp": MachineConfig.mpp,
    }[config_name]
    ctx = _context(bench_name)
    config = factory().hardened()
    if batch_supported():
        ok, _ = cell_supported(_cell(ctx, config))
        assert not ok, "expected a fallback config"
    got = ctx.simulate(config.replace(engine="batch"))
    ref = _reference(ctx, config)
    assert ref.oracle_checks > 0, "oracle was not armed"
    assert dataclasses.asdict(got) == dataclasses.asdict(ref)


@pytest.mark.skipif(not batch_supported(), reason="numpy unavailable")
def test_cell_supported_reports_reasons():
    ctx = _context("parser")
    ok, reason = cell_supported(_cell(ctx, MachineConfig.baseline()))
    assert ok, reason

    class _Tracer:
        pass

    traced = _cell(ctx, MachineConfig.baseline())
    traced.tracer = _Tracer()
    ok, reason = cell_supported(traced)
    assert not ok and "tracer" in reason

    # Plain dynamic predication is inside the envelope; each scalar-only
    # enhancement is refused with its own reason string.
    ok, reason = cell_supported(_cell(ctx, MachineConfig.dmp()))
    assert ok, reason
    ok, reason = cell_supported(_cell(ctx, MachineConfig.dhp()))
    assert ok, reason
    ok, reason = cell_supported(
        _cell(ctx, MachineConfig.dmp(enhanced=True))
    )
    assert not ok and "early exit" in reason
    ok, reason = cell_supported(
        _cell(ctx, MachineConfig.dmp(multiple_diverge=True))
    )
    assert not ok and "diverge" in reason
    ok, reason = cell_supported(
        _cell(ctx, MachineConfig.dmp(loop_predication=True))
    )
    assert not ok and "loop" in reason
    ok, reason = cell_supported(
        _cell(ctx, MachineConfig.dmp(selective_predictor_update=True))
    )
    assert not ok and "selective" in reason
    ok, reason = cell_supported(_cell(ctx, MachineConfig.wish()))
    assert not ok and "wish" in reason
    # Learned merge points mutate between lookups; the lockstep vector
    # path has no lane-local predictor state, so mpp is scalar-only.
    ok, reason = cell_supported(_cell(ctx, MachineConfig.mpp()))
    assert not ok and "mpp" in reason

    ok, reason = cell_supported(
        _cell(ctx, MachineConfig.baseline().hardened())
    )
    assert not ok


def test_run_suite_batch_executor_matches_serial():
    """The ``"batch"`` suite executor returns the same table as the
    serial fast-engine executor (memo/disk caches bypassed by fresh
    contexts)."""
    configs = {
        "base": MachineConfig.baseline(),
        "dual": MachineConfig.dualpath(),
    }
    benchmarks = ("parser", "gzip")

    def fresh():
        return {
            name: BenchmarkContext(name, iterations=ITERATIONS, seed=0)
            for name in benchmarks
        }

    serial = run_suite(
        configs, benchmarks, iterations=ITERATIONS,
        contexts=fresh(), executor="serial",
    )
    batch = run_suite(
        configs, benchmarks, iterations=ITERATIONS,
        contexts=fresh(), executor="batch",
    )
    for name in benchmarks:
        for label in configs:
            assert dataclasses.asdict(
                batch.stats(name, label)
            ) == dataclasses.asdict(serial.stats(name, label))
