"""Differential validation of the fast (block-plan) engine.

The fast engine rewrites the simulator's inner loops over pre-decoded
:class:`~repro.uarch.plan.BlockPlan` tables; its contract is *bit
identity* — the full :class:`~repro.uarch.stats.SimStats` must equal the
reference engine's on every benchmark under every machine mode, with the
oracle cross-checker and watchdog armed on both runs.
"""

import dataclasses

import pytest

from repro.harness.experiment import BenchmarkContext
from repro.obs.events import CollectorTracer
from repro.uarch.config import MachineConfig
from repro.workloads.suite import BENCHMARK_NAMES

#: Short runs keep the 15 x 5 x 2-engine matrix affordable while still
#: exercising every episode type (dpred entry/exit, forks, flushes).
ITERATIONS = 120

CONFIGS = {
    "baseline": MachineConfig.baseline,
    "dualpath": MachineConfig.dualpath,
    "dmp": lambda: MachineConfig.dmp(enhanced=True),
    "dhp": MachineConfig.dhp,
    "mpp": MachineConfig.mpp,
}

_contexts = {}


def _context(name: str) -> BenchmarkContext:
    """One context per benchmark, shared by every config of the matrix
    (trace and hint tables are machine-independent)."""
    ctx = _contexts.get(name)
    if ctx is None:
        ctx = _contexts[name] = BenchmarkContext(
            name, iterations=ITERATIONS, seed=0
        )
    return ctx


def _assert_identical(ctx: BenchmarkContext, config: MachineConfig) -> None:
    ref = ctx.simulate(config.replace(engine="reference"))
    fast = ctx.simulate(config.replace(engine="fast"))
    assert ref.oracle_checks > 0, "oracle was not armed"
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_fast_engine_bit_identical(bench_name, config_name):
    """Hardened fast run == hardened reference run, field for field."""
    _assert_identical(_context(bench_name), CONFIGS[config_name]().hardened())


@pytest.mark.parametrize("bench_name", ("parser", "gzip", "mcf"))
def test_wish_mode_differential(bench_name):
    """Wish branches drive the predication machinery down a different
    entry path; the engines must still agree."""
    _assert_identical(_context(bench_name), MachineConfig.wish().hardened())


@pytest.mark.parametrize("bench_name", ("parser", "twolf", "vpr"))
def test_mpp_recovery_differential(bench_name):
    """An aggressive learner shape (tiny training threshold, short
    windows and path limits, early exit on) drives merge mispredictions,
    recovery flushes and retrains; the learned tables — rebuilt from the
    retired stream independently in each engine — must stay in lockstep
    through all of it."""
    config = MachineConfig.mpp(
        merge_min_instances=4, merge_window_instructions=64,
        multiple_cfm=True, early_exit=True,
        early_exit_default_threshold=24, dpred_path_limit=48,
    ).hardened()
    _assert_identical(_context(bench_name), config)


@pytest.mark.parametrize("bench_name", ("parser", "twolf"))
def test_loop_predication_differential(bench_name):
    """Loop predication exercises the episode-restart paths."""
    config = MachineConfig.dmp(loop_predication=True).hardened()
    _assert_identical(_context(bench_name), config)


def _traced_run(ctx: BenchmarkContext, config: MachineConfig):
    tracer = CollectorTracer()
    stats = ctx.simulate(config, tracer=tracer)
    assert tracer.finished and tracer.open_episodes == 0
    return stats, tracer.records


@pytest.mark.parametrize("config_name", ("dmp", "dhp"))
@pytest.mark.parametrize("bench_name", ("parser", "gzip", "twolf"))
def test_episodes_record_exactly_one_terminal_exit_case(
    bench_name, config_name
):
    """Every predication episode ends in exactly one of Table 1's six
    exit cases — on both engines.  A restarted episode (Section 2.7.3)
    charges no case of its own: its re-execution does.
    """
    ctx = _context(bench_name)
    config = CONFIGS[config_name]().hardened()
    for engine in ("reference", "fast"):
        stats, records = _traced_run(ctx, config.replace(engine=engine))
        exits = [r for r in records if r["t"] == "ep-exit"]
        assert len(exits) == stats.dpred_entries
        for record in exits:
            if record["restart"]:
                assert record["cases"] == [], record
            else:
                assert len(record["cases"]) == 1, record
        charged = [case for r in exits for case in r["cases"]]
        assert len(charged) == sum(stats.exit_cases.values())


@pytest.mark.parametrize("bench_name", ("parser", "mcf"))
def test_event_streams_are_engine_identical(bench_name):
    """Stronger than stats bit-identity: the two engines must emit the
    *same event stream*, record for record (cycles included)."""
    config = CONFIGS["dmp"]().hardened()
    ctx = _context(bench_name)
    ref_stats, ref_records = _traced_run(
        ctx, config.replace(engine="reference")
    )
    fast_stats, fast_records = _traced_run(ctx, config.replace(engine="fast"))
    assert dataclasses.asdict(fast_stats) == dataclasses.asdict(ref_stats)

    def scrub(records):
        # The machine record names the engine that produced the stream —
        # the one field that differs by construction.
        return [
            {k: v for k, v in r.items() if k != "engine"}
            if r["t"] == "machine" else r
            for r in records
        ]

    assert scrub(fast_records) == scrub(ref_records)


def test_fast_engine_is_the_default():
    """``MachineConfig()`` selects the fast engine; ``describe`` hides
    the engine choice because results are identical by construction."""
    config = MachineConfig.baseline()
    assert config.engine == "fast"
    assert "engine" not in config.describe()
    assert config.describe() == config.replace(engine="reference").describe()
