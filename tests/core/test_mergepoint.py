"""The dynamic merge-point predictor (repro.core.mergepoint) and the
hint-free ``"mpp"`` machine mode built on it.

Unit tests drive the predictor with a synthetic retired stream (no trace
needed); the end-to-end tests run real benchmarks and pin the learned
merge accuracy to a floor.
"""

import dataclasses

import pytest

from repro.core import simulate
from repro.core.mergepoint import LearnedHintTable, MergePointPredictor
from repro.harness.experiment import BenchmarkContext
from repro.isa.encoding import DivergeHint, HintTable
from repro.obs.events import CollectorTracer
from repro.uarch.config import MachineConfig

BRANCH = 0x10C
OWN_BLOCK = 0x100


def _predictor(**overrides):
    kwargs = dict(min_instances=2, window_instructions=100)
    kwargs.update(overrides)
    return MergePointPredictor(**kwargs)


def _train(predictor, rounds, branch=BRANCH, own=OWN_BLOCK,
           taken_side=(0x200,), fallthrough_side=(0x180,),
           common=(0x300,)):
    """Alternate the branch, retiring the side-specific blocks and then
    the common (merging) blocks after each instance."""
    for i in range(rounds):
        predictor.observe_block(own, 4)  # closes the previous window
        predictor.observe_branch(branch, i % 2 == 0, block_pc=own)
        side = taken_side if i % 2 == 0 else fallthrough_side
        for pc in side + tuple(common):
            predictor.observe_block(pc, 4)
    predictor.observe_block(own, 4)  # close the last window


class TestMergePointPredictor:
    def test_learns_the_common_postdominator(self):
        predictor = _predictor()
        _train(predictor, rounds=4)
        # 0x300 follows both directions; the side blocks follow only one.
        assert predictor.predict(BRANCH) == (0x300,)
        assert predictor.trained_branches() == [BRANCH]

    def test_no_prediction_before_both_sides_trained(self):
        predictor = _predictor(min_instances=3)
        _train(predictor, rounds=4)  # only 2 instances per side
        assert predictor.predict(BRANCH) == ()
        assert predictor.trained_branches() == []

    def test_candidates_sorted_closest_first(self):
        predictor = _predictor()
        _train(predictor, rounds=4, common=(0x300, 0x400))
        assert predictor.predict(BRANCH) == (0x300, 0x400)

    def test_branch_never_merges_at_itself(self):
        # A block starting at the branch's own PC is a legal observation
        # but an impossible merge point.
        predictor = _predictor()
        _train(predictor, rounds=4, common=(BRANCH, 0x300))
        assert BRANCH not in predictor.predict(BRANCH)
        assert predictor.predict(BRANCH) == (0x300,)

    def test_min_fraction_filters_occasional_blocks(self):
        predictor = _predictor(min_instances=4, min_fraction=0.7)
        # 0x300 follows every instance; 0x500 follows only the first
        # taken instance (1/4 < 0.7 on that side).
        for i in range(8):
            predictor.observe_block(OWN_BLOCK, 4)
            predictor.observe_branch(BRANCH, i % 2 == 0, block_pc=OWN_BLOCK)
            if i == 0:
                predictor.observe_block(0x500, 4)
            predictor.observe_block(0x300, 4)
        predictor.observe_block(OWN_BLOCK, 4)
        assert predictor.predict(BRANCH) == (0x300,)

    def test_predict_is_pure(self):
        predictor = _predictor()
        _train(predictor, rounds=4)
        first = predictor.predict(BRANCH)
        # Repeated lookups (the engines query from nested-branch and
        # static-path code too) must not move any learning state.
        for _ in range(10):
            assert predictor.predict(BRANCH) == first
        assert predictor.trained_branches() == [BRANCH]

    def test_lru_eviction_is_deterministic(self):
        predictor = _predictor(table_entries=2)
        for branch in (0x10, 0x20, 0x30):
            predictor.observe_branch(branch, True, block_pc=branch - 4)
        # 0x10 is the least recently touched tag; it must be the victim.
        assert predictor.evictions == 1
        predictor.observe_branch(0x10, True, block_pc=0xC)
        assert predictor.evictions == 2

    def test_confidence_saturates_and_decays(self):
        predictor = _predictor(conf_init=2, conf_max=3, miss_penalty=1)
        _train(predictor, rounds=4)
        for _ in range(10):
            assert predictor.feedback(BRANCH, hit=True) is False
        # From the ceiling, it takes conf_max misses to collapse.
        assert predictor.feedback(BRANCH, hit=False) is False
        assert predictor.feedback(BRANCH, hit=False) is False
        assert predictor.feedback(BRANCH, hit=False) is True

    def test_collapse_retrains_the_entry(self):
        predictor = _predictor(conf_init=2, miss_penalty=2)
        _train(predictor, rounds=4)
        assert predictor.predict(BRANCH)
        assert predictor.feedback(BRANCH, hit=False) is True
        assert predictor.retrains == 1
        # The candidate statistics are gone: the point is re-learned.
        assert predictor.predict(BRANCH) == ()
        _train(predictor, rounds=4)
        assert predictor.predict(BRANCH) == (0x300,)

    def test_feedback_on_evicted_entry_is_a_noop(self):
        predictor = _predictor()
        assert predictor.feedback(0x9999, hit=False) is False
        assert predictor.retrains == 0

    def test_from_config_reads_the_sizing_knobs(self):
        config = MachineConfig.mpp(
            merge_table_entries=32, merge_max_candidates=4,
            merge_window_instructions=48, merge_min_instances=8,
            merge_min_fraction=0.5, merge_conf_init=1,
            merge_conf_max=5, merge_miss_penalty=3,
        )
        predictor = MergePointPredictor.from_config(config)
        assert predictor.table_entries == 32
        assert predictor.max_candidates == 4
        assert predictor.window_instructions == 48
        assert predictor.min_instances == 8
        assert predictor.min_fraction == 0.5
        assert predictor.conf_init == 1
        assert predictor.conf_max == 5
        assert predictor.miss_penalty == 3


class _Instr:
    def __init__(self, pc):
        self.pc = pc


class _Block:
    def __init__(self, first_pc, size=4):
        self.first_pc = first_pc
        self.instructions = [_Instr(first_pc + 4 * i) for i in range(size)]


class _Record:
    def __init__(self, first_pc, taken=None):
        self.block = _Block(first_pc)
        self.taken = taken


class TestObserveTo:
    """The catch-up interface both engines drive from the shared
    ``_maybe_enter_dpred`` hook — the mpp bit-identity contract."""

    def _records(self):
        out = []
        for i in range(6):
            out.append(_Record(OWN_BLOCK, taken=i % 2 == 0))
            out.append(_Record(0x200 if i % 2 == 0 else 0x180))
            out.append(_Record(0x300))
        return out

    def test_observes_each_record_once(self):
        records = self._records()
        predictor = _predictor()
        predictor.observe_to(records, 9)
        predictor.observe_to(records, len(records))
        assert predictor.observed_upto == len(records)
        assert predictor.predict(records[0].block.instructions[-1].pc)

    def test_rewinding_is_a_noop(self):
        records = self._records()
        stepped = _predictor()
        stepped.observe_to(records, 9)
        stepped.observe_to(records, 4)  # earlier position: ignored
        stepped.observe_to(records, 9)  # same position: ignored
        oneshot = _predictor()
        oneshot.observe_to(records, 9)
        assert stepped.observed_upto == oneshot.observed_upto == 9
        branch_pc = records[0].block.instructions[-1].pc
        assert stepped.predict(branch_pc) == oneshot.predict(branch_pc)


class TestLearnedHintTable:
    def _trained(self):
        predictor = _predictor()
        _train(predictor, rounds=4, common=(0x300, 0x400))
        return LearnedHintTable(predictor)

    def test_duck_types_the_hint_table_read_side(self):
        hints = self._trained()
        assert hints.is_diverge_branch(BRANCH)
        assert BRANCH in hints
        assert 0x9999 not in hints
        assert hints.get(0x9999) is None
        assert len(hints) == 1
        assert [pc for pc, _ in hints] == [BRANCH]

    def test_builds_fresh_diverge_hints(self):
        hints = self._trained()
        hint = hints.get(BRANCH)
        assert isinstance(hint, DivergeHint)
        assert hint.cfm_pcs == (0x300, 0x400)
        assert hint.primary_cfm == 0x300
        # Learned hints carry no compiler-only metadata.
        assert hint.early_exit_threshold is None
        assert not hint.is_loop

    def test_lookup_is_side_effect_free(self):
        hints = self._trained()
        for _ in range(5):
            assert hints.get(BRANCH) == hints.get(BRANCH)
        assert hints.predictor.trained_branches() == [BRANCH]

    def test_untrained_predictor_yields_empty_table(self):
        hints = LearnedHintTable(_predictor())
        assert len(hints) == 0
        assert list(hints) == []


#: The accuracy floor the end-to-end runs must clear at the default
#: table geometry (measured: 100% on every suite benchmark; see
#: docs/merge_point_prediction.md).
ACCURACY_FLOOR = 0.9


class TestMppEndToEnd:
    @pytest.fixture(scope="class")
    def context(self):
        return BenchmarkContext("parser", iterations=200, seed=0)

    @pytest.fixture(scope="class")
    def stats(self, context):
        return context.simulate(MachineConfig.mpp().hardened())

    def test_predicates_without_any_hint_table(self, stats):
        assert stats.mpp_predictions > 0
        assert stats.dpred_entries > 0
        assert stats.retired_instructions > 0

    def test_merge_accuracy_clears_the_floor(self, stats):
        assert stats.mpp_merge_hits + stats.mpp_merge_misses > 0
        assert stats.merge_accuracy >= ACCURACY_FLOOR

    def test_beats_the_baseline(self, context, stats):
        baseline = context.simulate(MachineConfig.baseline().hardened())
        assert stats.ipc > baseline.ipc

    def test_rejects_a_compiler_hint_table(self, context):
        table = HintTable()
        table.add(0x1000, DivergeHint((0x2000,)))
        with pytest.raises(ValueError, match="learns merge points"):
            simulate(
                context.program, context.trace,
                MachineConfig.mpp(), hints=table,
            )

    def test_summary_reports_the_predictor(self, stats):
        assert "mpp: predictions=" in stats.summary()

    def test_tracer_sees_the_predictor_without_perturbing_it(self, context):
        config = MachineConfig.mpp().hardened()
        untraced = context.simulate(config)
        tracer = CollectorTracer()
        traced = context.simulate(config, tracer=tracer)
        assert dataclasses.asdict(traced) == dataclasses.asdict(untraced)
        events = [r for r in tracer.records if r["t"] == "mpp"]
        names = {r["event"] for r in events}
        assert names <= {"predict", "hit", "miss", "recovery", "retrain"}
        predicted = sum(1 for r in events if r["event"] == "predict")
        assert predicted == traced.mpp_predictions


class TestDegenerateHintFallback:
    """The shared no-episode fallback: a present-but-unusable hint
    (empty candidate set cannot be constructed; a self-referential CFM
    can) must decline the episode identically on both engines."""

    def test_self_cfm_hints_open_no_episodes(self):
        ctx = BenchmarkContext("parser", iterations=120, seed=0)
        clean = ctx.hints_for(MachineConfig.dmp())
        poisoned = HintTable()
        for pc, _hint in clean:
            poisoned.add(pc, DivergeHint((pc,)))
        config = MachineConfig.dmp().hardened()
        results = [
            simulate(
                ctx.program, ctx.trace, config.replace(engine=engine),
                hints=poisoned,
            )
            for engine in ("reference", "fast")
        ]
        for stats in results:
            assert stats.dpred_entries == 0
            assert stats.retired_instructions > 0
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(
            results[1]
        )
