"""Design-space ablations around the diverge-merge processor.

Explores the design choices DESIGN.md calls out, beyond the paper's own
sweeps:

* confidence estimation quality (JRS table size / threshold vs. oracle);
* the GHR exit policy (paper footnote 7 chose the alternate path's
  history; our default keeps the predicted path's — compare both);
* each enhancement toggled *individually* (the paper only reports them
  cumulatively);
* predictor choice under DMP (perceptron vs. gshare vs. hybrid).

Run:  python examples/design_space.py [--iterations N] [--benchmark parser]
"""

import argparse

from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig


def improvement(context, config, base):
    return 100.0 * (context.simulate(config).ipc / base.ipc - 1.0)


def section(title):
    print(f"\n--- {title} ---")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=800)
    parser.add_argument("--benchmark", type=str, default="parser")
    args = parser.parse_args()

    context = BenchmarkContext(args.benchmark, iterations=args.iterations)
    base = context.simulate(MachineConfig.baseline())
    print(f"benchmark={args.benchmark}  base IPC={base.ipc:.3f}  "
          f"MPKI={base.mpki:.2f}  diverge branches={len(context.diverge_hints)}")

    section("Confidence estimation (the paper: 'critically affects benefit')")
    for label, config in [
        ("JRS (default: 2K entries, thr 12)", MachineConfig.dmp()),
        ("JRS saturating threshold (15)",
         MachineConfig.dmp(confidence_args={"threshold": None})),
        ("JRS tiny table (256 entries)",
         MachineConfig.dmp(confidence_args={"table_size": 256})),
        ("JRS 12-bit history index",
         MachineConfig.dmp(confidence_args={"history_bits": 12})),
        ("perfect confidence (oracle)",
         MachineConfig.dmp(confidence_kind="perfect")),
        ("never confident (predicate always)",
         MachineConfig.dmp(confidence_kind="never")),
    ]:
        print(f"  {label:40s} {improvement(context, config, base):+7.1f}%")

    section("GHR policy on dpred exit (footnote 7 design choice)")
    for policy in ("predicted", "alternate"):
        config = MachineConfig.dmp(dpred_ghr_policy=policy)
        print(f"  keep {policy:10s} path history "
              f"{improvement(context, config, base):+7.1f}%")

    section("Enhancements individually (paper reports them cumulatively)")
    for label, kwargs in [
        ("basic", {}),
        ("+ multiple CFM only", {"multiple_cfm": True}),
        ("+ early exit only", {"early_exit": True}),
        ("+ multiple diverge only", {"multiple_diverge": True}),
        ("all three", {"multiple_cfm": True, "early_exit": True,
                       "multiple_diverge": True}),
    ]:
        config = MachineConfig.dmp(**kwargs)
        print(f"  {label:40s} {improvement(context, config, base):+7.1f}%")

    section("Direction predictor under DMP")
    for kind in ("perceptron", "gshare", "hybrid", "bimodal"):
        this_base = context.simulate(
            MachineConfig.baseline(predictor_kind=kind)
        )
        dmp = context.simulate(MachineConfig.dmp(predictor_kind=kind))
        gain = 100.0 * (dmp.ipc / this_base.ipc - 1.0)
        print(f"  {kind:12s} base IPC {this_base.ipc:6.3f}   "
              f"DMP {gain:+7.1f}%")

    section("Diverge loop branches (Section 2.7.4 extension)")
    from repro.core.processors import simulate
    from repro.profiling.loop_selection import (
        merge_hint_tables,
        select_diverge_loop_branches,
    )

    loop_hints = select_diverge_loop_branches(
        context.program, context.trace, context.profile, context.thresholds
    )
    combined = merge_hint_tables(context.diverge_hints, loop_hints)
    with_loops = simulate(
        context.program, context.trace,
        MachineConfig.dmp(enhanced=True, loop_predication=True),
        hints=combined, benchmark=args.benchmark,
        warm_words=sorted(context.workload.memory._words),
    )
    enhanced = context.simulate(MachineConfig.dmp(enhanced=True))
    print(f"  enhanced DMP                             "
          f"{100 * (enhanced.ipc / base.ipc - 1):+7.1f}%")
    print(f"  + loop predication ({len(loop_hints)} loop branches)      "
          f"{100 * (with_loops.ipc / base.ipc - 1):+7.1f}%   "
          f"({with_loops.loop_iteration_saves} exit flushes absorbed)")

    section("Alternate-path budget (hardware dpred_path_limit)")
    for limit in (32, 64, 128, 256):
        config = MachineConfig.dmp(dpred_path_limit=limit)
        print(f"  limit {limit:4d} insts "
              f"{improvement(context, config, base):+7.1f}%")


if __name__ == "__main__":
    main()
