"""Run the synthetic SPEC-2000-like suite through the full DMP pipeline.

For each benchmark this drives the complete flow the paper describes:
functional execution → two profile runs → diverge-branch/CFM selection →
simulation on the baseline, DHP, basic DMP and enhanced DMP machines.

Run:  python examples/spec_suite.py [--iterations N] [--benchmarks a,b,c]
"""

import argparse
import time

from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.workloads.suite import BENCHMARK_NAMES


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=1000,
                        help="loop iterations per benchmark (default 1000)")
    parser.add_argument("--benchmarks", type=str, default="",
                        help="comma-separated subset (default: all 15)")
    args = parser.parse_args()

    names = (
        [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        or list(BENCHMARK_NAMES)
    )

    configs = {
        "base": MachineConfig.baseline(),
        "DHP": MachineConfig.dhp(),
        "DMP": MachineConfig.dmp(),
        "DMP-enh": MachineConfig.dmp(enhanced=True),
    }

    header = (
        f"{'benchmark':10s}{'insts':>9s}{'MPKI':>7s}{'divBr':>6s}"
        f"{'base IPC':>10s}{'DHP':>8s}{'DMP':>8s}{'DMP-enh':>9s}"
        f"{'flush-red':>10s}"
    )
    print(header)
    print("-" * len(header))

    started = time.time()
    means = {label: [] for label in configs if label != "base"}
    for name in names:
        context = BenchmarkContext(name, iterations=args.iterations)
        stats = {
            label: context.simulate(config)
            for label, config in configs.items()
        }
        base = stats["base"]

        def improvement(label):
            return 100.0 * (stats[label].ipc / base.ipc - 1.0)

        enhanced = stats["DMP-enh"]
        if base.pipeline_flushes:
            flush_red = 100.0 * (
                1 - enhanced.pipeline_flushes / base.pipeline_flushes
            )
        else:
            flush_red = 0.0
        print(
            f"{name:10s}{base.retired_instructions:>9d}{base.mpki:>7.2f}"
            f"{len(context.diverge_hints):>6d}{base.ipc:>10.3f}"
            f"{improvement('DHP'):>+8.1f}{improvement('DMP'):>+8.1f}"
            f"{improvement('DMP-enh'):>+9.1f}{flush_red:>9.0f}%"
        )
        for label in means:
            means[label].append(improvement(label))

    print("-" * len(header))
    for label, values in means.items():
        mean = sum(values) / len(values) if values else 0.0
        print(f"{label:>10s} mean IPC improvement: {mean:+.1f}%")
    print(f"\n[{time.time() - started:.1f}s total]")


if __name__ == "__main__":
    main()
