"""Define your own benchmark and run it through the whole stack.

Shows the two ways to bring code to the diverge-merge processor:

1. compose a workload from the gadget library (parameterized CFG shapes
   with controlled branch behaviour) — the way the suite's 15 benchmarks
   are built;
2. write a program directly with the CFG builder DSL and push it through
   profiling + simulation by hand.

Run:  python examples/custom_workload.py
"""

from repro.core.processors import simulate
from repro.harness.experiment import BenchmarkContext
from repro.profiling import (
    build_hint_table,
    candidate_branch_pcs,
    collect_reconvergence,
    profile_trace,
    select_diverge_branches,
)
from repro.uarch.config import MachineConfig
from repro.workloads.generator import GadgetSpec, WorkloadSpec, build_workload


def gadget_composed_workload():
    """Way 1: compose gadgets.  This one is a 'database-like' mix: a
    hard-to-predict nested region (predicate evaluation), a pointer chase
    (index lookup) and well-predicted bulk work."""
    spec = WorkloadSpec(
        name="mydb",
        iterations=1200,
        gadgets=[
            GadgetSpec("nested", data=("uniform",), work=8),
            GadgetSpec("mem", access="chase", footprint=1 << 16, work=4),
            GadgetSpec("ifelse", data=("biased", 0.9), work=12),
            GadgetSpec("if", data=("periodic", (30, 220, 70), 0.05),
                       work=16),
        ],
        seed=7,
    )
    return build_workload(spec)


def main():
    workload = gadget_composed_workload()
    print(f"built workload '{workload.name}': "
          f"{workload.program.instruction_count()} static instructions")

    trace = workload.run()
    print(f"functional run: {trace.instruction_count} dynamic instructions, "
          f"{trace.branch_count} branches\n")

    # Way 2's manual pipeline, spelled out (BenchmarkContext does all of
    # this for the named suite):
    profile = profile_trace(workload.program, trace)
    candidates = candidate_branch_pcs(profile)
    reconvergence = collect_reconvergence(workload.program, trace, candidates)
    selections = select_diverge_branches(profile, reconvergence)
    hints = build_hint_table(selections)
    print(f"compiler: {profile.total_mispredictions} mispredictions, "
          f"{len(candidates)} candidates, {len(hints)} diverge branches\n")

    warm = sorted(workload.memory._words)
    results = {}
    for label, config in (
        ("baseline", MachineConfig.baseline()),
        ("DMP", MachineConfig.dmp(enhanced=True)),
    ):
        results[label] = simulate(
            workload.program, trace, config,
            hints=hints if config.is_predicating else None,
            benchmark=workload.name, warm_words=warm,
        )

    base, dmp = results["baseline"], results["DMP"]
    print(f"{'':20s}{'baseline':>12s}{'DMP':>12s}")
    for label, attribute in (
        ("IPC", "ipc"),
        ("cycles", "cycles"),
        ("pipeline flushes", "pipeline_flushes"),
    ):
        b, d = getattr(base, attribute), getattr(dmp, attribute)
        fmt = "{:>12.3f}" if isinstance(b, float) else "{:>12d}"
        print(f"{label:20s}{fmt.format(b)}{fmt.format(d)}")
    print(f"\nDMP: {100 * (dmp.ipc / base.ipc - 1):+.1f}% IPC on your "
          f"workload")


if __name__ == "__main__":
    main()
