"""Walk through the compiler side of the diverge-merge processor.

Shows, step by step, what the paper's Section 3.2 pipeline computes for
one benchmark: the branch misprediction profile, the reconvergence
statistics behind CFM-point selection, the final diverge-branch marking,
and the binary hint-table encoding a marked executable would carry.

Run:  python examples/compiler_pipeline.py [benchmark]
"""

import sys

from repro.isa.encoding import HintTable
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    build_hint_table,
    candidate_branch_pcs,
    select_diverge_branches,
)
from repro.profiling.hammock import find_simple_hammocks
from repro.profiling.profiler import collect_reconvergence, profile_trace
from repro.workloads.suite import build_benchmark


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "parser"
    thresholds = SelectionThresholds()

    print(f"=== Compiler pipeline for '{name}' ===\n")
    workload = build_benchmark(name, iterations=800)
    trace = workload.run()
    print(f"Functional run: {trace.instruction_count} instructions, "
          f"{trace.branch_count} dynamic branches\n")

    # ---- profile run 1: edge counts + mispredictions --------------------
    profile = profile_trace(workload.program, trace)
    print(f"Profile run 1: {profile.total_mispredictions} mispredictions")
    print("Worst branches:")
    for stats in profile.mispredicting_branches()[:6]:
        print(
            f"  pc={stats.pc:#06x} {stats.function}/{stats.block:10s} "
            f"exec={stats.executions:5d} misp={stats.mispredictions:4d} "
            f"({stats.misprediction_rate:6.1%})"
        )

    # ---- candidate filter ------------------------------------------------
    candidates = candidate_branch_pcs(profile, thresholds)
    print(f"\nDiverge-branch candidates after the share/rate filters: "
          f"{len(candidates)}")

    # ---- profile run 2: reconvergence windows ---------------------------
    reconvergence = collect_reconvergence(
        workload.program, trace, candidates,
        max_distance=thresholds.max_cfm_distance,
    )
    selections = select_diverge_branches(profile, reconvergence, thresholds)
    print(f"Branches with qualifying CFM points: {len(selections)}\n")
    for selection in selections:
        print(f"  diverge branch @{selection.pc:#06x} "
              f"({selection.mispredictions} mispredictions)")
        for cfm in selection.cfm_points:
            print(
                f"     CFM @{cfm.pc:#06x}  reached on "
                f"{cfm.fraction_taken:5.1%} of taken / "
                f"{cfm.fraction_not_taken:5.1%} of not-taken instances, "
                f"mean distance {cfm.mean_distance:.1f} insts"
            )

    # ---- hint-table encoding (the 'ISA marking' channel) ----------------
    hints = build_hint_table(selections, thresholds)
    blob = hints.to_bytes()
    print(f"\nHint table: {len(hints)} entries, {len(blob)} bytes encoded")
    restored = HintTable.from_bytes(blob)
    assert len(restored) == len(hints)
    print("Round-trip decode OK — this is what a marked binary carries.")

    # ---- what DHP would be allowed to touch ------------------------------
    hammocks = find_simple_hammocks(
        workload.program,
        profile=profile,
        min_misprediction_rate=thresholds.min_misprediction_rate,
    )
    print(f"\nFor comparison, DHP's simple-hammock set: {len(hammocks)} "
          f"branches (subset of shapes DMP can handle)")


if __name__ == "__main__":
    main()
