"""Regenerate every table and figure of the paper's evaluation.

Runs all the drivers in :mod:`repro.harness.figures` over the 15-benchmark
suite and prints each exhibit in paper order.  Benchmark artifacts (traces,
profiles, hint tables) are shared across exhibits, so the whole
reproduction costs one trace + profile per benchmark plus one simulation
per distinct machine configuration.

Run:  python examples/reproduce_paper.py [--iterations N] [--only fig7,fig9]
      (the default 1500 iterations takes a few minutes; use e.g. 400 for a
      quick look)
"""

import argparse
import time

from repro.harness import figures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=1500)
    parser.add_argument(
        "--only",
        type=str,
        default="",
        help="comma-separated exhibit names, e.g. fig7,fig9,table3",
    )
    args = parser.parse_args()

    wanted = [n.strip() for n in args.only.split(",") if n.strip()]
    drivers = {
        name: fn
        for name, fn in figures.ALL_DRIVERS.items()
        if not wanted or name in wanted
    }

    contexts = {}
    for name, driver in drivers.items():
        started = time.time()
        if name in ("table1", "table2"):
            result = driver()
        else:
            result = driver(contexts=contexts, iterations=args.iterations)
        print(result.format())
        print(f"[{name}: {time.time() - started:.1f}s]\n")


if __name__ == "__main__":
    main()
