"""Quickstart: build a program, mark a diverge branch, watch DMP work.

This example constructs — by hand, with the CFG builder DSL — the classic
situation the diverge-merge processor targets: a loop containing one
hard-to-predict branch whose two sides reconverge.  It then runs the same
dynamic trace through the baseline machine and through a diverge-merge
processor, and shows where the cycles went.

Run:  python examples/quickstart.py
"""

import random

from repro.cfg.builder import CFGBuilder
from repro.core import simulate
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.uarch.config import MachineConfig

ITERATIONS = 2000
DATA_BASE = 1000


def build_program():
    """A loop with one data-dependent hammock per iteration."""
    b = CFGBuilder("main")
    b.block("init").movi(1, 0)
    b.block("head").br(Condition.GE, 1, imm=ITERATIONS, taken="exit")
    body = b.block("body")
    body.load(4, 1, offset=DATA_BASE)      # r4 = data[i]
    body.br(Condition.GE, 4, imm=128, taken="big")
    small = b.block("small")               # r4 < 128
    small.addi(20, 4, 1)
    small.shl(21, 20, 0)
    small.add(26, 26, 21)
    small.jmp("merge")
    big = b.block("big")                   # r4 >= 128
    big.sub(22, 4, 0)
    big.xor(23, 22, 26)
    big.add(26, 26, 23)
    merge = b.block("merge")               # control-independent work
    merge.addi(27, 26, 7)
    merge.mul(28, 27, 27)
    b.block("step").addi(1, 1, 1).jmp("head")
    b.block("exit").halt()

    program = Program("quickstart")
    program.add_function(b.build())
    return program.seal()


def main():
    program = build_program()

    # Coin-flip input data: the branch in `body` is genuinely hard.
    memory = Memory()
    rng = random.Random(42)
    memory.fill_array(DATA_BASE, (rng.randrange(256) for _ in range(ITERATIONS)))

    print("Running the program functionally ...")
    trace = Interpreter(program, memory=memory).run()
    print(f"  {trace.instruction_count} instructions, "
          f"{trace.branch_count} branches\n")

    # The compiler side, by hand: mark the hammock branch as a diverge
    # branch with the merge block as its CFM point.
    cfg = program.entry_function
    branch_pc = cfg.block("body").instructions[-1].pc
    cfm_pc = cfg.block("merge").first_pc
    hints = HintTable()
    hints.add(branch_pc, DivergeHint((cfm_pc,)))
    print(f"Marked diverge branch @{branch_pc:#x} with CFM point @{cfm_pc:#x}\n")

    # Warm the data into the L2 first (the paper's runs skip program
    # initialization, so working sets start cache-resident).
    warm = range(DATA_BASE, DATA_BASE + ITERATIONS)
    baseline = simulate(
        program, trace, MachineConfig.baseline(), warm_words=warm
    )
    dmp = simulate(
        program, trace, MachineConfig.dmp(), hints=hints, warm_words=warm
    )

    print(f"{'':24s}{'baseline':>12s}{'diverge-merge':>14s}")
    rows = [
        ("cycles", baseline.cycles, dmp.cycles),
        ("IPC", f"{baseline.ipc:.3f}", f"{dmp.ipc:.3f}"),
        ("mispredictions", baseline.mispredictions, dmp.mispredictions),
        ("pipeline flushes", baseline.pipeline_flushes, dmp.pipeline_flushes),
        ("wrong-path fetches", baseline.fetched_wrong, dmp.fetched_wrong),
        ("dpred episodes", "-", dmp.dpred_entries),
        ("select-uops", "-", dmp.select_uops),
    ]
    for label, b_val, d_val in rows:
        print(f"{label:24s}{str(b_val):>12s}{str(d_val):>14s}")

    improvement = 100.0 * (dmp.ipc / baseline.ipc - 1.0)
    print("\n(This microbenchmark is one hard branch per ten instructions —"
          "\n a best case for dynamic predication; see examples/spec_suite.py"
          "\n for realistic mixes.)")
    print(f"\nDMP speedup: {improvement:+.1f}% "
          f"(flush reduction "
          f"{100 * (1 - dmp.pipeline_flushes / baseline.pipeline_flushes):.0f}%)")
    print("\nExit-case distribution (Table 1 of the paper):")
    for case, count in sorted(dmp.exit_cases.items()):
        print(f"  case {case}: {count}")


if __name__ == "__main__":
    main()
