"""Statistical robustness: the headline conclusions hold across workload
seeds, not just the default one."""

from repro.harness.experiment import run_multi_seed
from repro.uarch.config import MachineConfig

PANEL = ("parser", "vpr", "eon")
SEEDS = (0, 1, 2)


def test_dmp_win_is_seed_stable(benchmark, iterations):
    configs = {
        "base": MachineConfig.baseline(),
        "dmp": MachineConfig.dmp(enhanced=True),
    }
    results = benchmark.pedantic(
        run_multi_seed,
        args=(configs, PANEL, SEEDS),
        kwargs={"iterations": max(iterations // 2, 150)},
        rounds=1,
        iterations=1,
    )
    print()
    for name in PANEL:
        mean, lo, hi = results.improvement_stats(name, "dmp")
        print(f"  {name:8s} DMP {mean:+6.1f}%  [{lo:+6.1f}, {hi:+6.1f}] "
              f"over seeds {SEEDS}")
    # The diverge-heavy benchmarks win under every seed.
    for name in ("parser", "vpr"):
        mean, lo, hi = results.improvement_stats(name, "dmp")
        assert lo > 5.0, name
        assert results.sign_stable(name, "dmp"), name
    # The well-predicted benchmark stays flat under every seed.
    mean, lo, hi = results.improvement_stats("eon", "dmp")
    assert abs(mean) < 3.0
