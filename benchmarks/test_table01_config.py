"""Tables 1 and 2: the exit-case definitions and the baseline machine
configuration (definitional exhibits, rendered for completeness)."""

from repro.harness import figures
from repro.uarch.config import MachineConfig


def test_table1_exit_cases(benchmark):
    result = benchmark.pedantic(figures.table1, rounds=1, iterations=1)
    print()
    print(result.format())
    assert len(result.rows) == 6
    # Only case 6 flushes; only cases 2 and 4 eliminate a misprediction.
    assert result.rows[5][4] == "flush the pipeline"
    assert result.rows[1][4] == "normal exit"


def test_table2_baseline_configuration(benchmark):
    result = benchmark.pedantic(figures.table2, rounds=1, iterations=1)
    print()
    print(result.format())
    values = dict((row[0], row[1]) for row in result.rows)
    # Table 2 of the paper.
    assert values["fetch width"] == 8
    assert values["conditional branches/cycle"] == 3
    assert values["pipeline depth (min mispredict penalty)"] == 30
    assert values["reorder buffer"] == 512
    assert values["direction predictor"] == "perceptron"
    assert values["confidence estimator"] == "jrs"
    assert values["BTB entries"] == 4096
    assert values["return address stack"] == 64
    assert values["memory latency (cycles)"] == 300
    assert MachineConfig().describe().startswith("baseline")
