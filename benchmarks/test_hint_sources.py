"""Ablation: where do the diverge-branch hints come from?

Compares the paper's profile-guided selection against the two alternative
hint sources the paper mentions but does not evaluate:

* static compiler heuristics (post-dominator CFM points, Section 2.3's
  "or compiler heuristics");
* hardware-learned reconvergence points (Collins et al., Section 5.4) —
  a compiler-free diverge-merge processor.
"""

from repro.core.processors import simulate
from repro.harness.experiment import BenchmarkContext
from repro.profiling.dynamic_reconvergence import learn_hints_from_trace
from repro.profiling.static_selection import select_diverge_branches_static
from repro.uarch.config import MachineConfig

PANEL = ("parser", "vpr", "mcf")


def test_hint_source_comparison(benchmark, contexts, iterations):
    def run():
        out = {}
        for name in PANEL:
            context = contexts.setdefault(
                name, BenchmarkContext(name, iterations=iterations)
            )
            base = context.simulate(MachineConfig.baseline())
            warm = sorted(context.workload.memory._words)

            def dmp_with(hints):
                stats = simulate(
                    context.program,
                    context.trace,
                    MachineConfig.dmp(),
                    hints=hints,
                    benchmark=name,
                    warm_words=warm,
                )
                return 100.0 * (stats.ipc / base.ipc - 1.0)

            static_hints = select_diverge_branches_static(
                context.program,
                profile=context.profile,
                min_misprediction_rate=(
                    context.thresholds.min_misprediction_rate
                ),
            )
            learned_hints = learn_hints_from_trace(
                context.trace, warmup_fraction=0.25
            )
            out[name] = {
                "profile": 100.0 * (
                    context.simulate(MachineConfig.dmp()).ipc / base.ipc - 1.0
                ),
                "static": dmp_with(static_hints),
                "learned": dmp_with(learned_hints),
                "n_profile": len(context.diverge_hints),
                "n_static": len(static_hints),
                "n_learned": len(learned_hints),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':10s}{'profile':>10s}{'static':>10s}{'learned':>10s}"
          f"{'  (marked: prof/static/learned)'}")
    for name, r in results.items():
        print(f"{name:10s}{r['profile']:>+9.1f}%{r['static']:>+9.1f}%"
              f"{r['learned']:>+9.1f}%   "
              f"({r['n_profile']}/{r['n_static']}/{r['n_learned']})")

    for name, r in results.items():
        # Profile-guided selection is the paper's design point: it should
        # be at least competitive with both alternatives on DMP-friendly
        # benchmarks.
        assert r["profile"] >= r["static"] - 3.0, name
        # All three sources produce a working machine (no catastrophic
        # regressions from bad hints).
        assert r["static"] > -10.0, name
        assert r["learned"] > -10.0, name
    # The hardware-learned source actually learns something useful
    # somewhere (it has no rate filter, so it marks easy branches too and
    # relies on the confidence estimator to gate them).
    assert any(r["learned"] > 1.0 for r in results.values())
