"""Figure 13: the effect of instruction-window size (a) and pipeline
depth (b) on diverge-merge performance.

The paper's headline trend: DMP's advantage over the baseline GROWS with
window size (6.9% / 9.4% / 10.8% at 128/256/512 entries) and with
pipeline depth (3.3% / 6.8% / 9.4% at 10/20/30 stages).
"""

from repro.harness import figures

# The full sweep is 6 machine points x 3 configs x 15 benchmarks; a 4-
# benchmark panel keeps the bench affordable while covering both story
# extremes (two DMP winners, one hammock-bound, one unaffected).
PANEL = ("parser", "twolf", "mcf", "eon")


def test_fig13_window_and_depth_sweeps(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig13,
        kwargs={
            "contexts": contexts,
            "benchmarks": PANEL,
            "iterations": iterations,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    windows = {
        row[1]: row[2:] for row in result.rows if row[0] == "window"
    }
    depths = {row[1]: row[2:] for row in result.rows if row[0] == "depth"}

    def dmp_gain(row):
        base_ipc, dhp_ipc, dmp_ipc = row
        return dmp_ipc / base_ipc - 1.0

    # (a) the DMP advantage grows with window size...
    assert dmp_gain(windows[512]) >= dmp_gain(windows[128]) - 0.02
    # (b) ...and with pipeline depth (bigger flush penalty to save).
    assert dmp_gain(depths[30]) > dmp_gain(depths[10])
    # DMP >= DHP at every machine point (DHP is a strict subset).
    for row in list(windows.values()) + list(depths.values()):
        base_ipc, dhp_ipc, dmp_ipc = row
        assert dmp_ipc >= dhp_ipc * 0.98
    # Absolute IPCs behave: bigger windows and shallower pipes are faster.
    assert windows[512][0] >= windows[128][0]
    assert depths[10][0] >= depths[30][0]
