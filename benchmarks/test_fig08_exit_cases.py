"""Figure 8: distribution of dynamic-predication exit cases, basic DMP."""

from repro.harness import figures


def test_fig8_exit_case_distribution(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig8,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    mean = rows["amean"]
    case1, case2, case3, case4, case5, case6 = mean

    # Paper shape: cases 1 and 2 (both paths reach the CFM point) are the
    # common cases because CFM points come from frequently executed paths.
    assert case1 + case2 > 50.0
    # Case 1 (correct prediction, pure overhead) is the single most
    # frequent exit with a realistic confidence estimator.
    assert case1 >= max(case2, case3, case4, case5, case6)
    # Every distribution sums to 100% (benchmarks without dpred entries
    # report all-zero rows).
    for name, shares in rows.items():
        if name == "amean":
            continue
        total = sum(shares)
        assert total == 0.0 or abs(total - 100.0) < 0.2, name
