"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's own exhibits:

* confidence-estimator quality (the paper: "better confidence estimators
  are worthy of research since they critically affect the benefit");
* the footnote-7 GHR exit-policy design choice;
* dynamic predication under weaker direction predictors.
"""

from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig

PANEL = ("parser", "vpr")


def _context(contexts, iterations, name):
    key = name
    if key not in contexts:
        contexts[key] = BenchmarkContext(name, iterations=iterations)
    return contexts[key]


def test_ablation_confidence_quality(benchmark, contexts, iterations):
    """Oracle > JRS > predicate-always, and the JRS-vs-oracle gap is the
    paper's 'critically affects performance' conclusion."""

    def run():
        out = {}
        for name in PANEL:
            context = _context(contexts, iterations, name)
            base = context.simulate(MachineConfig.baseline())
            out[name] = {
                "jrs": context.simulate(MachineConfig.dmp()).ipc / base.ipc,
                "oracle": context.simulate(
                    MachineConfig.dmp(confidence_kind="perfect")
                ).ipc / base.ipc,
                "always": context.simulate(
                    MachineConfig.dmp(confidence_kind="never")
                ).ipc / base.ipc,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name}: oracle {r['oracle']:.3f}x  jrs {r['jrs']:.3f}x  "
              f"predicate-always {r['always']:.3f}x")
        assert r["oracle"] >= r["jrs"] - 0.01
        assert r["oracle"] > 1.0


def test_ablation_ghr_exit_policy(benchmark, contexts, iterations):
    """Footnote 7's design choice: which path's history survives a normal
    dpred exit.  Both run; the repository default must not be worse."""

    def run():
        out = {}
        for name in PANEL:
            context = _context(contexts, iterations, name)
            out[name] = {
                policy: context.simulate(
                    MachineConfig.dmp(dpred_ghr_policy=policy)
                ).ipc
                for policy in ("predicted", "alternate")
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name}: predicted {r['predicted']:.3f}  "
              f"alternate {r['alternate']:.3f}")
        assert r["predicted"] >= r["alternate"] * 0.97


def test_ablation_predictor_strength(benchmark, contexts, iterations):
    """DMP's *relative* gain is largest under weaker predictors (more
    mispredictions to save), while absolute IPC favors the perceptron."""

    def run():
        context = _context(contexts, iterations, "parser")
        out = {}
        for kind in ("perceptron", "gshare", "bimodal"):
            base = context.simulate(MachineConfig.baseline(predictor_kind=kind))
            dmp = context.simulate(MachineConfig.dmp(predictor_kind=kind))
            out[kind] = (base.ipc, dmp.ipc / base.ipc - 1.0)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for kind, (base_ipc, gain) in results.items():
        print(f"  {kind:12s} base IPC {base_ipc:.3f}  DMP {gain:+.1%}")
    assert results["perceptron"][0] >= results["bimodal"][0]
    assert results["bimodal"][1] > 0.0  # DMP still helps a weak predictor
