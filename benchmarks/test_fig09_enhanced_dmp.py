"""Figure 9: % IPC improvement of the enhanced diverge-merge processor
with the Section 2.7 mechanisms added cumulatively."""

from repro.harness import figures


def test_fig9_enhanced_dmp(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig9,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    labels = [h.lstrip("%") for h in result.headers[1:]]

    def mean(label):
        return rows["amean"][labels.index(label)]

    basic = mean("basic-diverge")
    full = mean("enhanced-mcfm-eexit-mdb")

    # Paper headline: the fully enhanced DMP averages +10.8% over base.
    # Our substrate reproduces the magnitude band (see EXPERIMENTS.md).
    assert full > 5.0
    # Enhancements never lose much on average and the full stack is at
    # least as good as basic.
    assert full >= basic - 1.0
    # Multiple CFM points help the benchmarks built around alternative
    # merge points (paper: bzip2, twolf, fma3d).
    for name in ("bzip2", "twolf"):
        row = rows[name]
        assert row[labels.index("enhanced-mcfm")] >= (
            row[labels.index("basic-diverge")] - 0.5
        ), name
    # The big four stay big under the full enhancement stack.
    for name in ("parser", "twolf", "vpr"):
        assert rows[name][labels.index("enhanced-mcfm-eexit-mdb")] > 10.0
