"""Figure 6: classification of mispredicted branches into simple-hammock
diverge / complex diverge / other."""

from repro.harness import figures


def test_fig6_misprediction_classification(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig6,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    mean_hammock, mean_complex, mean_other = rows["amean"]

    # Paper shape: diverge branches (simple + complex) cover the majority
    # of mispredictions on average; simple hammocks alone are a small
    # slice (~9% in the paper); complex diverge dominates simple.
    assert mean_complex > mean_hammock

    # mcf is the hammock-heavy benchmark (44% in the paper).
    mcf_hammock, mcf_complex, mcf_other = rows["mcf"]
    assert mcf_hammock > mean_hammock

    # gcc's mispredictions are dominated by 'other complex' branches the
    # compiler cannot find CFM points for.
    gcc_hammock, gcc_complex, gcc_other = rows["gcc"]
    assert gcc_other > gcc_complex + gcc_hammock

    # The complex-diverge-heavy benchmarks.
    for name in ("parser", "twolf", "vpr", "bzip2"):
        hammock, complex_div, other = rows[name]
        assert complex_div > 0.5, name
