"""Section 5 related-mechanism comparison: DMP vs DHP vs wish branches vs
selective dual-path, all under the same machine and confidence estimator.

The paper compares DHP and dual-path quantitatively (Figs 7/9, Sec 5.3)
and wish branches qualitatively (Sec 5.2: DMP predicates call-containing
and multi-merge regions wish branches cannot, and fetches only two paths).
This bench makes the wish comparison quantitative on the same workloads.
"""

from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig

PANEL = ("parser", "mcf", "vpr", "eon")


def test_related_mechanism_comparison(benchmark, contexts, iterations):
    def run():
        out = {}
        for name in PANEL:
            context = contexts.setdefault(
                name, BenchmarkContext(name, iterations=iterations)
            )
            base = context.simulate(MachineConfig.baseline())

            def gain(config):
                return 100.0 * (context.simulate(config).ipc / base.ipc - 1)

            out[name] = {
                "dhp": gain(MachineConfig.dhp()),
                "wish": gain(MachineConfig.wish()),
                "dualpath": gain(MachineConfig.dualpath()),
                "dmp": gain(MachineConfig.dmp(enhanced=True)),
                "n_wish": len(context.wish_hints),
                "n_dmp": len(context.diverge_hints),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':10s}{'DHP':>9s}{'wish':>9s}{'dual':>9s}{'DMP':>9s}"
          f"   (marked: wish/dmp)")
    for name, r in results.items():
        print(f"{name:10s}{r['dhp']:>+8.1f}%{r['wish']:>+8.1f}%"
              f"{r['dualpath']:>+8.1f}%{r['dmp']:>+8.1f}%   "
              f"({r['n_wish']}/{r['n_dmp']})")

    means = {
        key: sum(r[key] for r in results.values()) / len(results)
        for key in ("dhp", "wish", "dualpath", "dmp")
    }
    # The paper's quantitative orderings: DMP beats DHP and dual-path.
    assert means["dmp"] >= means["dhp"]
    assert means["dmp"] >= means["dualpath"]
    # The wish comparison (Section 5.2) is about COVERAGE, not raw wins:
    # wish branches need a fully-predicated ISA and can only if-convert
    # call-free single-merge regions, so their marked set is a subset of
    # DMP's, and on the complex-diverge benchmark (parser: nested regions
    # with calls and early returns) DMP's extra coverage wins.
    assert results["parser"]["n_wish"] <= results["parser"]["n_dmp"]
    assert results["parser"]["dmp"] > results["parser"]["wish"]
    # On the pure-hammock benchmark the two mechanisms predicate the same
    # branches and land in the same band.
    assert abs(results["mcf"]["dmp"] - results["mcf"]["wish"]) < 10.0
