"""Figure 1: percentage of fetched instructions on the wrong path,
split into control-dependent and control-independent."""

from repro.harness import figures


def test_fig1_wrong_path_breakdown(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig1,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    mean_cd, mean_ci, mean_total = rows["amean"]

    # Paper shape: a large fraction of all fetched instructions are
    # wrong-path (52% in the paper), and the majority of the wrong path is
    # control-independent (63% in the paper).
    assert mean_total > 15.0
    assert mean_ci > mean_cd

    # The misprediction-bound benchmarks waste far more fetch than the
    # well-predicted ones.
    assert rows["parser"][2] > rows["perlbmk"][2]
    assert rows["vpr"][2] > rows["eon"][2]
