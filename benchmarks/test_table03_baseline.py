"""Table 3: baseline characteristics of the 15 benchmarks."""

from repro.harness import figures
from repro.workloads.suite import BENCHMARK_NAMES


def test_table3_baseline_characteristics(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.table3,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    assert set(rows) == set(BENCHMARK_NAMES)

    ipc = {name: row[0] for name, row in rows.items()}
    mpki = {name: row[4] for name, row in rows.items()}

    # Paper shape (Table 3): the misprediction-bound benchmarks (bzip2,
    # parser, twolf, vpr, gzip, mcf) sit at the top of the MPKI ranking,
    # the well-predicted ones (eon, perlbmk, vortex, ammp) at the bottom.
    hard = {"bzip2", "parser", "twolf", "vpr"}
    easy = {"eon", "perlbmk", "vortex", "ammp"}
    worst_hard = min(mpki[name] for name in hard)
    best_easy = max(mpki[name] for name in easy)
    assert worst_hard > best_easy

    # IPC ordering: well-predicted code runs faster.
    assert ipc["eon"] > ipc["vpr"]
    assert ipc["vortex"] > ipc["parser"]
    # All benchmarks execute a nontrivial instruction stream.
    for name in BENCHMARK_NAMES:
        assert rows[name][1] > 1000  # instructions
        assert rows[name][2] > 100   # branches
