"""Ablation: diverge loop branches (the Section 2.7.4 extension).

The paper's mainline machine skips loop branches; this bench measures
what wish-loop-style iteration predication adds on the suite's
data-dependent inner loops.
"""

from repro.core.processors import simulate
from repro.harness.experiment import BenchmarkContext
from repro.profiling.loop_selection import (
    merge_hint_tables,
    select_diverge_loop_branches,
)
from repro.uarch.config import MachineConfig

#: Benchmarks with data-dependent inner loops in their recipes.
PANEL = ("parser", "gzip", "crafty")


def test_loop_predication_extension(benchmark, contexts, iterations):
    def run():
        out = {}
        for name in PANEL:
            context = contexts.setdefault(
                name, BenchmarkContext(name, iterations=iterations)
            )
            base = context.simulate(MachineConfig.baseline())
            mainline = context.simulate(MachineConfig.dmp(enhanced=True))
            loop_hints = select_diverge_loop_branches(
                context.program, context.trace, context.profile,
                context.thresholds,
            )
            combined = merge_hint_tables(context.diverge_hints, loop_hints)
            with_loops = simulate(
                context.program,
                context.trace,
                MachineConfig.dmp(enhanced=True, loop_predication=True),
                hints=combined,
                benchmark=name,
                warm_words=sorted(context.workload.memory._words),
            )
            out[name] = {
                "mainline": 100.0 * (mainline.ipc / base.ipc - 1),
                "with_loops": 100.0 * (with_loops.ipc / base.ipc - 1),
                "loop_branches": len(loop_hints),
                "saves": with_loops.loop_iteration_saves,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':10s}{'mainline':>10s}{'with-loops':>12s}"
          f"{'loop-brs':>10s}{'saves':>8s}")
    for name, r in results.items():
        print(f"{name:10s}{r['mainline']:>+9.1f}%{r['with_loops']:>+11.1f}%"
              f"{r['loop_branches']:>10d}{r['saves']:>8d}")

    # The extension engages somewhere and absorbs exit mispredictions.
    assert any(r["loop_branches"] > 0 for r in results.values())
    assert any(r["saves"] > 0 for r in results.values())
    # And it never costs much relative to the mainline machine.
    for name, r in results.items():
        assert r["with_loops"] >= r["mainline"] - 3.0, name
