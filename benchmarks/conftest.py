"""Shared fixtures for the figure/table regeneration benchmarks.

Benchmark contexts (traces, profiles, hint tables, memoized simulations)
are session-scoped so that regenerating all exhibits costs each distinct
(benchmark, machine-configuration) simulation exactly once.

Scale with ``REPRO_BENCH_ITERATIONS`` (default 400: a few minutes for the
whole set; the paper-vs-measured numbers in EXPERIMENTS.md were produced
at 1500).
"""

import os

import pytest

ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "400"))


@pytest.fixture(scope="session")
def contexts():
    """Benchmark-name -> BenchmarkContext, shared by every exhibit."""
    return {}


@pytest.fixture(scope="session")
def iterations():
    return ITERATIONS
