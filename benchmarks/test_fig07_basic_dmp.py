"""Figure 7: % IPC improvement of DHP, basic DMP (JRS and perfect
confidence), selective dual-path and perfect branch prediction over the
baseline — plus the Section 5.3 dual-path comparison."""

from repro.harness import figures


def test_fig7_basic_dmp_study(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig7,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    labels = [h.lstrip("%") for h in result.headers[1:]]

    def mean(label):
        return rows["amean"][labels.index(label)]

    # Paper shapes (Fig 7 + Section 5.3):
    # 1. DMP beats DHP on average (complex control flow matters).
    assert mean("diverge-jrs") > mean("DHP-jrs")
    # 2. Perfect confidence beats realistic JRS for both mechanisms, and
    #    the gap is much larger for DMP (the paper's 19% vs 5%).
    assert mean("diverge-perf-conf") > mean("diverge-jrs")
    assert mean("DHP-perf-conf") > mean("DHP-jrs")
    dmp_gap = mean("diverge-perf-conf") - mean("diverge-jrs")
    dhp_gap = mean("DHP-perf-conf") - mean("DHP-jrs")
    assert dmp_gap > dhp_gap
    # 3. Perfect branch prediction towers over everything (48% avg paper).
    assert mean("perfect-cbp") > mean("diverge-perf-conf")
    assert mean("perfect-cbp") > 25.0
    # 4. Selective dual-path is a modest average win (2.6% in the paper),
    #    well below DMP.
    assert mean("dualpath") > 0.0
    assert mean("dualpath") < mean("diverge-jrs")

    # Per-benchmark shapes: the benchmarks with the highest diverge-branch
    # misprediction share benefit most (paper: bzip2, parser, twolf, vpr).
    for name in ("parser", "twolf", "vpr"):
        assert rows[name][labels.index("diverge-jrs")] > 10.0, name
    # mcf is hammock-dominated: DHP ~= DMP there.
    mcf = rows["mcf"]
    assert abs(
        mcf[labels.index("diverge-jrs")] - mcf[labels.index("DHP-jrs")]
    ) < 5.0
    # gcc shows no DMP potential (complex control flow without CFM points).
    assert rows["gcc"][labels.index("diverge-jrs")] < 5.0
