"""Figure 11: % reduction in pipeline flushes on the enhanced DMP."""

from repro.harness import figures


def test_fig11_flush_reduction(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig11,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    mean_reduction = rows["amean"][0]

    # Paper: 31% of pipeline flushes eliminated on average; over 40% on
    # the diverge-heavy benchmarks.
    assert mean_reduction > 15.0
    for name in ("parser", "twolf", "vpr", "bzip2"):
        assert rows[name][0] > 30.0, name
    # No benchmark's flushes increase materially.
    for name, (reduction,) in rows.items():
        assert reduction > -10.0, name
