"""Figure 12: fetched and executed instruction counts, baseline vs. the
enhanced diverge-merge processor (including the inserted uops)."""

from repro.harness import figures


def test_fig12_instruction_counts(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig12,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    rows = result.by_benchmark()
    fetch_deltas = []
    exec_deltas = []
    for name, row in rows.items():
        fetch_base, fetch_dmp, exec_base, exec_dmp, extra, selects = row
        total_dmp_exec = exec_dmp + extra + selects
        if fetch_base:
            fetch_deltas.append(fetch_dmp / fetch_base - 1.0)
        if exec_base:
            exec_deltas.append(total_dmp_exec / exec_base - 1.0)
        # DMP never *retires* less architectural work; executed (incl.
        # predicated-FALSE work and uops) can only grow.
        assert total_dmp_exec >= exec_base, name

    mean_fetch = sum(fetch_deltas) / len(fetch_deltas)
    mean_exec = sum(exec_deltas) / len(exec_deltas)
    print(f"\nmean fetched delta {mean_fetch:+.1%}   "
          f"mean executed delta {mean_exec:+.1%}")

    # Paper shape: total fetched instructions DROP (-18% in the paper,
    # control-independent work is no longer flushed and refetched), while
    # executed instructions RISE (+9%: predicated-FALSE paths + uops).
    assert mean_fetch < 0.0
    assert mean_exec > 0.0
    assert mean_exec < 0.5  # the overhead stays moderate

    # The diverge-heavy benchmarks show the biggest fetch savings.
    parser = rows["parser"]
    assert parser[1] < parser[0]
