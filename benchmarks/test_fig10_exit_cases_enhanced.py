"""Figure 10: exit-case distribution under the enhanced diverge-merge
processor (compare against Figure 8's basic distribution)."""

from repro.harness import figures


def test_fig10_exit_cases_enhanced(benchmark, contexts, iterations):
    result = benchmark.pedantic(
        figures.fig10,
        kwargs={"contexts": contexts, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    basic = figures.fig8(contexts=contexts, iterations=iterations)
    enhanced_rows = result.by_benchmark()
    basic_rows = basic.by_benchmark()

    # Paper shape: the enhancements keep normal exits dominant...
    case1, case2, case3, case4, case5, case6 = enhanced_rows["amean"]
    assert case1 + case2 > 50.0
    # ...and the early-exit mechanism keeps case 3's share from growing
    # (the paper reduces it from 10% to 3% on average).
    assert case3 <= basic_rows["amean"][2] + 2.0
    # Multiple CFM points raise the chance of reaching *some* CFM point:
    # cases 5+6 (predicted path never merges) do not increase on average.
    basic_no_merge = basic_rows["amean"][4] + basic_rows["amean"][5]
    enhanced_no_merge = case5 + case6
    assert enhanced_no_merge <= basic_no_merge + 2.0
