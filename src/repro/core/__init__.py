"""The diverge-merge processor core (the paper's contribution).

* :mod:`repro.core.modes` — the dynamic-predication exit cases (Table 1)
  and path outcomes;
* :mod:`repro.core.cfm` — the CFM-point CAM (basic single-entry and the
  Section 2.7.1 multiple-CFM variant);
* :mod:`repro.core.dpred` — the dynamic-predication engine: a timing
  simulator subclass implementing the Section 2.3–2.7 fetch/rename state
  machine for both DMP and DHP;
* :mod:`repro.core.mergepoint` — the dynamic merge-point predictor
  behind the hint-free ``"mpp"`` mode (learned CFM points);
* :mod:`repro.core.processors` — the user-facing facades
  (:func:`simulate`, plus one constructor per machine flavour).
"""

from repro.core.modes import ExitCase, PathOutcome
from repro.core.cfm import CfmCam
from repro.core.dpred import PredicationAwareSimulator
from repro.core.mergepoint import LearnedHintTable, MergePointPredictor
from repro.core.processors import (
    simulate,
    baseline_processor,
    diverge_merge_processor,
    dynamic_hammock_processor,
    dual_path_processor,
    merge_point_processor,
    wish_branch_processor,
)

__all__ = [
    "ExitCase",
    "PathOutcome",
    "CfmCam",
    "LearnedHintTable",
    "MergePointPredictor",
    "PredicationAwareSimulator",
    "simulate",
    "baseline_processor",
    "diverge_merge_processor",
    "dynamic_hammock_processor",
    "dual_path_processor",
    "merge_point_processor",
    "wish_branch_processor",
]
