"""The dynamic-predication engine (Sections 2.2–2.7 of the paper).

:class:`PredicationAwareSimulator` extends the baseline timing model with
the diverge-merge fetch/rename state machine:

* on fetching a low-confidence diverge branch, enter dynamic-predication
  mode: insert ``enter.pred.path``, checkpoint the RAT (CP1) and clear the
  M bits;
* fetch the *predicted path*, guided by the branch predictor, until the
  next fetch address hits a CFM point (the CFM CAM locks onto the first
  one seen);
* checkpoint the RAT again (CP2), restore CP1, insert
  ``enter.alternate.path``, and fetch the *alternate path* to the same CFM
  point;
* insert ``exit.pred`` plus one select-uop per architectural register
  whose mapping differs between CP2 and the active RAT (M-bit OR), merging
  the data flow of the two paths;
* resolve the episode into one of Table 1's six exit cases when a path
  fails to reach the CFM point before the diverge branch resolves.

The enhanced mechanisms (Section 2.7) are config flags: multiple CFM
points, early exit from the alternate path, and re-entering
dynamic-predication mode for a newer low-confidence diverge branch found
on the predicted path.

Both DMP and DHP run on this engine — DHP is simply driven by a hint table
restricted to simple hammocks (see :mod:`repro.profiling.hammock`).

Trace-driven specifics: the path that matches the branch's *actual*
direction replays the functional trace (predicate-TRUE); the other path is
a predictor-guided static-CFG walk (predicate-FALSE).  Nested branch
mispredictions are detectable only on trace-backed paths; wrong-path
register values are unknowable, so false-path loads are charged an L1 hit
and false-path stores do not enter the store buffer (their predicate would
drop them anyway).  These substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.confidence.perfect import PerfectConfidenceEstimator
from repro.branch.perfect import PerfectPredictor
from repro.core.cfm import CfmCam
from repro.core.mergepoint import LearnedHintTable, MergePointPredictor
from repro.core.modes import ExitCase, PathOutcome
from repro.isa.instructions import Opcode
from repro.uarch.frontend import StaticWalker, TraceCursor
from repro.uarch.plan import (
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_NONE,
)
from repro.uarch.timing import BranchContext, TimingSimulator


class PathResult:
    """Outcome of fetching one dynamically predicated path."""

    __slots__ = (
        "outcome",
        "instructions",
        "cfm_pc",
        "trace_position",
        "stopped_position",
        "new_context",
        "new_hint",
        "new_position",
    )

    def __init__(
        self,
        outcome: PathOutcome,
        instructions: int = 0,
        cfm_pc: Optional[int] = None,
        trace_position: Optional[int] = None,
        stopped_position: Optional[int] = None,
        new_context: Optional[BranchContext] = None,
        new_hint=None,
        new_position: Optional[int] = None,
    ) -> None:
        self.outcome = outcome
        self.instructions = instructions
        self.cfm_pc = cfm_pc
        self.trace_position = trace_position
        self.stopped_position = stopped_position
        self.new_context = new_context
        self.new_hint = new_hint
        self.new_position = new_position


class _EpisodeEnd:
    """Where the main fetch loop resumes after a dpred episode."""

    __slots__ = ("continuation", "restart")

    def __init__(self, continuation=None, restart=None):
        self.continuation = continuation
        self.restart = restart


class PredicationAwareSimulator(TimingSimulator):
    """Timing simulator with the DMP/DHP dynamic-predication front end."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._predicate_counter = 0
        # Hint-free DMP (mode "mpp"): replace the (empty) compiler hint
        # table with a learned one over the dynamic merge-point
        # predictor.  Every hint lookup below goes through the same
        # ``self.hints`` attribute either way.
        self._merge_predictor: Optional[MergePointPredictor] = None
        if self.config.mode == "mpp":
            self._merge_predictor = MergePointPredictor.from_config(
                self.config
            )
            self.hints = LearnedHintTable(self._merge_predictor)
        # Same engine dispatch as the base class: the predicate-FALSE
        # static fetch loop and the two per-path episode loops have
        # block-plan implementations too.
        if self.config.engine == "fast":
            self._fetch_static_dpred_block = (
                self._fetch_static_dpred_block_fast
            )
            self._fetch_dpred_trace_path = self._fetch_dpred_trace_path_fast
            self._fetch_dpred_static_path = (
                self._fetch_dpred_static_path_fast
            )

    # ------------------------------------------------------------------
    # Entry hook
    # ------------------------------------------------------------------

    def _usable_hint(self, pc: int):
        """Hint lookup with the deterministic no-episode fallback.

        A degenerate hint — an empty or self-referential CFM set, which
        the learned path (and a corrupted table) can produce — could
        never merge: opening an episode with it would burn checkpoints
        and uops for a guaranteed case-5/6 exit.  Such hints are treated
        as "no hint" so the branch is handled as a normal predicted
        branch.  Every lookup site in the episode machinery (entry,
        nested trace branches, static-path diverge watching) routes
        through here, and the method is shared by both engines, so the
        fallback is mirrored by construction.
        """
        hint = self.hints.get(pc)
        if hint is None:
            return None
        if not hint.cfm_pcs or pc in hint.cfm_pcs:
            return None
        return hint

    def _maybe_enter_dpred(self, cursor: TraceCursor, context) -> bool:
        if self.config.mode not in ("dmp", "dhp", "wish", "mpp"):
            return False
        if self._merge_predictor is not None:
            # Catch-up observation: learn from every trace record
            # retired since the previous diverge-branch lookup.  Both
            # engines reach this hook at the same cursor positions in
            # the same order, so the learned table is bit-identical at
            # every lookup no matter which engine runs.
            self._merge_predictor.observe_to(
                self.trace.records, cursor.index
            )
        hint = self._usable_hint(context.instr.pc)
        if hint is None:
            return False
        if hint.is_loop and not self.config.loop_predication:
            return False  # diverge loop branches are an opt-in extension
        if isinstance(self.confidence, PerfectConfidenceEstimator):
            self.confidence.set_oracle(not context.mispredicted)
        confident = self.confidence.is_confident(
            context.instr.pc, context.history_snapshot
        )
        if self.tracer is not None:
            self.tracer.note_confidence(
                context.instr.pc, confident, "diverge"
            )
        if confident:
            return False
        if self._merge_predictor is not None:
            self.stats.mpp_predictions += 1
            if self.tracer is not None:
                self.tracer.note_merge(
                    "predict", context.instr.pc, cfm=hint.primary_cfm
                )
        if self.config.mode == "wish":
            self._run_wish_episode(cursor, context, hint)
        elif hint.is_loop:
            self._run_loop_episode(cursor, context, hint)
        else:
            self._run_dpred_episode(cursor, context, hint)
        return True

    def _run_dpred_episode(self, cursor, context, hint) -> None:
        diverge_pos = cursor.index
        while True:
            end = self._dpred_once(diverge_pos, context, hint, depth=0)
            if end.restart is not None:
                self.stats.dpred_restarts += 1
                if self.watchdog is not None:
                    self.watchdog.check(
                        self, where="dpred-restart", pc=context.instr.pc
                    )
                diverge_pos, context, hint = end.restart
                continue
            cursor.restore(end.continuation)
            return

    # ------------------------------------------------------------------
    # One dynamic-predication episode
    # ------------------------------------------------------------------


    def _record_exit(self, case) -> None:
        """Record a Table 1 exit case, charging it to the innermost open
        traced episode when tracing is on."""
        self.stats.record_exit_case(case)
        if self.tracer is not None:
            self.tracer.note_exit_case(case)

    def _train_diverge_branch(self, context) -> None:
        """Train the tables with a dynamically predicated diverge-branch
        instance.  Under the selective-update policy (Section 2.7.4,
        after Klauser et al.) the direction predictor's counters are NOT
        updated for predicated instances — removing their destructive
        interference — while the confidence estimator still learns."""
        if self.config.selective_predictor_update:
            self.confidence.update(
                context.instr.pc,
                context.history_snapshot,
                was_correct=not context.mispredicted,
            )
        else:
            self._train_branch(context)

    def _alloc_predicates(self) -> Tuple[int, int]:
        p1 = self._predicate_counter
        self._predicate_counter += 2
        return p1, p1 + 1

    def _dpred_once(
        self, diverge_pos: int, context, hint, depth: int = 0
    ) -> _EpisodeEnd:
        """One episode, wrapped with the robustness instrumentation: the
        oracle tracks episode entry/exit balance (predicate state must be
        released) and episodes that end in a Section 2.7.3 restart (which
        record no Table 1 exit case)."""
        self._dpred_depth += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.episode_enter(
                "dpred",
                pc=context.instr.pc,
                pos=diverge_pos,
                depth=self._dpred_depth,
                cycle=self.cycle,
                mispredicted=context.mispredicted,
            )
        if self.oracle is not None:
            self.oracle.note_dpred_enter()
        try:
            end = self._dpred_once_impl(diverge_pos, context, hint, depth)
        finally:
            self._dpred_depth -= 1
            if self.oracle is not None:
                self.oracle.note_dpred_exit()
        if end.restart is not None and self.oracle is not None:
            self.oracle.note_restarted_episode()
        if tracer is not None:
            # Mirrors the oracle's accounting: a propagated inner restart
            # flags BOTH the inner and the outer episode as restarted.
            tracer.episode_exit(
                restart=end.restart is not None, cycle=self.cycle
            )
        return end

    def _dpred_once_impl(
        self, diverge_pos: int, context, hint, depth: int = 0
    ) -> _EpisodeEnd:
        stats = self.stats
        config = self.config
        stats.dpred_entries += 1
        self._train_diverge_branch(context)

        mispredicted = context.mispredicted
        resolution = context.resolution
        pred_taken = context.prediction.taken
        record = context.record
        block = record.block
        function = record.function
        ghr1 = context.history_snapshot

        cfm_pcs = hint.cfm_pcs if config.multiple_cfm else (hint.primary_cfm,)
        cam = CfmCam(cfm_pcs)
        p1, p2 = self._alloc_predicates()
        # Section 2.7.3/2.7.4: re-enter dynamic predication for a newer
        # low-confidence diverge branch, but only once the current path has
        # run past the distance at which the compiler expected the CFM
        # point -- the signal that this episode is unlikely to merge.  (The
        # paper observes CFM reach is unlikely exactly when a new diverge
        # branch is encountered, and suggests using additional information
        # to choose between exiting and continuing.)
        expected = (
            hint.early_exit_threshold
            if hint.early_exit_threshold is not None
            else config.early_exit_default_threshold
        )
        restart_after = max(expected // 2, 4)

        # enter.pred.path: defines p1 from the branch condition + direction.
        stats.extra_uops += 1
        self._dispatch_uop(0)
        cp1_rat = self.rat.checkpoint()
        cp1_ready = list(self.reg_ready)
        self.rat.clear_modified()

        # --- predicted path -------------------------------------------------
        self.predictor.restore(ghr1)
        self.predictor.spec_update(pred_taken)
        if pred_taken:
            self._taken_redirect(
                context.instr.pc, self._branch_taken_pc(block, context.instr)
            )
        if mispredicted:
            start = self._successor_block(function, block, pred_taken)
            pred_result = self._fetch_dpred_static_path(
                function,
                start,
                cam,
                resolution,
                limit=config.dpred_path_limit,
                watch_diverge=config.multiple_diverge,
                restart_after=restart_after,
            )
        else:
            start_pos = diverge_pos + 1
            while True:
                pred_result = self._fetch_dpred_trace_path(
                    start_pos,
                    cam,
                    resolution,
                    predicate_id=p1,
                    limit=config.dpred_path_limit,
                    watch_diverge=config.multiple_diverge,
                    restart_after=restart_after,
                )
                if (
                    pred_result.outcome == PathOutcome.NEW_DIVERGE
                    and config.multiple_diverge_policy == "nested"
                    and depth < config.max_nested_diverge
                ):
                    # Section 2.7.4's nested alternative: predicate the
                    # newer diverge branch too (its predicates AND with
                    # ours), then resume our predicted path where the
                    # inner episode left off.
                    stats.nested_episodes += 1
                    inner = self._dpred_once(
                        pred_result.new_position,
                        pred_result.new_context,
                        pred_result.new_hint,
                        depth=depth + 1,
                    )
                    if inner.restart is not None:
                        return inner
                    start_pos = inner.continuation
                    continue
                break

        if self.tracer is not None:
            self.tracer.note_path(
                "predicted",
                pred_result.outcome.value,
                pred_result.instructions,
                cfm_pc=pred_result.cfm_pc,
            )

        if pred_result.outcome == PathOutcome.NEW_DIVERGE:
            return self._handle_new_diverge(
                diverge_pos, context, mispredicted, resolution,
                ghr1, cp1_rat, cp1_ready, pred_result,
            )

        if pred_result.outcome != PathOutcome.REACHED_CFM:
            return self._exit_without_predicted_cfm(
                diverge_pos, context, mispredicted, resolution,
                ghr1, cp1_rat, cp1_ready, pred_result,
            )

        # --- alternate path -------------------------------------------------
        predicted_ghr = self.predictor.snapshot()
        cp2_rat = self.rat.checkpoint()
        cp2_ready = list(self.reg_ready)
        self.rat.restore(cp1_rat)
        self.reg_ready = list(cp1_ready)
        stats.extra_uops += 1  # enter.alternate.path (defines p2 = !p1)
        self._dispatch_uop(0)
        self.predictor.restore(ghr1)
        self.predictor.spec_update(not pred_taken)
        # The redirect back to the diverge branch's other target shares the
        # fetch boundary that the predicted path's last taken transfer (or
        # the walker's first step) already created — no extra bubble.

        if config.early_exit:
            alt_limit = (
                hint.early_exit_threshold
                if hint.early_exit_threshold is not None
                else config.early_exit_default_threshold
            )
        else:
            alt_limit = config.dpred_path_limit

        if mispredicted:
            alt_result = self._fetch_dpred_trace_path(
                diverge_pos + 1,
                cam,
                resolution,
                predicate_id=p2,
                limit=alt_limit,
                watch_diverge=False,
            )
        else:
            start = self._successor_block(function, block, not pred_taken)
            alt_result = self._fetch_dpred_static_path(
                function,
                start,
                cam,
                resolution,
                limit=alt_limit,
                watch_diverge=False,
            )

        if self.tracer is not None:
            self.tracer.note_path(
                "alternate",
                alt_result.outcome.value,
                alt_result.instructions,
                cfm_pc=alt_result.cfm_pc,
            )

        return self._exit_after_alternate(
            diverge_pos, context, mispredicted, resolution, ghr1,
            cp1_rat, cp1_ready, cp2_rat, cp2_ready,
            pred_result, alt_result, predicted_ghr,
        )

    # ------------------------------------------------------------------
    # Exit handling
    # ------------------------------------------------------------------

    def _note_merge_outcome(self, pc: int, outcome, flushed: bool) -> None:
        """Train the merge-point predictor with an episode's outcome.

        ``REACHED_CFM`` reinforces the learned merge point.  A path that
        provably never reached it (``EXHAUSTED`` ran off the function,
        ``LIMIT`` burnt the whole budget) decays the entry's confidence;
        hitting zero retrains it.  ``RESOLVED`` is neutral — the episode
        was truncated by timing (the branch resolved first), which says
        nothing about whether the merge point was right.  ``flushed``
        marks the mispredicted-merge recovery path: the wrong-path work
        was pipeline-flushed AND the table decays, so the next instance
        of the branch is handled by plain prediction while the entry
        re-learns.
        """
        if outcome == PathOutcome.RESOLVED:
            return
        stats = self.stats
        if outcome == PathOutcome.REACHED_CFM:
            stats.mpp_merge_hits += 1
            self._merge_predictor.feedback(pc, hit=True)
            if self.tracer is not None:
                self.tracer.note_merge("hit", pc)
            return
        stats.mpp_merge_misses += 1
        if flushed:
            stats.mpp_recoveries += 1
        if self.tracer is not None:
            self.tracer.note_merge("recovery" if flushed else "miss", pc)
        if self._merge_predictor.feedback(pc, hit=False):
            stats.mpp_retrains += 1
            if self.tracer is not None:
                self.tracer.note_merge("retrain", pc)

    def _flush_diverge_branch(
        self, diverge_pos, context, ghr1, cp1_rat, cp1_ready
    ) -> _EpisodeEnd:
        """The diverge branch was mispredicted and dynamic predication did
        not save it: flush as a normal misprediction (restore pre-branch
        state, resume on the actual path after resolution)."""
        self.stats.mispredictions += 1
        self.stats.pipeline_flushes += 1
        if self.tracer is not None:
            self.tracer.note_flush(
                "dpred-exit", self.cycle, pc=context.instr.pc
            )
        self.rat.restore(cp1_rat)
        self.reg_ready = list(cp1_ready)
        self._advance_fetch_cycle(context.resolution + 1)
        self.predictor.restore(ghr1)
        self.predictor.spec_update(context.actual)
        return _EpisodeEnd(continuation=diverge_pos + 1)

    def _exit_without_predicted_cfm(
        self, diverge_pos, context, mispredicted, resolution,
        ghr1, cp1_rat, cp1_ready, pred_result,
    ) -> _EpisodeEnd:
        """Cases 5 and 6: the predicted path never reached a CFM point."""
        if self._merge_predictor is not None:
            self._note_merge_outcome(
                context.instr.pc, pred_result.outcome, flushed=mispredicted
            )
        if (
            pred_result.outcome
            in (PathOutcome.EXHAUSTED, PathOutcome.LIMIT)
            and self.cycle < resolution
        ):
            # Fetch has nowhere to go (or predication resources ran out):
            # stall until the diverge branch resolves.
            self._advance_fetch_cycle(resolution)
        if mispredicted:
            self._record_exit(ExitCase.FLUSH)
            return self._flush_diverge_branch(
                diverge_pos, context, ghr1, cp1_rat, cp1_ready
            )
        self._record_exit(ExitCase.CONTINUE_PREDICTED)
        # Correct prediction, on-trace path: just keep fetching it.
        return _EpisodeEnd(continuation=pred_result.stopped_position)

    def _exit_after_alternate(
        self, diverge_pos, context, mispredicted, resolution, ghr1,
        cp1_rat, cp1_ready, cp2_rat, cp2_ready, pred_result, alt_result,
        predicted_ghr,
    ) -> _EpisodeEnd:
        stats = self.stats
        outcome = alt_result.outcome
        keep_predicted_ghr = self.config.dpred_ghr_policy == "predicted"

        if self._merge_predictor is not None:
            # The only flush out of this handler is early-exit on a
            # mispredicted diverge branch (the LIMIT branch below).
            self._note_merge_outcome(
                context.instr.pc,
                outcome,
                flushed=(
                    mispredicted
                    and outcome == PathOutcome.LIMIT
                    and self.config.early_exit
                ),
            )

        if outcome == PathOutcome.REACHED_CFM:
            # Cases 1 / 2: normal exit with select-uops.
            stats.extra_uops += 1  # exit.pred
            self._dispatch_uop(0)
            selects = self.rat.compute_selects(cp2_rat)
            if self.oracle is not None:
                self.oracle.note_selects(len(selects))
            if self.tracer is not None:
                self.tracer.note_selects(len(selects))
            for request in selects:
                stats.select_uops += 1
                sources_ready = max(
                    cp2_ready[request.arch],
                    self.reg_ready[request.arch],
                    resolution,
                )
                completion = self._dispatch_uop(sources_ready)
                self.reg_ready[request.arch] = completion
            self.rat.apply_selects(selects)
            if keep_predicted_ghr:
                self.predictor.restore(predicted_ghr)
            if mispredicted:
                self._record_exit(ExitCase.NORMAL_MISPREDICTED)
                stats.mispredictions += 1  # eliminated: no flush
                return _EpisodeEnd(continuation=alt_result.trace_position)
            self._record_exit(ExitCase.NORMAL_CORRECT)
            return _EpisodeEnd(continuation=pred_result.trace_position)

        if outcome == PathOutcome.LIMIT and self.config.early_exit:
            # Early exit (Section 2.7.2): predict the alternate path will
            # never merge; revert to the baseline prediction.
            stats.early_exits += 1
            self.rat.restore(cp2_rat)
            self.reg_ready = list(cp2_ready)
            self.predictor.restore(predicted_ghr)
            self._advance_fetch_cycle()  # redirect to the CFM point
            if mispredicted:
                self._record_exit(ExitCase.FLUSH)
                return self._flush_diverge_branch(
                    diverge_pos, context, ghr1, cp1_rat, cp1_ready
                )
            self._record_exit(ExitCase.REDIRECT_TO_CFM)
            return _EpisodeEnd(continuation=pred_result.trace_position)

        # RESOLVED / EXHAUSTED / LIMIT-without-early-exit: wait for the
        # diverge branch if fetch stalled before it resolved.
        if self.cycle < resolution:
            self._advance_fetch_cycle(resolution)

        if mispredicted:
            # Case 4: the alternate path IS the correct path; keep going.
            self._record_exit(ExitCase.CONTINUE_ALTERNATE)
            stats.mispredictions += 1  # eliminated: no flush
            return _EpisodeEnd(continuation=alt_result.stopped_position)

        # Case 3: the alternate path was wrong-path work; restore the
        # predicted path's end-of-path state and redirect fetch to the CFM.
        self._record_exit(ExitCase.REDIRECT_TO_CFM)
        self.rat.restore(cp2_rat)
        self.reg_ready = list(cp2_ready)
        self.predictor.restore(predicted_ghr)
        self._advance_fetch_cycle()
        return _EpisodeEnd(continuation=pred_result.trace_position)

    def _handle_new_diverge(
        self, diverge_pos, context, mispredicted, resolution,
        ghr1, cp1_rat, cp1_ready, pred_result,
    ) -> _EpisodeEnd:
        """Section 2.7.3: a newer low-confidence diverge branch was fetched
        on the predicted path.  The current diverge branch reverts to a
        normal predicted branch and dynamic predication re-enters for the
        new one."""
        if mispredicted:
            # The predicted path is the wrong path; the restarted episode
            # would be squashed when the old branch resolves — flush now.
            self._record_exit(ExitCase.FLUSH)
            return self._flush_diverge_branch(
                diverge_pos, context, ghr1, cp1_rat, cp1_ready
            )
        return _EpisodeEnd(
            restart=(
                pred_result.new_position,
                pred_result.new_context,
                pred_result.new_hint,
            )
        )



    # ------------------------------------------------------------------
    # Wish branches (Section 5.2 comparison: compile-time predication
    # with a run-time choice)
    # ------------------------------------------------------------------

    def _wish_region_blocks(self, context, hint):
        """The if-converted region for a wish branch (cached per PC)."""
        cache = getattr(self, "_wish_regions", None)
        if cache is None:
            cache = self._wish_regions = {}
        pc = context.instr.pc
        if pc not in cache:
            from repro.profiling.wish_selection import wish_region

            function = context.record.function
            cfg = self.program.function(function)
            try:
                # A corrupted hint can point outside the program or at a
                # mid-block PC; treat it as an empty if-converted region
                # (the episode then degrades to trace-path-only fetch).
                _, merge_block, index = self.program.locate(hint.primary_cfm)
                if index != 0:
                    raise KeyError(hint.primary_cfm)
                region = wish_region(
                    cfg, context.record.block.name, merge_block.name
                )
            except KeyError:
                region = []
            cache[pc] = (cfg, region or [])
        return cache[pc]

    def _run_wish_episode(self, cursor: TraceCursor, context, hint) -> None:
        self._dpred_depth += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.episode_enter(
                "wish",
                pc=context.instr.pc,
                pos=cursor.index,
                depth=self._dpred_depth,
                cycle=self.cycle,
                mispredicted=context.mispredicted,
            )
        if self.oracle is not None:
            self.oracle.note_dpred_enter()
        try:
            self._run_wish_episode_impl(cursor, context, hint)
        finally:
            self._dpred_depth -= 1
            if self.oracle is not None:
                self.oracle.note_dpred_exit()
        if tracer is not None:
            tracer.episode_exit(restart=False, cycle=self.cycle)

    def _run_wish_episode_impl(
        self, cursor: TraceCursor, context, hint
    ) -> None:
        """Execute one wish branch in predicated mode.

        Unlike DMP, compile-time predication fetches EVERY basic block of
        the if-converted region (the paper's point 2), the join point is
        the static post-dominator (point 3), and there are no inner
        branch mispredictions — the whole region is predicate-defined
        straight-line code.  Register writes inside the region behave as
        conditional moves: consumers wait for the predicate (the wish
        branch's resolution).
        """
        stats = self.stats
        stats.dpred_entries += 1
        self._train_diverge_branch(context)
        cfg, region = self._wish_region_blocks(context, hint)
        cfm_pc = hint.primary_cfm
        resolution = context.resolution
        predicate_id, _ = self._alloc_predicates()
        records = self.trace.records

        # Fetch the architecturally-true path from the trace.  Inner
        # branches are if-converted: no prediction, no flush.
        pos = cursor.index + 1
        true_blocks = set()
        region_budget = 4 * self.config.dpred_path_limit
        while pos < len(records):
            record = records[pos]
            block = record.block
            if block.first_pc == cfm_pc:
                break
            self._icache_fetch(block.first_pc)
            self._fetch_trace_block(
                record,
                predicate_id=predicate_id,
                predicate_ready=resolution,
            )
            self._handle_nonbranch_transfer(block)
            true_blocks.add(block.name)
            region_budget -= len(block)
            if region_budget <= 0:
                break
            pos += 1

        # Fetch the rest of the region as predicated-FALSE work.
        written = set()
        for name in region:
            block = cfg.block(name)
            for instr in block.instructions:
                if instr.writes_register:
                    written.add(instr.dest)
            if name not in true_blocks:
                self._fetch_static_dpred_block(block)

        # cmov semantics: every register the region writes is not
        # architecturally selected until the predicate resolves.
        for arch in written:
            if self.reg_ready[arch] < resolution:
                self.reg_ready[arch] = resolution + 1

        if context.mispredicted:
            stats.mispredictions += 1  # eliminated: no flush
            self._record_exit(ExitCase.NORMAL_MISPREDICTED)
        else:
            self._record_exit(ExitCase.NORMAL_CORRECT)
        cursor.restore(pos)

    # ------------------------------------------------------------------
    # Diverge loop branches (Section 2.7.4 extension, wish-loop style)
    # ------------------------------------------------------------------

    def _run_loop_episode(self, cursor: TraceCursor, context, hint) -> None:
        self._dpred_depth += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.episode_enter(
                "loop",
                pc=context.instr.pc,
                pos=cursor.index,
                depth=self._dpred_depth,
                cycle=self.cycle,
                mispredicted=context.mispredicted,
            )
        if self.oracle is not None:
            self.oracle.note_dpred_enter()
        try:
            self._run_loop_episode_impl(cursor, context, hint)
        finally:
            self._dpred_depth -= 1
            if self.oracle is not None:
                self.oracle.note_dpred_exit()
        if tracer is not None:
            tracer.episode_exit(restart=False, cycle=self.cycle)

    def _run_loop_episode_impl(
        self, cursor: TraceCursor, context, hint
    ) -> None:
        """Dynamically predicate trailing loop iterations.

        On a low-confidence *loop-exit* branch the processor enters a loop
        predication mode: it keeps fetching the (trace) path, giving every
        further instance of the same branch its own predicate — like wish
        loops, a mispredicted exit iteration turns into predicated-FALSE
        work instead of a pipeline flush.  The mode ends when fetch
        reaches the loop's exit block (the hint's CFM point), where
        select-uops merge the state of the predicated iterations, or when
        the hardware's path budget runs out.
        """
        stats = self.stats
        config = self.config
        stats.dpred_entries += 1
        self._train_diverge_branch(context)
        loop_pc = context.instr.pc
        cfm_pc = hint.primary_cfm
        deadline = context.resolution
        saved_any = False

        stats.extra_uops += 1  # enter.pred.path
        self._dispatch_uop(0)
        entry_rat = self.rat.checkpoint()
        self.rat.clear_modified()
        predicate_id, _ = self._alloc_predicates()

        # The first instance was already fetched by the caller; if it was
        # itself the mispredicted exit, the very next trace record is the
        # exit block and the save happens immediately below.
        if context.mispredicted:
            saved_any = True
            stats.mispredictions += 1
            stats.loop_iteration_saves += 1
            self._fetch_false_loop_iteration(context.record)

        records = self.trace.records
        pos = cursor.index + 1
        fetched = 0
        while True:
            if self.watchdog is not None:
                self.watchdog.check(self, where="loop-episode", pc=loop_pc)
            if pos >= len(records):
                self._record_exit(ExitCase.CONTINUE_PREDICTED)
                cursor.restore(pos)
                return
            record = records[pos]
            block = record.block
            if block.first_pc == cfm_pc:
                self._finish_loop_episode(entry_rat, deadline, saved_any)
                cursor.restore(pos)
                return
            if fetched + len(block) > config.dpred_path_limit:
                # Checkpoint/predicate resources exhausted: fall back to
                # normal prediction from here on.
                self._record_exit(ExitCase.CONTINUE_PREDICTED)
                cursor.restore(pos)
                return
            self._icache_fetch(block.first_pc)
            terminator = block.terminator
            if terminator is not None and terminator.opcode == Opcode.BR:
                self._fetch_trace_block(
                    record,
                    skip_terminator=True,
                    predicate_id=predicate_id,
                    predicate_ready=deadline,
                )
                completion = self._handle_loop_nested_branch(record)
                if completion is not None:
                    deadline = max(deadline, completion[0])
                    if completion[1]:  # a saved loop-exit misprediction
                        saved_any = True
            else:
                self._fetch_trace_block(
                    record,
                    predicate_id=predicate_id,
                    predicate_ready=deadline,
                )
                self._handle_nonbranch_transfer(block)
            fetched += len(block)
            pos += 1

    def _handle_loop_nested_branch(self, record):
        """Handle a branch inside loop-predication mode.

        Returns ``(completion, was_loop_save)`` for instances of the
        predicated loop branch, or ``None`` after handling any other
        branch the ordinary way (including footnote-11 nested flushes).
        """
        block = record.block
        instr = block.instructions[-1]
        loop_hint = self._usable_hint(instr.pc)
        loop_instance = loop_hint is not None and loop_hint.is_loop
        actual = record.taken
        if isinstance(self.predictor, PerfectPredictor):
            self.predictor.set_oracle(actual)
        history = self.predictor.snapshot()
        prediction = self.predictor.predict(instr.pc)
        _, completion = self._fetch_branch_instruction(instr)
        self.stats.retired_branches += 1
        context = BranchContext(
            instr, record, prediction, actual, completion, history
        )
        self.predictor.spec_update(prediction.taken)
        self._train_branch(context)
        if not context.mispredicted:
            if prediction.taken:
                self._taken_redirect(
                    instr.pc, self._branch_taken_pc(block, instr)
                )
            return (completion, False) if loop_instance else None
        if loop_instance:
            # The mispredicted (usually exit) iteration is predicated:
            # the machine fetched one extra false iteration's worth of
            # work, but the flush is eliminated.
            self.stats.mispredictions += 1
            self.stats.loop_iteration_saves += 1
            self._fetch_false_loop_iteration(record)
            return (completion, True)
        # Any other branch: normal nested misprediction flush.
        self.stats.mispredictions += 1
        self.stats.pipeline_flushes += 1
        if self.tracer is not None:
            self.tracer.note_flush("loop-nested", self.cycle, pc=instr.pc)
        self._advance_fetch_cycle(completion + 1)
        self.predictor.repair(prediction, actual)
        return None

    def _fetch_false_loop_iteration(self, record) -> None:
        """Charge the predicated-FALSE over-iteration a wish-loop fetches
        past the actual loop exit: one static walk around the loop body,
        bounded, ending when the loop branch's block would re-execute."""
        block = record.block
        function = record.function
        instr = block.instructions[-1]
        # The false path continues in the NOT-actual direction (the
        # predicted, not-exit side); walk it for at most one iteration.
        start = self._successor_block(function, block, not record.taken)
        walker = StaticWalker(
            self.program, function, start, call_stack=self.call_context
        )
        budget = 64
        while not walker.exhausted and budget > 0:
            current = walker.block
            if current.first_pc == block.first_pc:
                break  # back at the loop branch: one iteration done
            for wrong_instr in current.instructions[: budget]:
                self._fetch_slot(wrong_instr.is_cond_branch)
                self.stats.fetched_wrong_cd += 1
                self.stats.executed_instructions += 1
                self.stats.predicated_false_instructions += 1
            budget -= len(current)
            self._step_walker(walker)

    def _finish_loop_episode(self, entry_rat, deadline, saved_any) -> None:
        """Merge the predicated iterations' state at the loop exit."""
        stats = self.stats
        stats.extra_uops += 1  # exit.pred
        self._dispatch_uop(0)
        selects = self.rat.compute_selects(entry_rat)
        if self.oracle is not None:
            self.oracle.note_selects(len(selects))
        if self.tracer is not None:
            self.tracer.note_selects(len(selects))
        for request in selects:
            stats.select_uops += 1
            ready = max(self.reg_ready[request.arch], deadline)
            completion = self._dispatch_uop(ready)
            self.reg_ready[request.arch] = completion
        self.rat.apply_selects(selects)
        self._record_exit(
            ExitCase.NORMAL_MISPREDICTED if saved_any
            else ExitCase.NORMAL_CORRECT
        )
        if saved_any:
            pass  # the eliminated misprediction was already counted

    # ------------------------------------------------------------------
    # Predicated path fetching
    # ------------------------------------------------------------------

    def _fetch_dpred_trace_path(
        self,
        start_pos: int,
        cam: CfmCam,
        resolution: int,
        predicate_id: int,
        limit: int,
        watch_diverge: bool,
        restart_after: int = 0,
    ) -> PathResult:
        """Fetch a trace-backed (predicate-TRUE) path until a CFM point,
        the diverge branch's resolution, or the instruction budget."""
        records = self.trace.records
        pos = start_pos
        fetched = 0
        while True:
            if self.watchdog is not None:
                self.watchdog.check(self, where="dpred-trace-path")
            if pos >= len(records):
                return PathResult(
                    PathOutcome.EXHAUSTED,
                    instructions=fetched,
                    stopped_position=pos,
                )
            record = records[pos]
            block = record.block
            if cam.matches(block.first_pc):
                cam.lock(block.first_pc)
                return PathResult(
                    PathOutcome.REACHED_CFM,
                    instructions=fetched,
                    cfm_pc=block.first_pc,
                    trace_position=pos,
                )
            if self.cycle >= resolution:
                return PathResult(
                    PathOutcome.RESOLVED,
                    instructions=fetched,
                    stopped_position=pos,
                )
            if fetched + len(block) > limit:
                return PathResult(
                    PathOutcome.LIMIT,
                    instructions=fetched,
                    stopped_position=pos,
                )
            self._icache_fetch(block.first_pc)
            terminator = block.terminator
            if terminator is not None and terminator.opcode == Opcode.BR:
                self._fetch_trace_block(
                    record,
                    skip_terminator=True,
                    predicate_id=predicate_id,
                    predicate_ready=resolution,
                )
                result = self._handle_nested_trace_branch(
                    record,
                    pos,
                    fetched,
                    watch_diverge and fetched >= restart_after,
                )
                if result is not None:
                    return result
            else:
                self._fetch_trace_block(
                    record,
                    predicate_id=predicate_id,
                    predicate_ready=resolution,
                )
                self._handle_nonbranch_transfer(block)
            fetched += len(block)
            pos += 1

    def _handle_nested_trace_branch(
        self, record, pos: int, fetched: int, watch_diverge: bool
    ) -> Optional[PathResult]:
        """Predict/train a branch nested inside a predicated path.  Returns
        a NEW_DIVERGE result when the multiple-diverge-branch enhancement
        takes over; otherwise handles the branch inline (including nested
        misprediction flushes per footnote 11) and returns None."""
        block = record.block
        instr = block.instructions[-1]
        actual = record.taken
        if isinstance(self.predictor, PerfectPredictor):
            self.predictor.set_oracle(actual)
        history = self.predictor.snapshot()
        prediction = self.predictor.predict(instr.pc)
        _, completion = self._fetch_branch_instruction(instr)
        self.stats.retired_branches += 1
        context = BranchContext(
            instr, record, prediction, actual, completion, history
        )
        if watch_diverge:
            hint = self._usable_hint(instr.pc)
            if hint is not None:
                if isinstance(self.confidence, PerfectConfidenceEstimator):
                    self.confidence.set_oracle(not context.mispredicted)
                if not self.confidence.is_confident(instr.pc, history):
                    return PathResult(
                        PathOutcome.NEW_DIVERGE,
                        instructions=fetched,
                        new_context=context,
                        new_hint=hint,
                        new_position=pos,
                    )
        self.predictor.spec_update(prediction.taken)
        self._train_branch(context)
        if context.mispredicted:
            # Footnote 11: flush the younger instructions and restart fetch
            # *in dynamic-predication mode* from the branch's correct path
            # (which is exactly where the trace continues).
            self.stats.mispredictions += 1
            self.stats.pipeline_flushes += 1
            if self.tracer is not None:
                self.tracer.note_flush("nested", self.cycle, pc=instr.pc)
            self._advance_fetch_cycle(completion + 1)
            self.predictor.repair(prediction, actual)
        elif prediction.taken:
            self._taken_redirect(
                instr.pc, self._branch_taken_pc(block, instr)
            )
        return None

    def _fetch_dpred_trace_path_fast(
        self,
        start_pos: int,
        cam: CfmCam,
        resolution: int,
        predicate_id: int,
        limit: int,
        watch_diverge: bool,
        restart_after: int = 0,
    ) -> PathResult:
        """:meth:`_fetch_dpred_trace_path` over block plans: identical
        control flow and call sequence, with the per-block static-fact
        lookups (first PC, length, terminator kind) read from the plan
        and the L1I hit path inlined."""
        records = self.trace.records
        n_records = len(records)
        watchdog = self.watchdog
        cam_matches = cam.matches
        block_plan = self.analysis.block_plan
        fetch_trace_block = self._fetch_trace_block
        inst_access = self.hierarchy.inst_access
        l1i_latency = self.hierarchy.l1i.latency
        pos = start_pos
        fetched = 0
        while True:
            if watchdog is not None:
                watchdog.check(self, where="dpred-trace-path")
            if pos >= n_records:
                return PathResult(
                    PathOutcome.EXHAUSTED,
                    instructions=fetched,
                    stopped_position=pos,
                )
            record = records[pos]
            block = record.block
            plan = block._plan
            if plan is None:
                plan = block_plan(block, record.function)
            first_pc = plan.first_pc
            if cam_matches(first_pc):
                cam.lock(first_pc)
                return PathResult(
                    PathOutcome.REACHED_CFM,
                    instructions=fetched,
                    cfm_pc=first_pc,
                    trace_position=pos,
                )
            if self.cycle >= resolution:
                return PathResult(
                    PathOutcome.RESOLVED,
                    instructions=fetched,
                    stopped_position=pos,
                )
            if fetched + plan.n > limit:
                return PathResult(
                    PathOutcome.LIMIT,
                    instructions=fetched,
                    stopped_position=pos,
                )
            extra = inst_access(first_pc // 8) - l1i_latency
            if extra > 0:
                self._advance_fetch_cycle(self.cycle + extra)
            if plan.term_kind == TERM_BR:
                fetch_trace_block(
                    record,
                    skip_terminator=True,
                    predicate_id=predicate_id,
                    predicate_ready=resolution,
                )
                result = self._handle_nested_trace_branch(
                    record,
                    pos,
                    fetched,
                    watch_diverge and fetched >= restart_after,
                )
                if result is not None:
                    return result
            else:
                fetch_trace_block(
                    record,
                    predicate_id=predicate_id,
                    predicate_ready=resolution,
                )
                self._transfer_fast(plan)
            fetched += plan.n
            pos += 1

    def _fetch_dpred_static_path(
        self,
        function: str,
        start_block,
        cam: CfmCam,
        resolution: int,
        limit: int,
        watch_diverge: bool,
        restart_after: int = 0,
    ) -> PathResult:
        """Fetch a wrong-path (predicate-FALSE) path by walking the static
        CFG behind the branch predictor."""
        if start_block is None:
            return PathResult(PathOutcome.EXHAUSTED)
        walker = StaticWalker(
            self.program, function, start_block,
            call_stack=self.call_context,
        )
        fetched = 0
        while True:
            if self.watchdog is not None:
                self.watchdog.check(self, where="dpred-static-path")
            if walker.exhausted:
                return PathResult(
                    PathOutcome.EXHAUSTED, instructions=fetched
                )
            block = walker.block
            if cam.matches(block.first_pc):
                cam.lock(block.first_pc)
                return PathResult(
                    PathOutcome.REACHED_CFM,
                    instructions=fetched,
                    cfm_pc=block.first_pc,
                )
            if self.cycle >= resolution:
                return PathResult(
                    PathOutcome.RESOLVED, instructions=fetched
                )
            if fetched + len(block) > limit:
                return PathResult(PathOutcome.LIMIT, instructions=fetched)
            self._fetch_static_dpred_block(block)
            if (
                watch_diverge
                and fetched >= restart_after
                and block.ends_in_branch
            ):
                instr = block.instructions[-1]
                if self._usable_hint(instr.pc) is not None:
                    confident = isinstance(
                        self.confidence, PerfectConfidenceEstimator
                    ) or self.confidence.is_confident(
                        instr.pc, self.predictor.snapshot()
                    )
                    if not confident:
                        return PathResult(
                            PathOutcome.NEW_DIVERGE, instructions=fetched
                        )
            fetched += len(block)
            self._step_walker(walker)

    def _fetch_dpred_static_path_fast(
        self,
        function: str,
        start_block,
        cam: CfmCam,
        resolution: int,
        limit: int,
        watch_diverge: bool,
        restart_after: int = 0,
    ) -> PathResult:
        """:meth:`_fetch_dpred_static_path` over block plans: the
        :class:`StaticWalker` stepping (including its shadow call stack
        and per-branch predict/spec-update) is replayed over the plan's
        direct successor references, with identical call sequence into
        the predictor and fetch-cycle bookkeeping."""
        if start_block is None:
            return PathResult(PathOutcome.EXHAUSTED)
        watchdog = self.watchdog
        cam_matches = cam.matches
        block_plan = self.analysis.block_plan
        fetch_block = self._fetch_static_dpred_block
        usable_hint = self._usable_hint
        predictor = self.predictor
        predict = predictor.predict
        spec_update = predictor.spec_update
        confidence = self.confidence
        confidence_is_perfect = isinstance(
            confidence, PerfectConfidenceEstimator
        )
        call_stack = list(self.call_context)
        current = start_block
        cur_function = function
        fetched = 0
        while True:
            if watchdog is not None:
                watchdog.check(self, where="dpred-static-path")
            if current is None:
                return PathResult(
                    PathOutcome.EXHAUSTED, instructions=fetched
                )
            plan = current._plan
            if plan is None:
                plan = block_plan(current, cur_function)
            first_pc = plan.first_pc
            if cam_matches(first_pc):
                cam.lock(first_pc)
                return PathResult(
                    PathOutcome.REACHED_CFM,
                    instructions=fetched,
                    cfm_pc=first_pc,
                )
            if self.cycle >= resolution:
                return PathResult(
                    PathOutcome.RESOLVED, instructions=fetched
                )
            if fetched + plan.n > limit:
                return PathResult(PathOutcome.LIMIT, instructions=fetched)
            fetch_block(current)
            term_kind = plan.term_kind
            if (
                watch_diverge
                and fetched >= restart_after
                and term_kind == TERM_BR
            ):
                if usable_hint(plan.term_pc) is not None:
                    confident = confidence_is_perfect or (
                        confidence.is_confident(
                            plan.term_pc, predictor.snapshot()
                        )
                    )
                    if not confident:
                        return PathResult(
                            PathOutcome.NEW_DIVERGE, instructions=fetched
                        )
            fetched += plan.n
            # _step_walker over the plan's successor references.
            if term_kind == TERM_BR:
                prediction = predict(plan.term_pc)
                taken = prediction.taken
                spec_update(taken)
                if taken:
                    self._advance_fetch_cycle()  # taken ends the cycle
                    current = plan.taken_block
                else:
                    current = plan.fall_block
            elif term_kind == TERM_NONE:
                current = plan.fall_block
            else:
                self._advance_fetch_cycle()  # jmp/call/ret redirect
                if term_kind == TERM_JMP:
                    current = plan.target_block
                elif term_kind == TERM_CALL:
                    if plan.fallthrough_name is not None:
                        call_stack.append(
                            (cur_function, plan.fallthrough_name)
                        )
                    cur_function = plan.callee_name
                    current = plan.callee_block
                else:  # TERM_RET
                    if not call_stack:
                        current = None  # walked off the program
                    else:
                        cur_function, return_block = call_stack.pop()
                        current = self.program.function(
                            cur_function
                        ).block(return_block)

    def _fetch_static_dpred_block(self, block) -> None:
        """Fetch and 'execute' one predicate-FALSE block: the instructions
        occupy fetch/window/retire resources and are counted, but their
        values are wrong-path garbage nothing downstream reads."""
        depth = self.config.pipeline_depth
        for instr in block.instructions:
            fetch_cycle = self._fetch_slot(instr.is_cond_branch)
            self.stats.fetched_wrong_cd += 1
            base = max(fetch_cycle + depth, self._sources_ready(instr))
            if instr.is_load:
                completion = base + self.hierarchy.l1d.latency
            else:
                completion = base + max(instr.latency, 1)
            if instr.writes_register:
                self.rat.rename_dest(instr.dest)
                self.reg_ready[instr.dest] = completion
            # Predicate-FALSE work frees its window resources as soon as
            # the predicate resolves; like the inserted uops it is kept out
            # of the reorder-buffer ring (see _dispatch_uop's rationale).
            self.stats.executed_instructions += 1
            self.stats.predicated_false_instructions += 1

    def _fetch_static_dpred_block_fast(self, block) -> None:
        """:meth:`_fetch_static_dpred_block` over the block's plan:
        identical accounting (including the window-full stall — these
        instructions check the reorder buffer but never allocate into
        it), with the fetch state on locals and batched stats."""
        plan = block._plan
        if plan is None:
            plan = self.analysis.block_plan(block)
        rows = plan.rows
        if not rows:
            return
        cycle = self.cycle
        slots = self.slots
        branches_left = self.branches_left
        seq = self.seq
        dual_until = self.dual_until
        retire_ring = self.retire_ring
        reg_ready = self.reg_ready
        depth = self._pipeline_depth
        rob_size = self._rob_size
        fetch_width = self._fetch_width
        half_width = self._half_width
        max_branches = self._max_branches
        # rat.rename_dest, inlined (see _fetch_trace_block_fast: nothing
        # rebinds the RAT's lists inside a block fetch).
        rat = self.rat
        rat_mapping = rat._mapping
        rat_modified = rat._modified
        next_tag = rat._next_tag
        l1d_latency = self.hierarchy.l1d.latency
        executed = 0
        for cond, kind, _latency, latency1, dest, srcs in rows:
            if seq >= rob_size:
                oldest = retire_ring[seq % rob_size]
                if cycle < oldest:
                    cycle = oldest  # max(cycle + 1, oldest) with cycle < oldest
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
            if cond:
                if slots <= 0 or branches_left <= 0:
                    cycle += 1
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
                branches_left -= 1
            elif slots <= 0:
                cycle += 1
                slots = half_width if cycle <= dual_until else fetch_width
                branches_left = max_branches
            slots -= 1
            base = cycle + depth
            for src in srcs:
                ready = reg_ready[src]
                if ready > base:
                    base = ready
            if kind == 1:  # KIND_LOAD: false-path loads charge an L1 hit
                completion = base + l1d_latency
            else:
                completion = base + latency1
            if dest >= 0:
                rat_mapping[dest] = next_tag
                rat_modified[dest] = True
                next_tag += 1
                reg_ready[dest] = completion
            executed += 1
        self.cycle = cycle
        self.slots = slots
        self.branches_left = branches_left
        rat._next_tag = next_tag
        stats = self.stats
        stats.fetched_wrong_cd += executed
        stats.executed_instructions += executed
        stats.predicated_false_instructions += executed

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _successor_block(self, function: str, block, taken: bool):
        """The block reached by taking (or not taking) a branch."""
        cfg = self.program.function(function)
        instr = block.instructions[-1]
        if taken:
            return cfg.block(instr.target)
        if block.fallthrough is None:
            return None
        return cfg.block(block.fallthrough)
