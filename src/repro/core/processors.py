"""User-facing processor constructors and the one-call ``simulate`` API.

Typical use::

    from repro.core import simulate
    from repro.uarch.config import MachineConfig

    stats = simulate(program, trace, MachineConfig.dmp(enhanced=True), hints)

or, going through the profiling pipeline end-to-end, use
:func:`repro.harness.experiment.run_benchmark`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dpred import PredicationAwareSimulator
from repro.isa.encoding import HintTable
from repro.program.program import Program
from repro.program.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.uarch.timing import TimingSimulator
from repro.validation.runtime import paranoid_enabled


def baseline_processor(
    program: Program, trace: Trace, config: Optional[MachineConfig] = None,
    benchmark: str = "",
) -> TimingSimulator:
    """The Table 2 baseline: branch prediction only."""
    config = (config or MachineConfig()).replace(mode="baseline")
    return TimingSimulator(program, trace, config, benchmark=benchmark)


def diverge_merge_processor(
    program: Program,
    trace: Trace,
    hints: HintTable,
    config: Optional[MachineConfig] = None,
    enhanced: bool = False,
    benchmark: str = "",
) -> PredicationAwareSimulator:
    """A diverge-merge processor driven by compiler hints.

    ``enhanced`` turns on all three Section 2.7 mechanisms (multiple CFM
    points, early exit, multiple diverge branches), matching the
    ``enhanced-mcfm-eexit-mdb`` configuration of Figure 9.
    """
    if config is None:
        config = MachineConfig.dmp(enhanced=enhanced)
    else:
        overrides = {"mode": "dmp"}
        if enhanced:
            overrides.update(
                multiple_cfm=True, early_exit=True, multiple_diverge=True
            )
        config = config.replace(**overrides)
    return PredicationAwareSimulator(
        program, trace, config, hints=hints, benchmark=benchmark
    )


def dynamic_hammock_processor(
    program: Program,
    trace: Trace,
    hammock_hints: HintTable,
    config: Optional[MachineConfig] = None,
    benchmark: str = "",
) -> PredicationAwareSimulator:
    """Dynamic Hammock Predication (Klauser et al.): the same dynamic
    predication engine, restricted to simple-hammock hints (no complex
    control flow, no enhancements)."""
    base = config or MachineConfig()
    config = base.replace(
        mode="dhp",
        multiple_cfm=False,
        early_exit=False,
        multiple_diverge=False,
    )
    return PredicationAwareSimulator(
        program, trace, config, hints=hammock_hints, benchmark=benchmark
    )


def wish_branch_processor(
    program: Program,
    trace: Trace,
    wish_hints: HintTable,
    config: Optional[MachineConfig] = None,
    benchmark: str = "",
) -> PredicationAwareSimulator:
    """A wish-branch machine (Kim et al., the Section 5.2 comparison):
    compile-time if-converted regions, run-time predicate-or-predict
    choice.  Build ``wish_hints`` with
    :func:`repro.profiling.wish_selection.select_wish_branches`."""
    config = (config or MachineConfig()).replace(mode="wish")
    return PredicationAwareSimulator(
        program, trace, config, hints=wish_hints, benchmark=benchmark
    )


def merge_point_processor(
    program: Program, trace: Trace, config: Optional[MachineConfig] = None,
    benchmark: str = "",
) -> PredicationAwareSimulator:
    """A hint-free diverge-merge processor (mode ``"mpp"``): CFM points
    are learned at run time by the dynamic merge-point predictor, so no
    hint table — and no profiling pass — is involved.  See
    docs/merge_point_prediction.md."""
    config = (config or MachineConfig()).replace(mode="mpp")
    return PredicationAwareSimulator(
        program, trace, config, benchmark=benchmark
    )


def dual_path_processor(
    program: Program, trace: Trace, config: Optional[MachineConfig] = None,
    benchmark: str = "",
) -> TimingSimulator:
    """Selective dual-path execution (Heil & Smith)."""
    config = (config or MachineConfig()).replace(mode="dualpath")
    return TimingSimulator(program, trace, config, benchmark=benchmark)


def simulate(
    program: Program,
    trace: Trace,
    config: Optional[MachineConfig] = None,
    hints: Optional[HintTable] = None,
    benchmark: str = "",
    warm_words=None,
    tracer=None,
) -> SimStats:
    """Run one benchmark trace through one machine configuration.

    Dispatches on ``config.mode``: predicating modes get the
    :class:`PredicationAwareSimulator`, everything else the base model.

    Under process-wide paranoid mode (the CLI's ``--paranoid`` flag, or
    :func:`repro.validation.runtime.set_paranoid`) every run is upgraded
    to carry the oracle cross-checker and the watchdog; this only adds
    checking and never changes timing results.

    ``tracer`` (a :class:`repro.obs.events.Tracer`, duck-typed) turns on
    structured event tracing for this run; it receives episode-level
    events and the final stats, and never changes timing results either
    (docs/observability.md).
    """
    config = config or MachineConfig()
    if paranoid_enabled() and not (config.oracle_checks and config.watchdog):
        config = config.hardened()
    if config.engine == "batch":
        # Batch-of-one through the vectorized lockstep engine; cells
        # outside its vector envelope (predicating modes, hardened runs,
        # tracers, exotic structure sizes) fall back to the fast engine
        # inside run_batch, so this route accepts every configuration.
        from repro.uarch.batch import BatchCell, run_batch

        return run_batch([
            BatchCell(
                program=program, trace=trace, config=config, hints=hints,
                benchmark=benchmark, warm_words=warm_words, tracer=tracer,
            )
        ])[0]
    if config.mode == "mpp":
        # Hint-free DMP: the simulator builds its own learned hint table
        # (repro.core.mergepoint); a compiler table here would be a
        # caller mixing up modes, so fail loudly instead of ignoring it.
        if hints is not None:
            raise ValueError(
                "mode 'mpp' learns merge points at run time; "
                "do not pass a hint table"
            )
        simulator = PredicationAwareSimulator(
            program, trace, config, benchmark=benchmark,
            warm_words=warm_words, tracer=tracer,
        )
    elif config.is_predicating:
        if hints is None:
            raise ValueError(f"mode {config.mode!r} requires a hint table")
        simulator = PredicationAwareSimulator(
            program, trace, config, hints=hints, benchmark=benchmark,
            warm_words=warm_words, tracer=tracer,
        )
    else:
        simulator = TimingSimulator(
            program, trace, config, benchmark=benchmark,
            warm_words=warm_words, tracer=tracer,
        )
    return simulator.run()
