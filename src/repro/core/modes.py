"""Dynamic-predication mode outcomes: the six exit cases of Table 1.

========  ==============  ==============  ============  =========================
case      predicted path  alternate path  prediction    processor action
========  ==============  ==============  ============  =========================
1         reached CFM     reached CFM     correct       normal exit (overhead)
2         reached CFM     reached CFM     mispredicted  normal exit (flush saved)
3         reached CFM     no reach        correct       re-direct fetch to CFM
4         reached CFM     no reach        mispredicted  no special action
5         no reach        —               correct       no special action
6         no reach        —               mispredicted  flush the pipeline
========  ==============  ==============  ============  =========================
"""

from __future__ import annotations

import enum


class PathOutcome(enum.Enum):
    """How fetching one dynamically predicated path ended."""

    REACHED_CFM = "cfm"            # next fetch address hit a CFM point
    RESOLVED = "resolution"        # the diverge branch resolved first
    LIMIT = "limit"                # instruction budget exceeded (early exit)
    EXHAUSTED = "exhausted"        # the walk fell off the program
    NEW_DIVERGE = "new-diverge"    # another low-confidence diverge branch
    #: The path suffered a nested-branch misprediction flush that aborts
    #: dynamic predication (only possible for on-trace paths).
    NESTED_FLUSH = "nested-flush"


class ExitCase(enum.IntEnum):
    """Table 1's exit cases."""

    NORMAL_CORRECT = 1
    NORMAL_MISPREDICTED = 2
    REDIRECT_TO_CFM = 3
    CONTINUE_ALTERNATE = 4
    CONTINUE_PREDICTED = 5
    FLUSH = 6

    @property
    def flushes_pipeline(self) -> bool:
        return self is ExitCase.FLUSH

    @property
    def saves_misprediction(self) -> bool:
        """Exit cases where a mispredicted diverge branch does NOT flush."""
        return self in (
            ExitCase.NORMAL_MISPREDICTED,
            ExitCase.CONTINUE_ALTERNATE,
        )


def classify_exit(
    predicted_reached_cfm: bool,
    alternate_reached_cfm: bool,
    mispredicted: bool,
) -> ExitCase:
    """Map path outcomes and branch correctness to a Table 1 exit case."""
    if not predicted_reached_cfm:
        return ExitCase.FLUSH if mispredicted else ExitCase.CONTINUE_PREDICTED
    if alternate_reached_cfm:
        return (
            ExitCase.NORMAL_MISPREDICTED
            if mispredicted
            else ExitCase.NORMAL_CORRECT
        )
    return (
        ExitCase.CONTINUE_ALTERNATE
        if mispredicted
        else ExitCase.REDIRECT_TO_CFM
    )
