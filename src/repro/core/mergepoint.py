"""Dynamic merge-point prediction (hint-free DMP, mode ``"mpp"``).

The paper's deployment weak spot is the profiling pass: every diverge
branch and CFM point is compiler-selected (Section 2.1), so a binary
with no profile — or a phase-changing input — gets no dynamic
predication at all.  Pruett & Patt's *Dynamic Merge Point Prediction*
(TR-HPS-2020-001) shows the reconvergence points can be learned at run
time from retired control flow.  This module implements that mechanism
at the fidelity this repository needs:

* :class:`MergePointPredictor` — a small tagged table, keyed by branch
  PC with LRU replacement, that observes the retired block/branch
  stream.  Each entry keeps a bounded candidate set of block-start PCs
  seen (soon) after both directions of the branch, exactly like the
  offline learner in :mod:`repro.profiling.dynamic_reconvergence`, plus
  a saturating confidence counter driven by episode outcomes: a dpred
  episode whose alternate path reaches the learned point reinforces it,
  one that provably cannot reach it decays it, and a confidence
  collapse *retrains* the entry (its candidate statistics are cleared
  so the point is re-learned from scratch — the table-side half of
  mispredicted-merge recovery; the pipeline-side half is the ordinary
  Table 1 case-6 flush).

* :class:`LearnedHintTable` — duck-types the read side of
  :class:`~repro.isa.encoding.HintTable` over a predictor, so
  ``PredicationAwareSimulator`` consumes learned CFM points through the
  exact interface compiler hints arrive on.  Lookups are strictly
  side-effect-free: the engines call ``hints.get`` from nested-branch
  and static-path code too, and bit-identity between the reference and
  fast engines requires that a lookup never advances predictor state.
  All learning happens in ``observe_to`` (called from the shared
  ``_maybe_enter_dpred`` hook at identical points in both engines) and
  ``feedback`` (called from the shared episode exit handlers).

See docs/merge_point_prediction.md for table geometry, the recovery
policy and measured accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import DivergeHint


class _MergeEntry:
    """One tagged table entry: the learning state for one static branch."""

    __slots__ = ("seen", "instances", "distance", "confidence", "tick")

    def __init__(self, confidence: int) -> None:
        #: candidate pc -> [count_after_not_taken, count_after_taken]
        self.seen: Dict[int, List[int]] = {}
        self.instances = [0, 0]
        self.distance: Dict[int, int] = {}
        self.confidence = confidence
        self.tick = 0

    def retrain(self, confidence: int) -> None:
        """Confidence collapsed: clear the candidate statistics so the
        merge point is re-learned (the tag itself stays allocated)."""
        self.seen.clear()
        self.instances[0] = 0
        self.instances[1] = 0
        self.distance.clear()
        self.confidence = confidence


class MergePointPredictor:
    """Online merge-point learning over the retired stream.

    The observation machinery mirrors
    :class:`~repro.profiling.dynamic_reconvergence.DynamicReconvergencePredictor`
    (a window opens when a branch retires and collects the block-start
    PCs fetched after it, closing when the branch's own block re-executes
    or the instruction budget runs out); the differences are the
    hardware-shaped tagged table with LRU replacement and the
    episode-outcome confidence loop, neither of which the one-shot
    offline learner needs.
    """

    def __init__(
        self,
        table_entries: int = 128,
        max_candidates: int = 8,
        window_instructions: int = 120,
        min_instances: int = 16,
        min_fraction: float = 0.7,
        conf_init: int = 2,
        conf_max: int = 7,
        miss_penalty: int = 2,
    ) -> None:
        self.table_entries = table_entries
        self.max_candidates = max_candidates
        self.window_instructions = window_instructions
        self.min_instances = min_instances
        self.min_fraction = min_fraction
        self.conf_init = conf_init
        self.conf_max = conf_max
        self.miss_penalty = miss_penalty
        self._entries: Dict[int, _MergeEntry] = {}
        self._open: List[list] = []
        self._tick = 0
        #: Trace position up to which the retired stream has been
        #: observed (see :meth:`observe_to`).
        self.observed_upto = 0
        #: Lifetime counters (table behaviour, not episode outcomes —
        #: those land on :class:`~repro.uarch.stats.SimStats`).
        self.evictions = 0
        self.retrains = 0

    @classmethod
    def from_config(cls, config) -> "MergePointPredictor":
        """Build a predictor from a :class:`MachineConfig`'s sizing knobs."""
        return cls(
            table_entries=config.merge_table_entries,
            max_candidates=config.merge_max_candidates,
            window_instructions=config.merge_window_instructions,
            min_instances=config.merge_min_instances,
            min_fraction=config.merge_min_fraction,
            conf_init=config.merge_conf_init,
            conf_max=config.merge_conf_max,
            miss_penalty=config.merge_miss_penalty,
        )

    # -- the retired-stream interface ----------------------------------

    def observe_to(self, records, upto: int) -> None:
        """Catch the predictor up with the retired stream: observe every
        trace record in ``[observed_upto, upto)``.

        Both engines call this from the shared ``_maybe_enter_dpred``
        hook with the same cursor positions in the same order, so the
        table state at every hint lookup is identical between them —
        the mpp bit-identity argument in one sentence.
        """
        pos = self.observed_upto
        if upto <= pos:
            return
        for record in records[pos:upto]:
            block = record.block
            self.observe_block(block.first_pc, len(block.instructions))
            if record.taken is not None:
                self.observe_branch(
                    block.instructions[-1].pc,
                    record.taken,
                    block_pc=block.first_pc,
                )
        self.observed_upto = upto

    def observe_block(self, block_pc: int, block_size: int) -> None:
        """A basic block retired: feed every open observation window."""
        if not self._open:
            return
        still_open = []
        for window in self._open:
            entry, side, budget, seen, own_pc, distance = window
            if block_pc == own_pc:
                self._close(entry, side, seen)
                continue
            if block_pc not in seen:
                seen[block_pc] = distance
            budget -= block_size
            if budget <= 0:
                self._close(entry, side, seen)
                continue
            window[2] = budget
            window[5] = distance + block_size
            still_open.append(window)
        self._open = still_open

    def observe_branch(
        self, pc: int, taken: bool, block_pc: Optional[int] = None
    ) -> None:
        """A conditional branch retired: touch its table entry (allocating
        — and possibly evicting — on a tag miss) and open a window."""
        self._tick += 1
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.table_entries:
                victim = min(
                    self._entries, key=lambda p: (self._entries[p].tick, p)
                )
                del self._entries[victim]
                self.evictions += 1
            entry = self._entries[pc] = _MergeEntry(self.conf_init)
        entry.tick = self._tick
        own = block_pc if block_pc is not None else pc
        self._open.append(
            [entry, int(taken), self.window_instructions, {}, own, 0]
        )

    def _close(self, entry: _MergeEntry, side: int, seen: Dict[int, int]) -> None:
        entry.instances[side] += 1
        for pc, distance in seen.items():
            counts = entry.seen.get(pc)
            if counts is None:
                if len(entry.seen) >= self.max_candidates:
                    continue  # table full: drop late arrivals
                counts = [0, 0]
                entry.seen[pc] = counts
                entry.distance[pc] = distance
            counts[side] += 1

    # -- queries (side-effect-free) ------------------------------------

    def predict(self, pc: int) -> Tuple[int, ...]:
        """The learned merge-point candidates for a branch, closest
        first (empty when nothing qualifies yet).  Strictly pure: the
        engines look up learned hints from nested-branch and static-path
        code, and those lookups must not perturb table state.
        """
        entry = self._entries.get(pc)
        if entry is None:
            return ()
        instances = entry.instances
        if instances[0] < self.min_instances or instances[1] < self.min_instances:
            return ()
        threshold = self.min_fraction
        qualifying = []
        for candidate, counts in entry.seen.items():
            if candidate == pc:
                continue  # a branch can never merge at itself
            if (
                counts[0] / instances[0] >= threshold
                and counts[1] / instances[1] >= threshold
            ):
                qualifying.append((entry.distance[candidate], candidate))
        qualifying.sort()
        return tuple(candidate for _, candidate in qualifying)

    def trained_branches(self) -> List[int]:
        """Branch PCs with at least one qualifying merge point."""
        return sorted(pc for pc in self._entries if self.predict(pc))

    # -- the episode-outcome confidence loop ---------------------------

    def feedback(self, pc: int, hit: bool) -> bool:
        """An episode opened with this branch's learned point resolved:
        reinforce on a merge, decay on a provable non-merge.  Returns
        True when the miss collapsed confidence and retrained the entry.
        """
        entry = self._entries.get(pc)
        if entry is None:
            return False  # evicted between the episode and its exit
        if hit:
            if entry.confidence < self.conf_max:
                entry.confidence += 1
            return False
        entry.confidence -= self.miss_penalty
        if entry.confidence <= 0:
            entry.retrain(self.conf_init)
            self.retrains += 1
            return True
        return False


class LearnedHintTable:
    """The read side of :class:`~repro.isa.encoding.HintTable`, backed by
    a :class:`MergePointPredictor` instead of compiler output.

    ``get`` builds a fresh :class:`DivergeHint` from the current learned
    candidates — so a branch's hint appears once the predictor trains,
    changes as candidates shift, and vanishes after a retrain — and is
    as side-effect-free as the predictor's ``predict``.  Learned hints
    never mark loops and never carry a compiler early-exit threshold.
    """

    __slots__ = ("_predictor",)

    def __init__(self, predictor: MergePointPredictor) -> None:
        self._predictor = predictor

    @property
    def predictor(self) -> MergePointPredictor:
        return self._predictor

    def get(self, branch_pc: int) -> Optional[DivergeHint]:
        cfm_pcs = self._predictor.predict(branch_pc)
        if not cfm_pcs:
            return None
        return DivergeHint(cfm_pcs)

    def is_diverge_branch(self, branch_pc: int) -> bool:
        return self.get(branch_pc) is not None

    def __contains__(self, branch_pc: int) -> bool:
        return self.get(branch_pc) is not None

    def __len__(self) -> int:
        return len(self._predictor.trained_branches())

    def __iter__(self):
        for pc in self._predictor.trained_branches():
            yield pc, self.get(pc)
