"""The CFM-point register/CAM.

The basic diverge-merge processor stores a single CFM point in the "CFM
register"; the enhanced mechanism (Section 2.7.1) stores all the compiler's
candidate CFM points in a small content-addressable memory and compares the
next fetch address against all of them.  The *first* CFM point seen on the
predicted path then becomes the only CFM point that can end the alternate
path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import CfmError


class CfmCam:
    def __init__(self, cfm_pcs: Iterable[int], capacity: int = 8) -> None:
        pcs = tuple(cfm_pcs)
        if not pcs:
            raise CfmError("need at least one CFM point")
        #: Hardware CAMs are small; extra candidates are dropped (most
        #: frequent first, so the useful ones survive).  Deduplicate
        #: BEFORE truncating: a duplicated compiler/learned hint must
        #: cost one CAM slot, not evict a distinct candidate.
        deduped = tuple(dict.fromkeys(pcs))
        self._pcs: Tuple[int, ...] = deduped[:capacity]
        self._locked: Optional[int] = None

    @property
    def entries(self) -> Tuple[int, ...]:
        return self._pcs if self._locked is None else (self._locked,)

    def matches(self, pc: int) -> bool:
        """Does the next fetch address hit a live CFM point?"""
        if self._locked is not None:
            return pc == self._locked
        return pc in self._pcs

    def lock(self, pc: int) -> None:
        """The predicted path ended at ``pc``: it becomes the only CFM
        point that can end the alternate path."""
        if not self.matches(pc):
            raise CfmError(f"{pc:#x} is not a live CFM point")
        self._locked = pc

    @property
    def locked_pc(self) -> Optional[int]:
        return self._locked
