"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``suite``     run benchmarks through the machine configurations and print
              a comparison table
``figure``    regenerate one paper exhibit (fig1..fig13, table1..table3)
``inspect``   show one benchmark's compiler-side artifacts (profile,
              diverge branches, CFM points)
``validate``  oracle-checked validation of hint tables and simulator
              runs; ``--inject`` drives the adversarial fault-injection
              suite (docs/robustness.md)
``bench``     measure fast-engine vs reference-engine throughput and
              check for perf regressions against a committed
              ``BENCH_*.json`` baseline (docs/performance.md)
``trace``     run one benchmark with structured event tracing, verify
              the traced run is bit-identical to an untraced one, and
              reconcile the JSONL trace against the run's stats
``report``    render per-cell run reports (JSON/CSV rollups: exit-case
              histograms, dpred coverage, flush avoidance) from trace
              artifacts on disk or from a fresh suite run
``fuzz``      differential fuzzing: sweep seeded random programs across
              every engine x machine-mode cell with the oracle and
              watchdog armed; ``--minimize`` shrinks findings to small
              reproducers and ``--corpus-dir`` commits them to the
              regression corpus (docs/robustness.md)
``list``      list available benchmarks and machine configurations

``suite`` and ``figure`` accept ``--paranoid``: every simulation then
runs with the oracle cross-checker and watchdog armed.  They also
accept ``--jobs N`` (fan simulations out over N worker processes) and
``--cache-dir PATH`` / ``--no-cache`` (persist traces, profiles, hint
tables and finished stats across invocations; the ``REPRO_CACHE_DIR``
environment variable supplies a default directory).  Parallel and
cache-warm runs are bit-identical to serial cold runs; ``repro suite
--timings`` prints the per-stage wall-clock and cache-hit report.  See
docs/performance.md.

``suite``, ``figure`` and ``bench`` accept ``--trace`` /
``--trace-out DIR``: every simulation then streams a JSONL event trace
(one file per benchmark x config cell) into the directory, without
changing any simulation result (docs/observability.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.harness import figures
from repro.harness.cache import ArtifactCache
from repro.harness.experiment import BenchmarkContext, run_suite
from repro.obs.runtime import tracing
from repro.uarch.config import MachineConfig
from repro.validation import faults as fault_injection
from repro.validation.runtime import paranoid, paranoid_enabled
from repro.workloads.suite import BENCHMARK_NAMES

#: Named machine configurations selectable from the command line.
CONFIG_FACTORIES = {
    "base": MachineConfig.baseline,
    "dhp": MachineConfig.dhp,
    "dmp": MachineConfig.dmp,
    "dmp-enhanced": lambda: MachineConfig.dmp(enhanced=True),
    "dualpath": MachineConfig.dualpath,
    "mpp": MachineConfig.mpp,
    "perfect-cbp": lambda: MachineConfig.baseline(predictor_kind="perfect"),
    "dmp-perf-conf": lambda: MachineConfig.dmp(confidence_kind="perfect"),
}


def _parse_benchmarks(raw: str) -> List[str]:
    if not raw:
        return list(BENCHMARK_NAMES)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return names


def cmd_list(args) -> int:
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        print(f"  {name}")
    print("\nmachine configurations:")
    for name, factory in CONFIG_FACTORIES.items():
        print(f"  {name:14s} {factory().describe()}")
    print("\nfigure drivers:")
    print("  " + " ".join(figures.ALL_DRIVERS))
    return 0


#: Default directory for ``--trace`` when ``--trace-out`` is not given.
DEFAULT_TRACE_DIR = "traces"


def _trace_dir(args) -> Optional[str]:
    """The trace directory selected by ``--trace`` / ``--trace-out``
    (``--trace-out DIR`` implies ``--trace``), or ``None``."""
    out = getattr(args, "trace_out", None)
    if out:
        return out
    if getattr(args, "trace", False):
        return DEFAULT_TRACE_DIR
    return None


def _add_trace_flags(parser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="stream a JSONL event trace per benchmark x "
                             f"config cell into ./{DEFAULT_TRACE_DIR}/ "
                             "(does not change any result)")
    parser.add_argument("--trace-out", default="", metavar="DIR",
                        help="trace into DIR instead (implies --trace)")


def _resolve_cache(args) -> Optional[ArtifactCache]:
    """The cache selected by ``--cache-dir`` / ``--no-cache`` /
    ``REPRO_CACHE_DIR`` (in that precedence), or ``None``."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    )
    return ArtifactCache(cache_dir) if cache_dir else None


def cmd_suite(args) -> int:
    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in config_names if c not in CONFIG_FACTORIES]
    if unknown:
        raise SystemExit(f"unknown configs: {', '.join(unknown)}")
    benchmarks = _parse_benchmarks(args.benchmarks)
    configs = {name: CONFIG_FACTORIES[name]() for name in config_names}
    if args.engine:
        configs = {
            name: config.replace(engine=args.engine)
            for name, config in configs.items()
        }
    cache = _resolve_cache(args)
    with paranoid(args.paranoid or paranoid_enabled()), \
            tracing(_trace_dir(args)):
        result = run_suite(
            configs,
            benchmarks,
            iterations=args.iterations,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
        )
    header = f"{'benchmark':10s}" + "".join(
        f"{name:>14s}" for name in config_names
    )
    print(header)
    print("-" * len(header))
    for name in benchmarks:
        cells = []
        base_ipc: Optional[float] = None
        for config_name in config_names:
            stats = result.stats(name, config_name)
            if args.relative and config_name != config_names[0]:
                cells.append(f"{100 * (stats.ipc / base_ipc - 1):+13.1f}%")
            else:
                cells.append(f"{stats.ipc:14.3f}")
                if base_ipc is None:
                    base_ipc = stats.ipc
        print(f"{name:10s}" + "".join(cells))
    if args.timings and result.timings is not None:
        print()
        print(result.timings.report())
    elif result.timings is not None and result.timings.batch_fallbacks:
        timings = result.timings
        fell = sum(timings.batch_fallbacks.values())
        total = fell + timings.batch_vector_cells
        print()
        print(
            f"batch fallbacks: {fell}/{total} cell(s) ran on the "
            "fast engine"
        )
        for reason, count in sorted(
            timings.batch_fallbacks.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"  {count:4d}  {reason}")
    return 0


def cmd_figure(args) -> int:
    driver = figures.ALL_DRIVERS.get(args.name)
    if driver is None:
        raise SystemExit(
            f"unknown exhibit {args.name!r}; "
            f"choose from: {' '.join(figures.ALL_DRIVERS)}"
        )
    with paranoid(args.paranoid or paranoid_enabled()), \
            tracing(_trace_dir(args)):
        if args.name in ("table1", "table2"):
            result = driver()
        else:
            result = driver(
                benchmarks=_parse_benchmarks(args.benchmarks),
                iterations=args.iterations,
                jobs=args.jobs,
                cache=_resolve_cache(args),
                engine=args.engine,
            )
    print(result.format())
    return 0


def cmd_inspect(args) -> int:
    context = BenchmarkContext(
        args.benchmark, iterations=args.iterations, seed=args.seed
    )
    trace = context.trace
    print(f"benchmark {args.benchmark}: {trace.instruction_count} insts, "
          f"{trace.branch_count} branches")
    profile = context.profile
    print(f"mispredictions: {profile.total_mispredictions} "
          f"({1000 * profile.total_mispredictions / trace.instruction_count:.2f} MPKI)")
    print(f"\ndiverge branches ({len(context.selections)} selected):")
    for selection in context.selections:
        stats = profile.branches[selection.pc]
        print(f"  @{selection.pc:#06x} {stats.function}/{stats.block:10s} "
              f"misp={selection.mispredictions:5d} "
              f"({stats.misprediction_rate:.1%})")
        for cfm in selection.cfm_points:
            print(f"     CFM @{cfm.pc:#06x}  score={cfm.score:.2f}  "
                  f"dist={cfm.mean_distance:.1f}")
    print(f"\nDHP simple hammocks: {len(context.hammock_hints)}")
    return 0


def cmd_validate(args) -> int:
    """Oracle-checked validation, optionally with injected hint faults.

    Exit codes: 0 — clean hints, every check passed; 1 — the robustness
    contract was violated (crash, hang, oracle mismatch, IPC below the
    bound, or missing exit-case coverage); 2 — injected faults were
    detected (the expected outcome of ``--inject``).  ``--expect-faults``
    flips the convention for CI: exit 0 iff faults were both survived
    AND detected.  ``--list-faults`` prints the corruption catalog and
    exits.
    """
    if args.list_faults:
        print(f"hint-corruption fault classes "
              f"({len(fault_injection.FAULT_CLASSES)}):")
        for fault in fault_injection.FAULT_CLASSES:
            if fault.statically_detectable is True:
                detect = "static "
            elif fault.statically_detectable is False:
                detect = "runtime"
            else:
                detect = "varies "
            print(f"  {fault.name:24s} [{detect}] {fault.description}")
        print("\n[static]  caught by hint-table validation before any "
              "simulation\n[runtime] caught by the armed oracle/watchdog "
              "during the run\n[varies]  detection depends on the "
              "benchmark/profile")
        return 0
    benchmarks = (
        _parse_benchmarks(args.benchmarks)
        if args.benchmarks
        else list(fault_injection.DEFAULT_BENCHMARKS)
    )
    if args.inject:
        if args.inject == "all":
            fault_names = list(fault_injection.FAULT_NAMES)
        else:
            fault_names = [f.strip() for f in args.inject.split(",") if f.strip()]
            unknown = [
                f for f in fault_names if f not in fault_injection.FAULT_NAMES
            ]
            if unknown:
                raise SystemExit(
                    f"unknown fault classes: {', '.join(unknown)}; "
                    f"choose from: {', '.join(fault_injection.FAULT_NAMES)}"
                )
        report = fault_injection.run_fault_suite(
            benchmarks=benchmarks,
            iterations=args.iterations,
            seed=args.seed,
            fault_names=fault_names,
            ipc_margin=args.margin,
        )
        print(report.format())
        robust = report.ok
        #: every injected fault class detected on at least one benchmark
        detected_classes = {r.fault for r in report.detections}
        all_detected = all(name in detected_classes for name in fault_names)
        if args.expect_faults:
            return 0 if (robust and all_detected) else 1
        if not robust:
            return 1
        return 2 if detected_classes else 0

    # Clean validation: hint tables are validated on build, then a
    # hardened (oracle + watchdog) run must complete for every benchmark.
    failures = 0
    for name in benchmarks:
        context = BenchmarkContext(
            name, iterations=args.iterations, seed=args.seed
        )
        try:
            hints = context.diverge_hints  # validates on build
            stats = context.simulate(MachineConfig.dmp(enhanced=True).hardened())
            print(
                f"{name:10s} ok: {len(hints)} hints valid, "
                f"IPC={stats.ipc:.3f}, "
                f"oracle checks={stats.oracle_checks}, "
                f"dpred entries={stats.dpred_entries}"
            )
        except ReproError as exc:
            failures += 1
            print(f"{name:10s} FAIL: {exc}")
    return 1 if failures else 0


def cmd_bench(args) -> int:
    """Engine microbenchmark + regression gate (docs/performance.md).

    Exit codes: 0 — ran clean (and within the regression budget when a
    baseline was given); 1 — a fast/reference stats mismatch, a >
    ``--max-regression`` throughput drop against the baseline, or a
    geomean cold speedup below ``--min-speedup``.
    """
    from datetime import datetime, timezone

    from repro.harness import bench

    if args.smoke:
        benchmarks = list(bench.SMOKE_BENCHMARKS)
        configs = list(bench.SMOKE_CONFIGS)
        iterations = args.iterations or bench.SMOKE_ITERATIONS
        repeats = args.repeats or bench.SMOKE_REPEATS
    else:
        benchmarks = (
            _parse_benchmarks(args.benchmarks)
            if args.benchmarks
            else list(bench.DEFAULT_BENCHMARKS)
        )
        configs = (
            [c.strip() for c in args.configs.split(",") if c.strip()]
            if args.configs
            else list(bench.DEFAULT_CONFIGS)
        )
        iterations = args.iterations or bench.DEFAULT_ITERATIONS
        repeats = args.repeats or bench.DEFAULT_REPEATS
    unknown = [c for c in configs if c not in bench.CONFIG_FACTORIES]
    if unknown:
        raise SystemExit(f"unknown configs: {', '.join(unknown)}")
    report = bench.run_bench(
        benchmarks=benchmarks,
        configs=configs,
        iterations=iterations,
        seed=args.seed,
        repeats=repeats,
        cache=_resolve_cache(args),
        progress=print,
        trace_dir=_trace_dir(args),
        batch=(
            "off" if args.no_batch else "smoke" if args.smoke else "full"
        ),
    )
    summary = report["summary"]
    print(f"\ngeomean speedup: {summary['geomean_speedup_cold']:.2f}x cold, "
          f"{summary['geomean_speedup_warm']:.2f}x cache-warm; "
          f"all stats identical: {summary['all_identical']}; "
          f"tracing non-perturbing: {summary['all_traced_identical']}")
    if summary.get("geomean_batch_speedup"):
        print(f"batch sweep geomean speedup: "
              f"{summary['geomean_batch_speedup']:.2f}x vs reference")
    if summary.get("geomean_dmp_fast_speedup"):
        print(f"dmp sweep geomean speedup: "
              f"{summary['geomean_dmp_fast_speedup']:.2f}x vs the fast "
              f"engine on dmp-mode cells")
    if summary["degenerate_cells"]:
        print("degenerate cells (excluded from geomean): "
              + ", ".join(summary["degenerate_cells"]))
    if args.profile and summary.get("profile"):
        total = sum(summary["profile"].values()) or 1.0
        print("batch sweep phase attribution:")
        for phase, secs in summary["profile"].items():
            print(f"  {phase:16s} {secs:8.2f}s  "
                  f"{100 * secs / total:5.1f}%")
        gangs = summary.get("gang_stats", {})
        if gangs.get("gangs"):
            lanes = gangs.get("ganged_lanes", 0)
            singles = gangs.get("singleton_lanes", 0)
            share = 100 * lanes / ((lanes + singles) or 1)
            print(f"episode gangs: {gangs['gangs']} gangs covering "
                  f"{lanes} lanes ({share:.0f}% of episode lanes, "
                  f"max gang {gangs.get('max_gang', 0)}); "
                  f"{singles} singletons ran scalar")
    output = args.output
    if not output:
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        output = f"BENCH_{stamp}.json"
    bench.save_report(report, output)
    print(f"wrote {output}")
    failed = (
        not summary["all_identical"]
        or not summary["all_traced_identical"]
    )
    if args.baseline:
        baseline_path = args.baseline
        if baseline_path == "latest":
            try:
                baseline_path = bench.find_latest_baseline()
            except FileNotFoundError as exc:
                print(f"FAIL: {exc}", file=sys.stderr)
                return 1
            print(f"baseline: {baseline_path}")
        problems = bench.compare(
            report, bench.load_report(baseline_path),
            max_regression=args.max_regression,
        )
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        failed = failed or bool(problems)
    try:
        floors = _parse_min_speedup(args.min_speedup)
    except ValueError as exc:
        raise SystemExit(str(exc))
    floor_keys = {
        "cold": ("geomean_speedup_cold", "geomean cold speedup"),
        "dmp": ("geomean_dmp_fast_speedup",
                "dmp sweep geomean speedup vs the fast engine"),
        "batch": ("geomean_batch_speedup",
                  "batch sweep geomean speedup vs reference"),
    }
    for group, floor in floors.items():
        key, label = floor_keys[group]
        measured = summary.get(key, 0.0)
        if measured < floor:
            print(f"FAIL: {label} {measured:.2f}x is below the "
                  f"--min-speedup floor {floor:.2f}x",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _parse_min_speedup(spec: str) -> dict:
    """``--min-speedup`` floors: ``'1.5'`` gates the cold geomean
    (back-compatible), ``'cold=1.5,dmp=2.5,batch=4.0'`` gates per
    group."""
    spec = (spec or "").strip()
    if not spec:
        return {}
    if "=" not in spec:
        return {"cold": float(spec)}
    floors = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        group, _, value = part.partition("=")
        group = group.strip()
        if group not in ("cold", "dmp", "batch"):
            raise ValueError(
                f"unknown --min-speedup group {group!r} "
                "(expected cold, dmp or batch)")
        floors[group] = float(value)
    return floors


def cmd_trace(args) -> int:
    """Traced single run + verification (docs/observability.md).

    Runs the benchmark twice under the chosen configuration — once
    untraced, once streaming a JSONL event trace — then (1) asserts the
    two runs' stats are bit-identical (tracing must only observe) and
    (2) structurally validates and reconciles the trace against the
    traced run's final stats.  Exit codes: 0 — both checks passed;
    1 — the tracer perturbed the run or the trace failed to reconcile.
    """
    import dataclasses

    from repro.obs.events import JsonlTracer
    from repro.obs.reconcile import reconcile_trace
    from repro.obs.runtime import trace_path

    if args.benchmark not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark: {args.benchmark}")
    if args.config not in CONFIG_FACTORIES:
        raise SystemExit(f"unknown config: {args.config}")
    config = CONFIG_FACTORIES[args.config]()
    if args.engine:
        config = config.replace(engine=args.engine)
    context = BenchmarkContext(
        args.benchmark, iterations=args.iterations, seed=args.seed,
        cache=_resolve_cache(args),
    )
    untraced = context.simulate(config)
    out = args.out or trace_path(".", args.benchmark, args.config)
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    tracer = JsonlTracer(
        out,
        meta={
            "benchmark": args.benchmark,
            "config": args.config,
            "iterations": context.iterations,
            "seed": args.seed,
        },
        capacity=args.ring,
    )
    try:
        traced = context.simulate(config, tracer=tracer)
    finally:
        tracer.close()
    identical = dataclasses.asdict(untraced) == dataclasses.asdict(traced)
    summary = reconcile_trace(out)  # raises TraceValidationError on failure
    print(summary.describe())
    print(f"wrote {out} ({summary.events} events)")
    if not identical:
        print("FAIL: traced run's stats differ from the untraced run",
              file=sys.stderr)
        return 1
    print("traced run bit-identical to untraced run; trace reconciles "
          "with its stats")
    return 0


def cmd_report(args) -> int:
    """Run reports from trace artifacts or a fresh suite run.

    With paths (trace ``*.jsonl`` files, directories of them, or bench
    ``BENCH_*.json`` reports): reconcile every trace and derive one
    rollup row per cell; bench reports print their speedup summaries.
    Without paths: run the requested suite and report its cells.
    """
    from repro.obs.metrics import RunMetrics, SuiteReport
    from repro.obs.reconcile import (
        reconcile_directory,
        reconcile_trace,
        trace_metrics,
    )

    cells = []
    meta = {"source": "traces" if args.paths else "suite"}
    if args.paths:
        meta["paths"] = list(args.paths)
        for path in args.paths:
            if os.path.isdir(path):
                for summary in reconcile_directory(path):
                    cells.append(trace_metrics(summary))
            elif path.endswith(".jsonl"):
                cells.append(trace_metrics(reconcile_trace(path)))
            elif path.endswith(".json"):
                from repro.harness import bench as bench_mod

                bench_report = bench_mod.load_report(path)
                summary = bench_report["summary"]
                # .get with 0.0: a report whose cells were all degenerate
                # (sub-tick timings) still loads — the geomeans are just
                # empty, which must roll up as "no data", not a crash.
                print(f"{path}: bench geomean speedup "
                      f"{summary.get('geomean_speedup_cold', 0.0):.2f}x cold, "
                      f"{summary.get('geomean_speedup_warm', 0.0):.2f}x warm, "
                      f"all identical: {summary.get('all_identical', False)}")
            else:
                raise SystemExit(
                    f"{path}: not a trace (.jsonl), trace directory, or "
                    "bench report (.json)"
                )
        if not cells:
            return 0
    else:
        config_names = [
            c.strip() for c in args.configs.split(",") if c.strip()
        ]
        unknown = [c for c in config_names if c not in CONFIG_FACTORIES]
        if unknown:
            raise SystemExit(f"unknown configs: {', '.join(unknown)}")
        benchmarks = _parse_benchmarks(args.benchmarks)
        configs = {name: CONFIG_FACTORIES[name]() for name in config_names}
        result = run_suite(
            configs,
            benchmarks,
            iterations=args.iterations,
            seed=args.seed,
            jobs=args.jobs,
            cache=_resolve_cache(args),
        )
        meta.update(iterations=args.iterations, seed=args.seed)
        report = SuiteReport.from_suite(result, meta=meta)
        cells = report.cells
    rendered = SuiteReport(cells, meta=meta).render(args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(rendered)
    return 0


def _parse_seeds(raw: str) -> List[int]:
    """``A:B`` (half-open range), ``a,b,c``, or a single seed."""
    raw = raw.strip()
    if ":" in raw:
        lo_text, hi_text = raw.split(":", 1)
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise SystemExit(f"bad seed range {raw!r}; expected A:B")
        if hi <= lo:
            raise SystemExit(f"empty seed range {raw!r}")
        return list(range(lo, hi))
    try:
        seeds = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"bad seeds {raw!r}; expected A:B or a,b,c")
    if not seeds:
        # An empty seed list must be loud: ``repro fuzz --seeds ""``
        # would otherwise run zero seeds and exit 0 with a "clean"
        # report, silently disabling a nightly fuzz job.
        raise SystemExit(f"no seeds in {raw!r}; expected A:B or a,b,c")
    return seeds


def cmd_fuzz(args) -> int:
    """Differential fuzzing sweep (docs/robustness.md).

    Every seed's program runs across {reference, fast} engines x every
    machine mode, hardened; ``--engines reference,batch --no-harden``
    instead diffs the vectorized batch engine's vector path against the
    reference, and ``--gang`` adds the dmp-gang band (each program
    fanned across machine sizings as one batch group, driving the
    ganged-episode kernels).  Exit codes: 0 — every seed clean; 1 — at
    least one
    finding (its JSON report and, with ``--minimize --corpus-dir``, its
    corpus reproducer carry the evidence).
    """
    import json as json_mod

    from repro.fuzz import (
        FUZZ_MODES,
        GANG_MODE,
        FuzzKnobs,
        run_fuzz,
        save_reproducer,
    )

    seeds = _parse_seeds(args.seeds)
    knobs = FuzzKnobs(
        max_gadgets=args.max_gadgets, iterations=args.iterations
    )
    kwargs = {}
    if args.gang:
        kwargs["modes"] = FUZZ_MODES + (GANG_MODE,)
    if args.engines:
        engines = [e.strip() for e in args.engines.split(",") if e.strip()]
        if len(engines) < 2:
            raise SystemExit(
                f"--engines needs a reference plus at least one engine "
                f"to diff, got {args.engines!r}"
            )
        kwargs["engines"] = tuple(engines)
    if args.no_harden:
        kwargs["harden"] = False
    report = run_fuzz(
        seeds,
        budget=args.budget or None,
        jobs=args.jobs,
        minimize=args.minimize,
        knobs=knobs,
        progress=lambda line: print(f"  {line}"),
        **kwargs,
    )
    print(report.summary())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json_mod.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if report.findings and args.minimize and args.corpus_dir:
        for finding in report.findings:
            if finding.spec is not None:
                path = save_reproducer(finding, directory=args.corpus_dir)
                print(f"saved reproducer {path}")
    return 1 if report.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diverge-Merge Processor reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks/configs/exhibits")
    p_list.set_defaults(func=cmd_list)

    p_suite = sub.add_parser("suite", help="compare machine configurations")
    p_suite.add_argument("--benchmarks", default="",
                         help="comma-separated benchmark subset")
    p_suite.add_argument("--configs", default="base,dhp,dmp,dmp-enhanced")
    p_suite.add_argument("--iterations", type=int, default=800)
    p_suite.add_argument("--seed", type=int, default=0,
                         help="workload generation seed")
    p_suite.add_argument("--relative", action="store_true",
                         help="print %% improvement over the first config")
    p_suite.add_argument("--paranoid", action="store_true",
                         help="arm the oracle cross-checker and watchdog "
                              "on every simulation")
    p_suite.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fan simulations out over N worker processes "
                              "(results are bit-identical to --jobs 1)")
    p_suite.add_argument("--engine", default="",
                         choices=["", "fast", "reference", "batch"],
                         help="simulation engine override; 'batch' runs "
                              "every cell through the vectorized lockstep "
                              "engine (bit-identical, much faster for "
                              "sweeps)")
    p_suite.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="persist traces/profiles/hints/stats under "
                              "PATH and reuse them on later runs (default: "
                              "$REPRO_CACHE_DIR if set, else no cache)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache even if "
                              "REPRO_CACHE_DIR is set")
    p_suite.add_argument("--timings", action="store_true",
                         help="print per-stage wall-clock and cache-hit "
                              "accounting after the table")
    _add_trace_flags(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_fig = sub.add_parser("figure", help="regenerate one paper exhibit")
    p_fig.add_argument("name", help="fig1..fig13 or table1..table3")
    p_fig.add_argument("--benchmarks", default="")
    p_fig.add_argument("--iterations", type=int, default=800)
    p_fig.add_argument("--paranoid", action="store_true",
                       help="arm the oracle cross-checker and watchdog "
                            "on every simulation")
    p_fig.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan simulations out over N worker processes")
    p_fig.add_argument("--engine", default="",
                       choices=["", "fast", "reference", "batch"],
                       help="simulation engine override; 'batch' runs "
                            "every cell through the vectorized lockstep "
                            "engine (bit-identical, much faster for "
                            "sweeps)")
    p_fig.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="persist traces/profiles/hints/stats under "
                            "PATH and reuse them on later runs (default: "
                            "$REPRO_CACHE_DIR if set, else no cache)")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache even if "
                            "REPRO_CACHE_DIR is set")
    _add_trace_flags(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_inspect = sub.add_parser(
        "inspect", help="show a benchmark's compiler-side artifacts"
    )
    p_inspect.add_argument("benchmark")
    p_inspect.add_argument("--iterations", type=int, default=800)
    p_inspect.add_argument("--seed", type=int, default=0,
                           help="workload generation seed")
    p_inspect.set_defaults(func=cmd_inspect)

    p_val = sub.add_parser(
        "validate",
        help="oracle-checked validation / adversarial hint fault injection",
    )
    p_val.add_argument("--benchmarks", default="",
                       help="comma-separated benchmark subset "
                            "(default: the fault-suite trio)")
    p_val.add_argument("--iterations", type=int, default=400)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument("--inject", default="",
                       help="comma-separated fault classes to inject, "
                            "or 'all'")
    p_val.add_argument("--margin", type=float,
                       default=fault_injection.DEFAULT_IPC_MARGIN,
                       help="allowed fractional IPC drop below baseline "
                            "under corrupted hints")
    p_val.add_argument("--expect-faults", action="store_true",
                       help="CI mode: exit 0 iff injected faults were "
                            "both survived and detected")
    p_val.add_argument("--list-faults", action="store_true",
                       help="print the hint-corruption fault catalog "
                            "and exit")
    p_val.set_defaults(func=cmd_validate)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the engines across machine modes",
    )
    p_fuzz.add_argument("--seeds", default="0:50",
                        help="seed range A:B (half-open) or list a,b,c "
                             "(default 0:50)")
    p_fuzz.add_argument("--budget", type=int, default=0,
                        help="cap on seeds actually checked "
                             "(0 = the whole range)")
    p_fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan seeds out over N worker processes "
                             "(findings are reported in seed order "
                             "regardless)")
    p_fuzz.add_argument("--minimize", action="store_true",
                        help="delta-minimize each finding's program to a "
                             "small reproducer")
    p_fuzz.add_argument("--corpus-dir", default="", metavar="DIR",
                        help="with --minimize: save each reproducer as a "
                             "corpus JSON entry under DIR (the committed "
                             "corpus lives in tests/fuzz/corpus/)")
    p_fuzz.add_argument("--engines", default="",
                        help="comma-separated engine list; the first is "
                             "the trusted reference the rest are diffed "
                             "against (default reference,fast)")
    p_fuzz.add_argument("--no-harden", action="store_true",
                        help="run configs without the oracle/watchdog "
                             "(required for the batch engine's vector "
                             "path: hardened cells always take the "
                             "scalar fallback)")
    p_fuzz.add_argument("--gang", action="store_true",
                        help="add the dmp-gang band: fan each program "
                             "across machine sizings as one batch group "
                             "so dpred episodes run through the "
                             "ganged-episode vector kernels, every lane "
                             "diffed against the reference engine")
    p_fuzz.add_argument("--iterations", type=int, default=120,
                        help="outer-loop iterations per generated program")
    p_fuzz.add_argument("--max-gadgets", type=int, default=4,
                        help="max control-flow gadgets per program")
    p_fuzz.add_argument("--output", default="", metavar="PATH",
                        help="write the schema-versioned JSON finding "
                             "report here")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_bench = sub.add_parser(
        "bench",
        help="engine throughput microbenchmark / perf-regression gate",
    )
    p_bench.add_argument("--smoke", action="store_true",
                         help="quick CI matrix (see docs/performance.md)")
    p_bench.add_argument("--benchmarks", default="",
                         help="comma-separated benchmark subset")
    p_bench.add_argument("--configs", default="",
                         help="comma-separated config subset")
    p_bench.add_argument("--iterations", type=int, default=0,
                         help="workload iterations per benchmark "
                              "(0 = preset default)")
    p_bench.add_argument("--repeats", type=int, default=0,
                         help="timing repeats per cell, best kept "
                              "(0 = preset default)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="workload generation seed")
    p_bench.add_argument("--output", default="",
                         help="report path (default BENCH_<utc>.json)")
    p_bench.add_argument("--baseline", default="",
                         help="committed BENCH_*.json to gate against, "
                              "or 'latest' for the newest committed "
                              "report in the working directory")
    p_bench.add_argument("--max-regression", type=float, default=0.25,
                         help="allowed fractional speedup drop vs the "
                              "baseline report")
    p_bench.add_argument("--min-speedup", default="",
                         help="speedup floors: a bare number gates the "
                              "geomean cold speedup; 'cold=1.5,dmp=2.5,"
                              "batch=4.0' gates per group (cold / "
                              "dmp-sweep vs fast / batch sweeps vs "
                              "reference)")
    p_bench.add_argument("--profile", action="store_true",
                         help="print the batch sweeps' per-phase wall-"
                              "time attribution and gang statistics")
    p_bench.add_argument("--no-batch", action="store_true",
                         help="skip the lockstep batch-engine sweep "
                              "cells")
    p_bench.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="artifact cache for traces/profiles/hints")
    p_bench.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache")
    _add_trace_flags(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="traced single run: verify tracing is non-perturbing and "
             "the event stream reconciles with the stats",
    )
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--config", default="dmp-enhanced",
                         help="machine configuration "
                              "(default: dmp-enhanced)")
    p_trace.add_argument("--engine", default="",
                         choices=("", "reference", "fast"),
                         help="engine override (default: config's choice)")
    p_trace.add_argument("--iterations", type=int, default=800)
    p_trace.add_argument("--seed", type=int, default=0,
                         help="workload generation seed")
    p_trace.add_argument("--out", default="",
                         help="trace file path "
                              "(default ./<benchmark>__<config>.jsonl)")
    p_trace.add_argument("--ring", type=int, default=256,
                         help="ring-buffer capacity for hang diagnostics")
    p_trace.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="artifact cache for traces/profiles/hints")
    p_trace.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache")
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="per-cell run reports (JSON/CSV) from trace artifacts or a "
             "fresh suite run",
    )
    p_report.add_argument("paths", nargs="*",
                          help="trace files (*.jsonl), directories of "
                               "them, or bench BENCH_*.json reports; "
                               "empty = run a suite")
    p_report.add_argument("--benchmarks", default="",
                          help="comma-separated benchmark subset "
                               "(suite mode)")
    p_report.add_argument("--configs", default="base,dhp,dmp,dmp-enhanced",
                          help="configs to run (suite mode)")
    p_report.add_argument("--iterations", type=int, default=800)
    p_report.add_argument("--seed", type=int, default=0,
                          help="workload generation seed")
    p_report.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes (suite mode)")
    p_report.add_argument("--format", default="json",
                          choices=("json", "csv"))
    p_report.add_argument("--output", default="",
                          help="write the report here instead of stdout")
    p_report.add_argument("--cache-dir", default=None, metavar="PATH",
                          help="artifact cache for traces/profiles/hints")
    p_report.add_argument("--no-cache", action="store_true",
                          help="disable the artifact cache")
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Structured failure (oracle mismatch, watchdog trip, bad hint
        # table): report it cleanly instead of a traceback.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
