"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``suite``    run benchmarks through the machine configurations and print a
             comparison table
``figure``   regenerate one paper exhibit (fig1..fig13, table1..table3)
``inspect``  show one benchmark's compiler-side artifacts (profile,
             diverge branches, CFM points)
``list``     list available benchmarks and machine configurations
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import figures
from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.workloads.suite import BENCHMARK_NAMES

#: Named machine configurations selectable from the command line.
CONFIG_FACTORIES = {
    "base": MachineConfig.baseline,
    "dhp": MachineConfig.dhp,
    "dmp": MachineConfig.dmp,
    "dmp-enhanced": lambda: MachineConfig.dmp(enhanced=True),
    "dualpath": MachineConfig.dualpath,
    "perfect-cbp": lambda: MachineConfig.baseline(predictor_kind="perfect"),
    "dmp-perf-conf": lambda: MachineConfig.dmp(confidence_kind="perfect"),
}


def _parse_benchmarks(raw: str) -> List[str]:
    if not raw:
        return list(BENCHMARK_NAMES)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return names


def cmd_list(args) -> int:
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        print(f"  {name}")
    print("\nmachine configurations:")
    for name, factory in CONFIG_FACTORIES.items():
        print(f"  {name:14s} {factory().describe()}")
    print("\nfigure drivers:")
    print("  " + " ".join(figures.ALL_DRIVERS))
    return 0


def cmd_suite(args) -> int:
    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in config_names if c not in CONFIG_FACTORIES]
    if unknown:
        raise SystemExit(f"unknown configs: {', '.join(unknown)}")
    benchmarks = _parse_benchmarks(args.benchmarks)
    header = f"{'benchmark':10s}" + "".join(
        f"{name:>14s}" for name in config_names
    )
    print(header)
    print("-" * len(header))
    for name in benchmarks:
        context = BenchmarkContext(name, iterations=args.iterations)
        cells = []
        base_ipc: Optional[float] = None
        for config_name in config_names:
            stats = context.simulate(CONFIG_FACTORIES[config_name]())
            if args.relative and config_name != config_names[0]:
                cells.append(f"{100 * (stats.ipc / base_ipc - 1):+13.1f}%")
            else:
                cells.append(f"{stats.ipc:14.3f}")
                if base_ipc is None:
                    base_ipc = stats.ipc
        print(f"{name:10s}" + "".join(cells))
    return 0


def cmd_figure(args) -> int:
    driver = figures.ALL_DRIVERS.get(args.name)
    if driver is None:
        raise SystemExit(
            f"unknown exhibit {args.name!r}; "
            f"choose from: {' '.join(figures.ALL_DRIVERS)}"
        )
    if args.name in ("table1", "table2"):
        result = driver()
    else:
        result = driver(
            benchmarks=_parse_benchmarks(args.benchmarks),
            iterations=args.iterations,
        )
    print(result.format())
    return 0


def cmd_inspect(args) -> int:
    context = BenchmarkContext(args.benchmark, iterations=args.iterations)
    trace = context.trace
    print(f"benchmark {args.benchmark}: {trace.instruction_count} insts, "
          f"{trace.branch_count} branches")
    profile = context.profile
    print(f"mispredictions: {profile.total_mispredictions} "
          f"({1000 * profile.total_mispredictions / trace.instruction_count:.2f} MPKI)")
    print(f"\ndiverge branches ({len(context.selections)} selected):")
    for selection in context.selections:
        stats = profile.branches[selection.pc]
        print(f"  @{selection.pc:#06x} {stats.function}/{stats.block:10s} "
              f"misp={selection.mispredictions:5d} "
              f"({stats.misprediction_rate:.1%})")
        for cfm in selection.cfm_points:
            print(f"     CFM @{cfm.pc:#06x}  score={cfm.score:.2f}  "
                  f"dist={cfm.mean_distance:.1f}")
    print(f"\nDHP simple hammocks: {len(context.hammock_hints)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diverge-Merge Processor reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks/configs/exhibits")
    p_list.set_defaults(func=cmd_list)

    p_suite = sub.add_parser("suite", help="compare machine configurations")
    p_suite.add_argument("--benchmarks", default="",
                         help="comma-separated benchmark subset")
    p_suite.add_argument("--configs", default="base,dhp,dmp,dmp-enhanced")
    p_suite.add_argument("--iterations", type=int, default=800)
    p_suite.add_argument("--relative", action="store_true",
                         help="print %% improvement over the first config")
    p_suite.set_defaults(func=cmd_suite)

    p_fig = sub.add_parser("figure", help="regenerate one paper exhibit")
    p_fig.add_argument("name", help="fig1..fig13 or table1..table3")
    p_fig.add_argument("--benchmarks", default="")
    p_fig.add_argument("--iterations", type=int, default=800)
    p_fig.set_defaults(func=cmd_figure)

    p_inspect = sub.add_parser(
        "inspect", help="show a benchmark's compiler-side artifacts"
    )
    p_inspect.add_argument("benchmark")
    p_inspect.add_argument("--iterations", type=int, default=800)
    p_inspect.set_defaults(func=cmd_inspect)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
