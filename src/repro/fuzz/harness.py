"""Differential harness: one fuzz program across every engine x mode cell.

For each generated program the harness derives the full hint stack with
the production profiling pipeline (the same postdominator/reconvergence
machinery the benchmarks use — no fuzz-only shortcuts), then simulates
every machine mode on both engines with the oracle cross-checker and
watchdog armed.  Anything abnormal becomes a :class:`Finding`:

``divergence``   the two engines disagree on any SimStats field
``oracle``       the oracle cross-checker tripped (OracleMismatchError)
``hang``         the watchdog tripped (SimulationHangError)
``crash``        any other exception out of hint derivation or simulation
``generator``    the spec failed to build or run functionally (a bug in
                 the fuzzer itself, reported rather than swallowed)

:func:`run_fuzz` sweeps a seed range, optionally fanning seeds over a
process pool (the PR-2 initializer pattern: knobs travel once per
worker, results merge in caller order), optionally delta-minimizing each
finding, and returns a schema-versioned :class:`FuzzReport`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
import time
import traceback
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.processors import simulate
from repro.errors import (
    OracleMismatchError,
    ReproError,
    SimulationHangError,
)
from repro.fuzz.generator import (
    FuzzKnobs,
    FuzzSpec,
    build_fuzz_workload,
    draw_spec,
)
from repro.isa.encoding import HintTable
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    build_hint_table,
    candidate_branch_pcs,
    select_diverge_branches,
)
from repro.profiling.hammock import find_simple_hammocks
from repro.profiling.loop_selection import (
    merge_hint_tables,
    select_diverge_loop_branches,
)
from repro.profiling.profiler import collect_reconvergence, profile_trace
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats

#: Report schema identifier (bump on incompatible layout changes).
REPORT_SCHEMA = "repro-fuzz/1"

#: The machine modes every fuzz program is checked under.
FUZZ_MODES = (
    "baseline", "dualpath", "dmp", "dmp-basic", "dhp", "wish", "loop-pred",
    "mpp",
)

#: Engines compared per mode.
_ENGINES = ("reference", "fast")

#: The ganged-episode band: one fuzz program fanned across machine
#: sizings as a *single* batch-engine group.  Deliberately not part of
#: :data:`FUZZ_MODES` — single-cell groups can only exercise the
#: engine's singleton episode path, and hardened cells take the scalar
#: fallback entirely — so the unhardened batch sweep opts in with
#: ``modes=FUZZ_MODES + (GANG_MODE,)``.
GANG_MODE = "dmp-gang"

#: Machine sizings fanned per spec for the gang band.  Every lane
#: shares the spec's program and trace, so each dpred episode is
#: entered by the whole group at the same record with the same
#: (trace, signature) key — many-lane gangs, not singleton replays.
GANG_SIZINGS = tuple(
    (width, depth, rob, retire)
    for width in (4, 8)
    for depth in (10, 30)
    for rob in (128, 512)
    for retire in (4, 8)
)


def mode_configs() -> Dict[str, MachineConfig]:
    """One un-hardened, engine-unspecified configuration per fuzz mode.

    ``dmp`` runs fully enhanced (multiple CFM + early exit + multiple
    diverge) and ``loop-pred`` adds loop predication on top — the widest
    predication surface the simulator has, which is what the fuzzer
    should be hammering.  ``dmp-basic`` is the plain Table-1 machine:
    unlike the enhanced variant it sits inside the batch engine's
    vector envelope, so an unhardened batch sweep exercises the
    vectorized predicated-episode path rather than the scalar
    fallback."""
    return {
        "baseline": MachineConfig.baseline(),
        "dualpath": MachineConfig.dualpath(),
        "dmp": MachineConfig.dmp(enhanced=True),
        "dmp-basic": MachineConfig.dmp(),
        "dhp": MachineConfig.dhp(),
        "wish": MachineConfig.wish(),
        "loop-pred": MachineConfig.dmp(enhanced=True, loop_predication=True),
        # Hint-free DMP: fuzz programs are tiny, so drop the training
        # floor enough for the predictor to open episodes, and tighten
        # the path budgets (with early exit on) so learned-merge
        # mispredictions — and their recovery flushes and retrains —
        # are reachable within a fuzz run, not just the happy path.
        "mpp": MachineConfig.mpp(
            merge_min_instances=4,
            merge_window_instructions=64,
            multiple_cfm=True,
            early_exit=True,
            early_exit_default_threshold=24,
            dpred_path_limit=48,
        ),
    }


@dataclasses.dataclass
class Finding:
    """One abnormal result from one ``(seed, mode, engine)`` cell."""

    seed: int
    kind: str  # divergence | oracle | hang | crash | generator
    mode: str  # machine mode, or "build" for generator findings
    engine: str  # engine that failed; "both" for divergences
    detail: str
    #: SimStats fields that differ (divergence findings only).
    stat_diff: List[str] = dataclasses.field(default_factory=list)
    #: The spec that reproduces the finding (minimized when the harness
    #: ran the minimizer; the original draw otherwise).
    spec: Optional[FuzzSpec] = None
    minimized: bool = False
    static_instructions: int = 0

    def summary(self) -> str:
        extra = f" fields={','.join(self.stat_diff)}" if self.stat_diff else ""
        size = (
            f" [{self.static_instructions} static insns"
            + (", minimized]" if self.minimized else "]")
            if self.static_instructions
            else ""
        )
        return (
            f"seed={self.seed} {self.kind} mode={self.mode} "
            f"engine={self.engine}{extra}{size}: {self.detail}"
        )


class FuzzProgram:
    """One fuzz spec's machine-independent artifacts, lazily built.

    The shape mirrors :class:`repro.harness.experiment.BenchmarkContext`
    but is keyed by a :class:`FuzzSpec` instead of a benchmark name, and
    derives the loop-pred hint table (forward diverge hints merged with
    loop-exit hints) that the benchmark context leaves to ablation
    drivers."""

    def __init__(
        self,
        spec: FuzzSpec,
        thresholds: Optional[SelectionThresholds] = None,
    ) -> None:
        self.spec = spec
        self.thresholds = thresholds or SelectionThresholds()
        self._workload = None
        self._trace = None
        self._profile = None
        self._hints: Dict[str, Optional[HintTable]] = {}

    @property
    def workload(self):
        if self._workload is None:
            self._workload = build_fuzz_workload(self.spec)
        return self._workload

    @property
    def program(self):
        return self.workload.program

    @property
    def trace(self):
        if self._trace is None:
            self._trace = self.workload.run()
        return self._trace

    @property
    def profile(self):
        if self._profile is None:
            self._profile = profile_trace(self.program, self.trace)
        return self._profile

    def _diverge_hints(self) -> HintTable:
        candidates = candidate_branch_pcs(self.profile, self.thresholds)
        reconvergence = collect_reconvergence(
            self.program,
            self.trace,
            candidates,
            max_distance=self.thresholds.max_cfm_distance,
        )
        selections = select_diverge_branches(
            self.profile, reconvergence, self.thresholds
        )
        return build_hint_table(selections, self.thresholds, multiple_cfm=True)

    def hints_for(self, mode: str) -> Optional[HintTable]:
        """The hint table for a fuzz mode (memoized per mode family)."""
        if mode in ("baseline", "dualpath", "mpp"):
            # mpp learns its merge points at run time — simulate()
            # rejects a compiler table in that mode.
            return None
        if mode not in self._hints:
            if mode in ("dmp", "dmp-basic", GANG_MODE):
                self._hints[mode] = self._diverge_hints()
            elif mode == "loop-pred":
                loop = select_diverge_loop_branches(
                    self.program, self.trace, self.profile, self.thresholds
                )
                self._hints[mode] = merge_hint_tables(
                    self.hints_for("dmp"), loop
                )
            elif mode == "dhp":
                self._hints[mode] = find_simple_hammocks(
                    self.program,
                    profile=self.profile,
                    min_misprediction_rate=(
                        self.thresholds.min_misprediction_rate
                    ),
                )
            elif mode == "wish":
                from repro.profiling.wish_selection import select_wish_branches

                table, _ = select_wish_branches(
                    self.program,
                    profile=self.profile,
                    min_misprediction_rate=(
                        self.thresholds.min_misprediction_rate
                    ),
                )
                self._hints[mode] = table
            else:
                raise ValueError(f"unknown fuzz mode {mode!r}")
        return self._hints[mode]

    def simulate(
        self, mode: str, config: MachineConfig, tracer=None
    ) -> SimStats:
        return simulate(
            self.program,
            self.trace,
            config,
            hints=self.hints_for(mode),
            benchmark=self.spec.name,
            warm_words=self.workload.memory.warm_words(),
            tracer=tracer,
        )


def _stat_diff(ref: SimStats, fast: SimStats) -> List[str]:
    a, b = dataclasses.asdict(ref), dataclasses.asdict(fast)
    return sorted(field for field in a if a[field] != b[field])


def _check_gang(ctx: FuzzProgram, spec: FuzzSpec) -> List[Finding]:
    """The ``dmp-gang`` band: one spec, :data:`GANG_SIZINGS` lanes, one
    batch group.

    All lanes carry the same program, trace and diverge hints, so every
    dpred episode is reached by the whole group at the same trace record
    and the engine's ganged (trace, signature) kernels — not the
    singleton path — produce the timing.  Each lane's SimStats is then
    diffed against a reference-engine run of the same sizing.  Without
    numpy the engine has no vector path to gang and the band is a
    no-op."""
    from repro.uarch.batch import BatchCell, batch_supported, run_batch

    if not batch_supported():
        return []
    try:
        hints = ctx.hints_for(GANG_MODE)
        warm = ctx.workload.memory.warm_words()
        base = MachineConfig.dmp()
        configs = [
            base.replace(
                engine="batch",
                fetch_width=width,
                pipeline_depth=depth,
                rob_size=rob,
                retire_width=retire,
            )
            for (width, depth, rob, retire) in GANG_SIZINGS
        ]
        cells = [
            BatchCell(
                ctx.program, ctx.trace, config, hints=hints,
                benchmark=spec.name, warm_words=warm,
            )
            for config in configs
        ]
        grouped = run_batch(cells)
    except Exception as exc:
        tb = traceback.format_exc(limit=3)
        return [
            Finding(
                seed=spec.seed, kind="crash", mode=GANG_MODE,
                engine="batch",
                detail=f"{type(exc).__name__}: {exc} | {tb.strip()}",
                spec=spec,
            )
        ]
    findings: List[Finding] = []
    for config, got in zip(configs, grouped):
        lane = (
            f"w={config.fetch_width} d={config.pipeline_depth} "
            f"rob={config.rob_size} rw={config.retire_width}"
        )
        try:
            ref = ctx.simulate(GANG_MODE, config.replace(engine="reference"))
        except Exception as exc:
            findings.append(
                Finding(
                    seed=spec.seed, kind="crash", mode=GANG_MODE,
                    engine="reference",
                    detail=f"lane {lane}: {type(exc).__name__}: {exc}",
                    spec=spec,
                )
            )
            continue
        diff = _stat_diff(ref, got)
        if diff:
            findings.append(
                Finding(
                    seed=spec.seed, kind="divergence", mode=GANG_MODE,
                    engine="both",
                    detail=(
                        f"ganged batch lane ({lane}) disagrees with "
                        f"reference on {len(diff)} SimStats field(s)"
                    ),
                    stat_diff=diff,
                    spec=spec,
                )
            )
    return findings


def check_spec(
    spec: FuzzSpec,
    modes: Sequence[str] = FUZZ_MODES,
    thresholds: Optional[SelectionThresholds] = None,
    cycle_limit: Optional[int] = None,
    engines: Sequence[str] = _ENGINES,
    harden: bool = True,
) -> List[Finding]:
    """Differential-check one spec; the empty list means it passed.

    ``engines[0]`` is the trusted reference; every other engine is
    diffed against it.  By default every simulation runs hardened
    (oracle + watchdog); pass ``harden=False`` to run the configs as-is
    — that is how the batch engine's *vector* path gets covered, since
    a hardened config always takes its scalar fallback.  The first
    failure per ``(mode, engine)`` cell is recorded and the sweep
    continues, so one bad mode does not mask another."""
    findings: List[Finding] = []
    ctx = FuzzProgram(spec, thresholds)
    try:
        _ = ctx.trace  # build + functional run
    except Exception as exc:  # pragma: no cover - generator bugs only
        return [
            Finding(
                seed=spec.seed,
                kind="generator",
                mode="build",
                engine="-",
                detail=f"{type(exc).__name__}: {exc}",
                spec=spec,
            )
        ]

    configs = mode_configs()
    for mode in modes:
        if mode == GANG_MODE:
            # The gang band runs its own group-shaped check: many batch
            # lanes in one run_batch call, each diffed against the
            # reference engine.  ``harden`` does not apply — a hardened
            # cell would take the scalar fallback and gang nothing.
            findings.extend(_check_gang(ctx, spec))
            continue
        base = configs[mode]
        if harden:
            base = base.hardened(cycle_limit)
        try:
            ctx.hints_for(mode)
        except Exception as exc:
            findings.append(
                Finding(
                    seed=spec.seed,
                    kind="crash",
                    mode=mode,
                    engine="-",
                    detail=(
                        f"hint derivation failed: "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    spec=spec,
                )
            )
            continue
        stats: Dict[str, Optional[SimStats]] = {}
        for engine in engines:
            config = base.replace(engine=engine)
            try:
                stats[engine] = ctx.simulate(mode, config)
            except SimulationHangError as exc:
                stats[engine] = None
                findings.append(
                    Finding(
                        seed=spec.seed, kind="hang", mode=mode,
                        engine=engine, detail=str(exc), spec=spec,
                    )
                )
            except OracleMismatchError as exc:
                stats[engine] = None
                findings.append(
                    Finding(
                        seed=spec.seed, kind="oracle", mode=mode,
                        engine=engine, detail=str(exc), spec=spec,
                    )
                )
            except Exception as exc:
                stats[engine] = None
                tb = traceback.format_exc(limit=3)
                findings.append(
                    Finding(
                        seed=spec.seed, kind="crash", mode=mode,
                        engine=engine,
                        detail=f"{type(exc).__name__}: {exc} | {tb.strip()}",
                        spec=spec,
                    )
                )
        ref = stats.get(engines[0])
        if ref is not None:
            for engine in engines[1:]:
                other = stats.get(engine)
                if other is None:
                    continue
                diff = _stat_diff(ref, other)
                if diff:
                    findings.append(
                        Finding(
                            seed=spec.seed,
                            kind="divergence",
                            mode=mode,
                            engine="both",
                            detail=(
                                f"engines disagree ({engines[0]} vs "
                                f"{engine}) on {len(diff)} "
                                f"SimStats field(s)"
                            ),
                            stat_diff=diff,
                            spec=spec,
                        )
                    )
    return findings


@dataclasses.dataclass
class FuzzReport:
    """Result of one fuzz sweep (JSON layout: ``REPORT_SCHEMA``)."""

    seeds: List[int]
    checked: int
    findings: List[Finding]
    elapsed_seconds: float = 0.0
    jobs: int = 1
    minimized: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict:
        from repro.fuzz.corpus import spec_to_dict

        return {
            "schema": REPORT_SCHEMA,
            "seeds": self.seeds,
            "checked": self.checked,
            "jobs": self.jobs,
            "minimized": self.minimized,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "findings": [
                {
                    "seed": f.seed,
                    "kind": f.kind,
                    "mode": f.mode,
                    "engine": f.engine,
                    "detail": f.detail,
                    "stat_diff": list(f.stat_diff),
                    "minimized": f.minimized,
                    "static_instructions": f.static_instructions,
                    "spec": spec_to_dict(f.spec) if f.spec else None,
                }
                for f in self.findings
            ],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.checked} seed(s) checked, "
            f"{len(self.findings)} finding(s), "
            f"{self.elapsed_seconds:.1f}s (jobs={self.jobs})"
        ]
        lines.extend("  " + f.summary() for f in self.findings)
        return "\n".join(lines)


# -- process-pool plumbing (the repro.harness.parallel pattern) -----------

_WORKER_ARGS: Tuple = ()


def _init_fuzz_worker(payload: bytes) -> None:
    global _WORKER_ARGS
    _WORKER_ARGS = pickle.loads(payload)


def _check_seed(seed: int) -> Tuple[int, List[Finding]]:
    knobs, modes, thresholds, cycle_limit, engines, harden = _WORKER_ARGS
    spec = draw_spec(seed, knobs)
    return seed, check_spec(
        spec, modes=modes, thresholds=thresholds, cycle_limit=cycle_limit,
        engines=engines, harden=harden,
    )


def run_fuzz(
    seeds: Iterable[int],
    budget: Optional[int] = None,
    jobs: int = 1,
    minimize: bool = False,
    knobs: Optional[FuzzKnobs] = None,
    modes: Sequence[str] = FUZZ_MODES,
    thresholds: Optional[SelectionThresholds] = None,
    cycle_limit: Optional[int] = None,
    engines: Sequence[str] = _ENGINES,
    harden: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Sweep ``seeds`` (capped at ``budget``) through the differential
    check; optionally shrink each finding's spec with the delta
    minimizer.  ``jobs > 1`` fans seeds over a process pool; findings
    merge in seed order, so a parallel sweep reports identically to a
    serial one."""
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    seed_list = list(seeds)
    if budget is not None:
        seed_list = seed_list[:budget]
    knobs = knobs or FuzzKnobs()
    start = time.perf_counter()
    by_seed: Dict[int, List[Finding]] = {}

    if jobs > 1 and len(seed_list) > 1:
        payload = pickle.dumps(
            (knobs, tuple(modes), thresholds, cycle_limit, tuple(engines),
             harden),
            protocol=4,
        )
        with multiprocessing.Pool(
            processes=min(jobs, len(seed_list)),
            initializer=_init_fuzz_worker,
            initargs=(payload,),
        ) as pool:
            for seed, findings in pool.imap_unordered(
                _check_seed, seed_list, chunksize=4
            ):
                by_seed[seed] = findings
                if progress and findings:
                    progress(f"seed {seed}: {len(findings)} finding(s)")
    else:
        for seed in seed_list:
            spec = draw_spec(seed, knobs)
            findings = check_spec(
                spec, modes=modes, thresholds=thresholds,
                cycle_limit=cycle_limit, engines=engines, harden=harden,
            )
            by_seed[seed] = findings
            if progress and findings:
                progress(f"seed {seed}: {len(findings)} finding(s)")

    findings: List[Finding] = []
    for seed in seed_list:  # caller order, not completion order
        findings.extend(by_seed.get(seed, []))

    if minimize and findings:
        from repro.fuzz.minimize import minimize_finding

        findings = [
            minimize_finding(
                finding,
                modes=modes,
                thresholds=thresholds,
                cycle_limit=cycle_limit,
                engines=engines,
                harden=harden,
            )
            for finding in findings
        ]

    return FuzzReport(
        seeds=seed_list,
        checked=len(seed_list),
        findings=findings,
        elapsed_seconds=time.perf_counter() - start,
        jobs=jobs,
        minimized=minimize,
    )
