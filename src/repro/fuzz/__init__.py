"""Differential fuzzing of the simulation engines (docs/robustness.md).

The repo carries several correctness contracts that are cheap to state
and expensive to trust:

* the ``fast`` and ``reference`` engines must produce bit-identical
  :class:`~repro.uarch.stats.SimStats` under every machine mode;
* every hardened run must satisfy the oracle cross-checker (the timing
  run retires the exact functional trace, dpred invariants hold);
* no structurally-valid program may hang or crash the simulator.

The 15 hand-built benchmarks exercise these contracts on *curated*
control flow.  This package exercises them on *adversarial* control
flow: a seeded random program generator
(:mod:`repro.fuzz.generator`) emits structurally-valid mini-ISA
programs full of nested/overlapping hammocks, multi-exit loops,
short-leg diverge regions and dispatch chains; a differential harness
(:mod:`repro.fuzz.harness`) runs each one across every
``engine x machine-mode`` cell with the oracle and watchdog armed and
records any divergence, oracle failure, hang or crash as a *finding*;
a delta-debugging minimizer (:mod:`repro.fuzz.minimize`) shrinks a
failing program to a small reproducer; and :mod:`repro.fuzz.corpus`
persists minimized reproducers under ``tests/fuzz/corpus/`` where they
replay forever as ordinary tier-1 regression tests.

Entry points: ``python -m repro fuzz`` (CLI) or
:func:`repro.fuzz.harness.run_fuzz` (library).
"""

from repro.fuzz.generator import (
    FUZZ_GADGET_KINDS,
    FuzzGadget,
    FuzzKnobs,
    FuzzSpec,
    build_fuzz_workload,
    draw_spec,
    static_instruction_count,
)
from repro.fuzz.harness import (
    FUZZ_MODES,
    GANG_MODE,
    GANG_SIZINGS,
    Finding,
    FuzzProgram,
    FuzzReport,
    check_spec,
    mode_configs,
    run_fuzz,
)
from repro.fuzz.minimize import minimize_finding, minimize_spec
from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    DEFAULT_CORPUS_DIR,
    load_corpus,
    save_reproducer,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "FUZZ_GADGET_KINDS",
    "FUZZ_MODES",
    "GANG_MODE",
    "GANG_SIZINGS",
    "CORPUS_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "Finding",
    "FuzzGadget",
    "FuzzKnobs",
    "FuzzProgram",
    "FuzzReport",
    "FuzzSpec",
    "build_fuzz_workload",
    "check_spec",
    "draw_spec",
    "load_corpus",
    "minimize_finding",
    "minimize_spec",
    "mode_configs",
    "run_fuzz",
    "save_reproducer",
    "spec_from_dict",
    "spec_to_dict",
    "static_instruction_count",
]
