"""Seeded random mini-ISA program generator for differential fuzzing.

Where :mod:`repro.workloads.generator` composes *curated* gadgets into
benchmarks that mimic published SPEC behaviour, this generator draws
*adversarial* control-flow shapes — the CFG patterns the DMP state
machine (diverge episodes, CFM matching, Table 1 exits, select-uop
merges) has to survive but the 15 benchmarks never stress:

=================  =====================================================
``hammock``        plain if hammock (the DHP/DMP bread-and-butter)
``ifelse``         if-else hammock with work on both arms
``shortleg``       hammock whose frequently-executed leg is one
                   instruction long (short-leg diverge region: episode
                   enters and merges almost immediately)
``nest``           hammocks nested to a drawn depth, each level with its
                   own data-driven branch
``overlap``        two regions sharing a tail block: one arm of the
                   outer branch jumps *into* the other arm's
                   continuation, so the region is not a hammock and the
                   CFM point is the far post-dominator
``dispatch``       indirect-ish dispatch chain: a loaded selector walks
                   a compare-and-branch ladder into one of ``arms``
                   bodies that all rejoin (switch lowering)
``multiexit_loop`` bounded loop with a second, data-dependent break exit
                   (two loop exits, one loop-carried diverge branch)
``loop``           plain counted inner loop (1..``trips`` trips)
``call``           hammock with a helper-function call on one arm
``mem``            dependent load/store over a drawn footprint
``fp``             floating-point dependency chain
``straight``       straight-line filler (dilutes branchiness)
=================  =====================================================

Every shape is described by a plain :class:`FuzzGadget` dataclass and
the whole program by a :class:`FuzzSpec`, so a generated program is
(a) perfectly reproducible from its spec, (b) serializable into the
counterexample corpus (:mod:`repro.fuzz.corpus`) and (c) shrinkable by
the delta-debugging minimizer (:mod:`repro.fuzz.minimize`), which only
ever edits the spec and rebuilds.

Termination is guaranteed by construction: the single outer loop runs
``iterations`` times and every inner loop is bounded by a counter
derived from a loaded data value (1..``trips``).  Branch entropy comes
from the same seeded behaviour arrays the workload suite uses
(:mod:`repro.workloads.behaviors`), so branch predictability is a
drawable knob.

Register conventions follow the workload generator: ``r3`` is the outer
loop index, ``r4``–``r8`` per-gadget data values, ``r10``–``r12`` inner
loop counters/selectors, ``r13``–``r16`` filler scratch, ``r27``/``r28``
merge accumulators.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import List, Optional, Tuple

from repro.cfg.builder import BlockHandle, CFGBuilder
from repro.isa.instructions import Condition
from repro.program.memory import Memory
from repro.program.program import Program
from repro.workloads import behaviors
from repro.workloads.generator import Workload, _ArrayAllocator, _emit_work

#: Data arrays live where the workload suite puts them.
_DATA_BASE = 1_000_000
_HEAP_BASE = 50_000_000

FUZZ_GADGET_KINDS = (
    "hammock",
    "ifelse",
    "shortleg",
    "nest",
    "overlap",
    "dispatch",
    "multiexit_loop",
    "loop",
    "call",
    "mem",
    "fp",
    "straight",
)

#: Branch-data behaviours the generator draws from, worst first: coin
#: flips (never predictable — always diverge-selected), noisy patterns
#: (hard-ish), and biased easy branches (confidence stays high, so the
#: machine mostly predicts through them).
_DATA_POOL: Tuple[Tuple, ...] = (
    ("uniform",),
    ("periodic", (30, 200, 70, 190, 110, 240), 0.25),
    ("periodic", (40, 200, 90, 180), 0.1),
    ("biased", 0.85),
    ("biased", 0.15),
    ("biased", 0.5),
)


@dataclasses.dataclass
class FuzzGadget:
    """One drawn control-flow shape inside a fuzz program."""

    kind: str
    #: Primary branch-value behaviour (see workloads.behaviors).
    data: Tuple = ("uniform",)
    #: Secondary behaviour (inner branches, break conditions, overlap
    #: cross-jumps).
    inner_data: Tuple = ("uniform",)
    threshold: int = 128
    #: Filler ALU instructions per arm/body.
    work: int = 2
    #: Instructions in the merge/continuation block (>= 1: blocks must
    #: be non-empty so they have a ``first_pc`` to merge at).
    merge_work: int = 1
    #: Nesting depth for ``nest``/``overlap``.
    depth: int = 2
    #: Ladder arms for ``dispatch``.
    arms: int = 3
    #: Inner-loop trip bound (1..trips) for loop kinds.
    trips: int = 3
    #: Word footprint of ``mem``.
    footprint: int = 1 << 10
    #: Access pattern for ``mem``: "chase" or "stride".
    access: str = "chase"

    def __post_init__(self) -> None:
        if self.kind not in FUZZ_GADGET_KINDS:
            raise ValueError(f"unknown fuzz gadget kind {self.kind!r}")
        if self.merge_work < 1:
            raise ValueError("merge_work must be >= 1 (blocks are non-empty)")
        if self.depth < 1 or self.arms < 2 or self.trips < 1:
            raise ValueError("depth >= 1, arms >= 2, trips >= 1 required")


@dataclasses.dataclass
class FuzzSpec:
    """A complete fuzz-program definition (the minimizer's substrate)."""

    seed: int
    iterations: int = 120
    gadgets: List[FuzzGadget] = dataclasses.field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"fuzz-{self.seed}"
        if ":" in self.name:
            # The workload generator's data-seed tags are colon-joined;
            # a colon in the name could alias two different specs' data
            # streams (see repro.workloads.generator._WorkloadBuilder).
            raise ValueError("fuzz program names must not contain ':'")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")

    def replace(self, **overrides) -> "FuzzSpec":
        spec = dataclasses.replace(self, **overrides)
        return spec


@dataclasses.dataclass(frozen=True)
class FuzzKnobs:
    """Size/branchiness/memory knobs bounding what :func:`draw_spec`
    may draw.  The defaults keep one program's dynamic footprint around
    10–30k instructions: large enough to trip every episode type, small
    enough that a 200-seed sweep stays interactive."""

    min_gadgets: int = 1
    max_gadgets: int = 4
    iterations: int = 120
    #: Probability that a drawn gadget is a branching shape (the rest
    #: are mem/fp/straight filler).
    branchiness: float = 0.8
    #: Probability that a branching gadget is one of the gnarly shapes
    #: (nest/overlap/dispatch/multiexit_loop) rather than a hammock.
    gnarl: float = 0.6
    max_depth: int = 3
    max_arms: int = 5
    max_trips: int = 4
    max_work: int = 6
    max_footprint_log2: int = 12

    def __post_init__(self) -> None:
        if self.min_gadgets < 1 or self.max_gadgets < self.min_gadgets:
            raise ValueError("need 1 <= min_gadgets <= max_gadgets")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")


_BRANCHY = (
    "hammock", "ifelse", "shortleg", "call",
)
_GNARLY = ("nest", "overlap", "dispatch", "multiexit_loop", "loop")
_FILLER = ("mem", "fp", "straight")


def draw_spec(seed: int, knobs: Optional[FuzzKnobs] = None) -> FuzzSpec:
    """Draw one program specification from a seed.

    The draw is a pure function of ``(seed, knobs)`` — the same pair
    always yields the same spec, and therefore (via
    :func:`build_fuzz_workload`) the same program bit for bit.
    """
    knobs = knobs or FuzzKnobs()
    rng = random.Random(seed)
    count = rng.randint(knobs.min_gadgets, knobs.max_gadgets)
    gadgets: List[FuzzGadget] = []
    for _ in range(count):
        if rng.random() < knobs.branchiness:
            if rng.random() < knobs.gnarl:
                kind = rng.choice(_GNARLY)
            else:
                kind = rng.choice(_BRANCHY)
        else:
            kind = rng.choice(_FILLER)
        gadgets.append(
            FuzzGadget(
                kind=kind,
                data=rng.choice(_DATA_POOL),
                inner_data=rng.choice(_DATA_POOL),
                threshold=rng.choice((96, 128, 160)),
                work=rng.randint(1, knobs.max_work),
                merge_work=rng.randint(1, 2),
                depth=rng.randint(1, knobs.max_depth),
                arms=rng.randint(2, knobs.max_arms),
                trips=rng.randint(1, knobs.max_trips),
                footprint=1 << rng.randint(6, knobs.max_footprint_log2),
                access=rng.choice(("chase", "stride")),
            )
        )
    return FuzzSpec(seed=seed, iterations=knobs.iterations, gadgets=gadgets)


def _data_seed(spec: FuzzSpec, index: int, stream: str) -> int:
    """Collision-resistant per-array data seed.

    Unlike the workload generator's colon-joined crc32 tags, this hashes
    an unambiguous ``repr`` tuple with a 64-bit digest, so two distinct
    ``(spec seed, gadget, stream)`` coordinates cannot alias a data
    array (the determinism-audit contract; see tests/fuzz).
    """
    tag = repr((spec.seed, spec.name, index, stream)).encode()
    return int.from_bytes(
        hashlib.blake2b(tag, digest_size=8).digest(), "big"
    )


def _materialize(data: Tuple, length: int, seed: int) -> List[int]:
    kind = data[0]
    if kind == "uniform":
        return behaviors.uniform(length, seed)
    if kind == "biased":
        return behaviors.biased(length, seed, taken_fraction=data[1])
    if kind == "periodic":
        noise = data[2] if len(data) > 2 else 0.1
        return behaviors.noisy_periodic(length, seed, data[1], noise=noise)
    raise ValueError(f"unknown data behaviour {data!r}")


class _FuzzBuilder:
    """Deterministically lowers a :class:`FuzzSpec` to a sealed program."""

    def __init__(self, spec: FuzzSpec) -> None:
        self.spec = spec
        self.memory = Memory()
        self.arrays = _ArrayAllocator(self.memory, base=_DATA_BASE)
        self.main = CFGBuilder("main")
        self._needs_helper = False

    # -- data -------------------------------------------------------------

    def _load_value(
        self, block: BlockHandle, reg: int, data: Tuple, index: int,
        stream: str,
    ) -> None:
        values = _materialize(
            data, self.spec.iterations, _data_seed(self.spec, index, stream)
        )
        base = self.arrays.allocate(values)
        block.load(reg, 3, offset=base)

    # -- gadget emitters ---------------------------------------------------

    def _emit_hammock(self, g: FuzzGadget, p: str, i: int) -> None:
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_M")
        b = self.main.block(f"{p}_B")
        _emit_work(b, max(g.work, 1), i)
        m = self.main.block(f"{p}_M")
        _emit_work(m, g.merge_work, i + 7)

    def _emit_ifelse(self, g: FuzzGadget, p: str, i: int) -> None:
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_E")
        t = self.main.block(f"{p}_T")
        _emit_work(t, max(g.work, 1), i)
        t.addi(28, 28, 1)
        t.jmp(f"{p}_M")
        e = self.main.block(f"{p}_E")
        _emit_work(e, max(g.work, 1), i + 1)
        e.addi(28, 28, 2)
        m = self.main.block(f"{p}_M")
        m.add(27, 28, 13)
        _emit_work(m, g.merge_work - 1, i + 7)

    def _emit_shortleg(self, g: FuzzGadget, p: str, i: int) -> None:
        """Short-leg diverge region: the not-taken leg is exactly one
        instruction, so a predicated episode merges almost immediately
        (stresses the enter-then-instantly-match CFM path)."""
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_M")
        b = self.main.block(f"{p}_B")
        b.addi(13, 13, 1)
        m = self.main.block(f"{p}_M")
        _emit_work(m, g.merge_work, i + 7)

    def _emit_nest(self, g: FuzzGadget, p: str, i: int) -> None:
        """Properly *nested* hammocks to ``depth``: each level's branch
        skips its whole inner region to that level's merge, and the
        merges unwind innermost-first (textual order
        A0 B0 A1 B1 ... Mk ... M1 M0), so the outer diverge region
        contains the inner ones — CFM points at every nesting level."""
        for level in range(g.depth):
            reg = 4 + (level % 5)
            a = self.main.block(f"{p}_L{level}_A")
            data = g.data if level == 0 else g.inner_data
            self._load_value(a, reg, data, i + level, f"nest{level}")
            a.br(Condition.GE, reg, imm=g.threshold, taken=f"{p}_L{level}_M")
            b = self.main.block(f"{p}_L{level}_B")
            _emit_work(b, max(g.work, 1), i + level)
        for level in reversed(range(g.depth)):
            m = self.main.block(f"{p}_L{level}_M")
            if level == 0:
                _emit_work(m, g.merge_work, i + 9)
            else:
                m.addi(27, 27, level + 1)

    def _emit_overlap(self, g: FuzzGadget, p: str, i: int) -> None:
        """Overlapping regions sharing a tail: the outer branch's
        not-taken arm re-branches *into* the taken arm's continuation
        (T2), so neither inner region is a hammock and the only common
        post-dominator is the far merge block."""
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        self._load_value(a, 5, g.inner_data, i, "cross")
        a.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_C")
        b = self.main.block(f"{p}_B")
        _emit_work(b, max(g.work, 1), i)
        b.br(Condition.GE, 5, imm=128, taken=f"{p}_T2")
        t1 = self.main.block(f"{p}_T1")
        _emit_work(t1, max(g.work, 1), i + 1)
        t1.jmp(f"{p}_M")
        c = self.main.block(f"{p}_C")
        _emit_work(c, max(g.work, 1), i + 2)
        t2 = self.main.block(f"{p}_T2")
        _emit_work(t2, max(g.work, 1), i + 3)
        m = self.main.block(f"{p}_M")
        _emit_work(m, g.merge_work, i + 7)

    def _emit_dispatch(self, g: FuzzGadget, p: str, i: int) -> None:
        """Compare-and-branch ladder over a loaded selector — the
        mini-ISA lowering of an indirect dispatch: ``arms`` case bodies
        that all rejoin at one continuation."""
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        # Selector in [0, arms): mask to the next power of two, then a
        # final ladder arm catches the overflow values.
        mask = 1
        while mask < g.arms:
            mask <<= 1
        a.andi(10, 4, mask - 1)
        for arm in range(g.arms - 1):
            ladder = a if arm == 0 else self.main.block(f"{p}_D{arm}")
            ladder.br(Condition.EQ, 10, imm=arm, taken=f"{p}_C{arm}")
        # Fall-through default arm.
        default = self.main.block(f"{p}_Cdef")
        _emit_work(default, max(g.work, 1), i)
        default.jmp(f"{p}_M")
        for arm in range(g.arms - 1):
            body = self.main.block(f"{p}_C{arm}")
            _emit_work(body, max(g.work, 1), i + arm + 1)
            body.addi(28, 28, arm + 1)
            body.jmp(f"{p}_M")
        m = self.main.block(f"{p}_M")
        _emit_work(m, g.merge_work, i + 7)

    def _emit_multiexit_loop(self, g: FuzzGadget, p: str, i: int) -> None:
        """Bounded loop with a data-dependent break: exit either from
        the header (count exhausted) or from the body (break value
        crossed the threshold), two distinct exit blocks."""
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        self._load_value(a, 5, g.inner_data, i, "break")
        a.andi(10, 4, _trip_mask(g.trips))
        a.addi(10, 10, 1)
        a.movi(11, 0)
        h = self.main.block(f"{p}_H")
        h.br(Condition.GE, 11, 10, taken=f"{p}_X")
        b = self.main.block(f"{p}_B")
        _emit_work(b, max(g.work, 1), i)
        # March the break value toward the threshold so the break
        # triggers on different iterations for different data.
        b.addi(5, 5, 64)
        b.br(Condition.GE, 5, imm=256 + g.threshold, taken=f"{p}_X2")
        b2 = self.main.block(f"{p}_B2")
        b2.addi(11, 11, 1)
        b2.jmp(f"{p}_H")
        x2 = self.main.block(f"{p}_X2")
        _emit_work(x2, max(g.work, 1), i + 1)
        x = self.main.block(f"{p}_X")
        _emit_work(x, g.merge_work, i + 7)

    def _emit_loop(self, g: FuzzGadget, p: str, i: int) -> None:
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.andi(10, 4, _trip_mask(g.trips))
        a.addi(10, 10, 1)
        a.movi(11, 0)
        h = self.main.block(f"{p}_H")
        h.br(Condition.GE, 11, 10, taken=f"{p}_X")
        b = self.main.block(f"{p}_B")
        _emit_work(b, max(g.work, 1), i)
        b.addi(11, 11, 1)
        b.jmp(f"{p}_H")
        x = self.main.block(f"{p}_X")
        _emit_work(x, g.merge_work, i + 7)

    def _emit_call(self, g: FuzzGadget, p: str, i: int) -> None:
        self._needs_helper = True
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_E")
        t = self.main.block(f"{p}_T")
        _emit_work(t, max(g.work, 1), i)
        t.call("helper")
        tc = self.main.block(f"{p}_TC")
        tc.jmp(f"{p}_M")
        e = self.main.block(f"{p}_E")
        _emit_work(e, max(g.work, 1), i + 1)
        m = self.main.block(f"{p}_M")
        _emit_work(m, g.merge_work, i + 7)

    def _emit_mem(self, g: FuzzGadget, p: str, i: int) -> None:
        if g.access == "chase":
            indices = behaviors.pointer_chase_indices(
                self.spec.iterations,
                _data_seed(self.spec, i, "mem"),
                g.footprint,
            )
        else:
            indices = behaviors.strided_indices(
                self.spec.iterations, stride=3, footprint=g.footprint
            )
        index_base = self.arrays.allocate(indices)
        a = self.main.block(f"{p}_A")
        a.load(12, 3, offset=index_base)
        a.load(15, 12, offset=_HEAP_BASE)
        a.add(27, 15, 3)
        _emit_work(a, max(g.work, 1), i)
        a.store(27, 12, offset=_HEAP_BASE)

    def _emit_fp(self, g: FuzzGadget, p: str, i: int) -> None:
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        a.fadd(20, 27, 4)
        a.fmul(21, 20, 4)
        a.fdiv(22, 21, 4)
        a.add(27, 22, 4)
        _emit_work(a, max(g.work - 1, 0), i)

    def _emit_straight(self, g: FuzzGadget, p: str, i: int) -> None:
        a = self.main.block(f"{p}_A")
        self._load_value(a, 4, g.data, i, "primary")
        _emit_work(a, max(g.work, 1), i)

    # -- assembly ----------------------------------------------------------

    def build(self) -> Workload:
        spec = self.spec
        init = self.main.block("init")
        init.movi(3, 0)
        head = self.main.block("head")
        head.br(Condition.GE, 3, imm=spec.iterations, taken="exit")
        for index, gadget in enumerate(spec.gadgets):
            emitter = getattr(self, f"_emit_{gadget.kind}")
            emitter(gadget, f"g{index}", index * 16)
        step = self.main.block("step")
        step.addi(3, 3, 1)
        step.jmp("head")
        self.main.block("exit").halt()

        program = Program(spec.name)
        program.add_function(self.main.build())
        if self._needs_helper:
            helper = CFGBuilder("helper")
            h = helper.block("h_entry")
            _emit_work(h, 3, 99)
            h.add(27, 13, 14)
            h.ret()
            program.add_function(helper.build())
        program.seal()
        return Workload(spec, program, self.memory)


def _trip_mask(trips: int) -> int:
    """Smallest ``2^k - 1`` mask covering ``0..trips-1``."""
    mask = 1
    while mask < trips:
        mask = (mask << 1) | 1
    return mask


def build_fuzz_workload(spec: FuzzSpec) -> Workload:
    """Build (program + initialized memory) for one fuzz spec.

    The build is deterministic: equal specs produce bit-identical
    programs, data arrays and memory images.
    """
    if not spec.gadgets:
        raise ValueError("fuzz spec needs at least one gadget")
    return _FuzzBuilder(spec).build()


def static_instruction_count(spec: FuzzSpec) -> int:
    """Static instructions of the program ``spec`` builds (reproducer
    size, the minimizer's objective)."""
    return build_fuzz_workload(spec).program.instruction_count()
