"""The committed counterexample corpus (``tests/fuzz/corpus/``).

Every minimized reproducer the fuzzer finds is committed as one small
JSON file — the *spec*, not the program: specs are a few hundred bytes,
diff cleanly in review, and rebuild bit-identically through the
generator.  The tier-1 suite replays every corpus entry through the full
differential check on every run (tests/fuzz/test_corpus_replay.py), so a
bug class that was found once can never silently return.

File layout (schema ``repro-fuzz-corpus/1``)::

    {
      "schema": "repro-fuzz-corpus/1",
      "spec": {"seed": ..., "iterations": ..., "name": ...,
               "gadgets": [{"kind": ..., ...}, ...]},
      "finding": {"kind": ..., "mode": ..., "engine": ..., "detail": ...},
      "static_instructions": ...,
      "notes": "free-form triage context"
    }

Triage workflow: see docs/robustness.md ("Fuzzing & counterexample
corpus").
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.fuzz.generator import FuzzGadget, FuzzSpec

CORPUS_SCHEMA = "repro-fuzz-corpus/1"

#: Repo-relative home of the committed reproducers.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz", "corpus")


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def _tupleize(value):
    if isinstance(value, list):
        return tuple(_tupleize(v) for v in value)
    return value


def spec_to_dict(spec: FuzzSpec) -> Dict:
    """JSON-ready dict for a spec (tuples become lists)."""
    out = dataclasses.asdict(spec)
    for gadget in out["gadgets"]:
        gadget["data"] = _listify(gadget["data"])
        gadget["inner_data"] = _listify(gadget["inner_data"])
    return out


def spec_from_dict(data: Dict) -> FuzzSpec:
    """Rebuild a spec from its JSON dict (inverse of
    :func:`spec_to_dict`; round-trips exactly)."""
    gadgets = []
    for raw in data.get("gadgets", ()):
        fields = dict(raw)
        fields["data"] = _tupleize(fields.get("data", ["uniform"]))
        fields["inner_data"] = _tupleize(fields.get("inner_data", ["uniform"]))
        known = {f.name for f in dataclasses.fields(FuzzGadget)}
        unknown = set(fields) - known
        if unknown:
            raise ReproError(
                f"corpus gadget carries unknown field(s) {sorted(unknown)}"
            )
        gadgets.append(FuzzGadget(**fields))
    return FuzzSpec(
        seed=int(data["seed"]),
        iterations=int(data["iterations"]),
        gadgets=gadgets,
        name=str(data.get("name", "")),
    )


def save_reproducer(
    finding,
    directory: str = DEFAULT_CORPUS_DIR,
    notes: str = "",
) -> str:
    """Write one finding's reproducer into the corpus; returns the path.

    The filename encodes kind/mode/seed so a directory listing reads as
    a triage log; an existing entry for the same coordinates is
    overwritten (re-minimizing an old finding updates it in place)."""
    if finding.spec is None:
        raise ReproError("finding carries no spec; nothing to save")
    from repro.fuzz.generator import static_instruction_count

    os.makedirs(directory, exist_ok=True)
    name = f"{finding.kind}-{finding.mode}-seed{finding.seed}.json"
    path = os.path.join(directory, name)
    entry = {
        "schema": CORPUS_SCHEMA,
        "spec": spec_to_dict(finding.spec),
        "finding": {
            "kind": finding.kind,
            "mode": finding.mode,
            "engine": finding.engine,
            "detail": finding.detail,
            "stat_diff": list(finding.stat_diff),
            "minimized": finding.minimized,
        },
        "static_instructions": (
            finding.static_instructions
            or static_instruction_count(finding.spec)
        ),
        "notes": notes,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> List[Dict]:
    """Load every corpus entry, sorted by filename (deterministic
    replay order).  Each returned dict gains a ``"path"`` key; a file
    with the wrong schema raises :class:`ReproError` rather than being
    skipped — a corrupt corpus should fail loudly in CI."""
    if not os.path.isdir(directory):
        return []
    entries: List[Dict] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ReproError(
                f"corpus entry {path} has schema "
                f"{entry.get('schema')!r}, expected {CORPUS_SCHEMA!r}"
            )
        entry["path"] = path
        entries.append(entry)
    return entries
