"""Delta-debugging minimizer for failing fuzz specs.

Shrinks at the *spec* level, never the instruction level: every
candidate is rebuilt through the generator, so each shrink step yields a
structurally valid program (sealed CFG, bounded loops, matching data
arrays) — the minimizer cannot manufacture a malformed reproducer that
fails for a different reason than the original.

Greedy fixpoint over four move families, cheapest-win first:

1. **drop** — remove whole gadgets one at a time;
2. **straighten** — replace a gnarly gadget (nest/overlap/dispatch/
   multi-exit loop/...) with a plain hammock, and failing that a
   straight-line block (turning branches into fall-through);
3. **shrink** — drive numeric knobs to their floors (work, merge work,
   nesting depth, ladder arms, loop trips, memory footprint);
4. **shorten** — cut ``iterations`` (the dynamic trace) toward a floor
   that still clears the profiler's ``min_executions`` gate.

Every move must keep the caller's failure predicate true, so the result
reproduces the original finding by construction.  The move order and
tie-breaks are deterministic: one failing spec always minimizes to the
same reproducer.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.fuzz.generator import (
    FuzzGadget,
    FuzzSpec,
    static_instruction_count,
)

#: Keep enough dynamic executions for the profiler's selection gates
#: (SelectionThresholds.min_executions = 32) to stay open.
_ITERATION_FLOOR = 40

#: Simplification rank: straighten moves strictly downward.
_KIND_RANK = {"straight": 0, "hammock": 1, "shortleg": 1}

#: Numeric knobs driven toward their floors, in shrink order.
_FIELD_FLOORS = (
    ("work", 1),
    ("merge_work", 1),
    ("depth", 1),
    ("arms", 2),
    ("trips", 1),
    ("footprint", 64),
)


def _with_gadget(spec: FuzzSpec, index: int, gadget: FuzzGadget) -> FuzzSpec:
    gadgets = list(spec.gadgets)
    gadgets[index] = gadget
    return spec.replace(gadgets=gadgets)


def minimize_spec(
    spec: FuzzSpec,
    predicate: Callable[[FuzzSpec], bool],
    max_checks: int = 400,
) -> FuzzSpec:
    """Shrink ``spec`` while ``predicate`` (the failure) stays true.

    ``predicate`` is typically "re-running the differential check still
    produces a finding"; it must hold for the input spec (raises
    :class:`ValueError` otherwise, so a flaky predicate is caught at the
    door instead of silently returning the unshrunk spec).  ``max_checks``
    bounds total predicate evaluations — each one re-simulates the
    candidate, so this is the minimizer's time budget."""
    if not predicate(spec):
        raise ValueError(
            "failure predicate does not hold on the input spec; "
            "nothing to minimize"
        )
    checks = 0

    def holds(candidate: FuzzSpec) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        try:
            return predicate(candidate)
        except Exception:
            # A shrink candidate that breaks the *checker* itself is not
            # a smaller instance of the original failure.
            return False

    changed = True
    while changed and checks < max_checks:
        changed = False

        # 1. drop gadgets (largest static footprint first, so the big
        # wins come before the budget runs out).
        while len(spec.gadgets) > 1:
            order = sorted(
                range(len(spec.gadgets)),
                key=lambda i: -static_instruction_count(
                    spec.replace(gadgets=[spec.gadgets[i]])
                ),
            )
            dropped = False
            for index in order:
                gadgets = list(spec.gadgets)
                del gadgets[index]
                candidate = spec.replace(gadgets=gadgets)
                if holds(candidate):
                    spec = candidate
                    changed = dropped = True
                    break
            if not dropped:
                break

        # 2. straighten: gnarly kind -> hammock -> straight (only ever
        # moving down the rank, so a straight-line gadget cannot
        # "simplify" into a branch).
        for index, gadget in enumerate(spec.gadgets):
            rank = _KIND_RANK.get(gadget.kind, 2)
            for simpler in ("straight", "hammock"):
                if _KIND_RANK[simpler] >= rank:
                    continue
                candidate = _with_gadget(
                    spec, index, dataclasses.replace(gadget, kind=simpler)
                )
                if holds(candidate):
                    spec = candidate
                    gadget = spec.gadgets[index]
                    rank = _KIND_RANK.get(gadget.kind, 2)
                    changed = True
                    break

        # 2b. canonicalize data to plain coin flips.
        for index, gadget in enumerate(spec.gadgets):
            for field in ("data", "inner_data"):
                if getattr(gadget, field) != ("uniform",):
                    candidate = _with_gadget(
                        spec,
                        index,
                        dataclasses.replace(gadget, **{field: ("uniform",)}),
                    )
                    if holds(candidate):
                        spec = candidate
                        gadget = spec.gadgets[index]
                        changed = True

        # 3. shrink numeric knobs straight to their floors.
        for index, gadget in enumerate(spec.gadgets):
            for field, floor in _FIELD_FLOORS:
                if getattr(gadget, field) > floor:
                    candidate = _with_gadget(
                        spec,
                        index,
                        dataclasses.replace(gadget, **{field: floor}),
                    )
                    if holds(candidate):
                        spec = candidate
                        gadget = spec.gadgets[index]
                        changed = True

        # 4. shorten the dynamic trace.
        while spec.iterations > _ITERATION_FLOOR:
            target = max(_ITERATION_FLOOR, spec.iterations // 2)
            candidate = spec.replace(iterations=target)
            if holds(candidate):
                spec = candidate
                changed = True
            else:
                break

    return spec


def minimize_finding(
    finding,
    modes: Optional[Sequence[str]] = None,
    thresholds=None,
    cycle_limit: Optional[int] = None,
    engines: Optional[Sequence[str]] = None,
    harden: bool = True,
    max_checks: int = 400,
):
    """Minimize one harness :class:`~repro.fuzz.harness.Finding`.

    The predicate is "re-checking the candidate still yields a finding
    of the same kind in the same mode" — tighter than "any finding", so
    minimizing an oracle failure cannot drift into reporting an
    unrelated divergence's reproducer.  Returns a copy of the finding
    carrying the shrunk spec and its static instruction count."""
    from repro.fuzz.harness import _ENGINES, FUZZ_MODES, check_spec

    if finding.spec is None or finding.kind == "generator":
        return finding
    modes = tuple(modes) if modes is not None else FUZZ_MODES
    check_modes = (finding.mode,) if finding.mode in modes else modes
    engines = tuple(engines) if engines is not None else _ENGINES

    def still_fails(candidate: FuzzSpec) -> bool:
        found = check_spec(
            candidate,
            modes=check_modes,
            thresholds=thresholds,
            cycle_limit=cycle_limit,
            engines=engines,
            harden=harden,
        )
        return any(
            f.kind == finding.kind and f.mode == finding.mode for f in found
        )

    try:
        spec = minimize_spec(finding.spec, still_fails, max_checks=max_checks)
    except ValueError:
        # Not reproducible under the tightened predicate (e.g. an
        # intermittent environment failure): keep the original evidence.
        return dataclasses.replace(
            finding,
            static_instructions=static_instruction_count(finding.spec),
        )
    return dataclasses.replace(
        finding,
        spec=spec,
        minimized=True,
        static_instructions=static_instruction_count(spec),
    )
