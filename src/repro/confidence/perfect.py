"""Oracle and degenerate confidence estimators.

:class:`PerfectConfidenceEstimator` implements the ``*-perf-conf`` series
of Figure 7: it is "confident" exactly when the branch prediction is about
to be correct, so dynamic predication triggers only on real mispredictions.
Like :class:`~repro.branch.perfect.PerfectPredictor`, it receives the truth
through an oracle channel set by the timing model just before the query.
"""

from __future__ import annotations

from repro.confidence.base import ConfidenceEstimator


class PerfectConfidenceEstimator(ConfidenceEstimator):
    """Low-confidence exactly on actual mispredictions."""

    def __init__(self) -> None:
        self._prediction_will_be_correct = True

    def set_oracle(self, prediction_will_be_correct: bool) -> None:
        self._prediction_will_be_correct = prediction_will_be_correct

    def is_confident(self, pc: int, history: int) -> bool:
        return self._prediction_will_be_correct

    def update(self, pc: int, history: int, was_correct: bool) -> None:
        return


class AlwaysConfident(ConfidenceEstimator):
    """Never triggers dynamic predication (degenerates DMP to the baseline)."""

    def is_confident(self, pc: int, history: int) -> bool:
        return True

    def update(self, pc: int, history: int, was_correct: bool) -> None:
        return


class NeverConfident(ConfidenceEstimator):
    """Predicates every candidate branch (stress-tests dpred overhead)."""

    def is_confident(self, pc: int, history: int) -> bool:
        return False

    def update(self, pc: int, history: int, was_correct: bool) -> None:
        return
