"""Confidence estimator interface."""

from __future__ import annotations

import abc


class ConfidenceEstimator(abc.ABC):
    """Estimates, at fetch time, whether a branch prediction is trustworthy.

    ``is_confident`` is consulted when a diverge branch is fetched; a
    ``False`` answer triggers dynamic-predication mode.  ``update`` is
    called at branch retirement with whether the prediction was correct.
    """

    @abc.abstractmethod
    def is_confident(self, pc: int, history: int) -> bool:
        """High confidence in the current prediction for the branch at pc?"""

    @abc.abstractmethod
    def update(self, pc: int, history: int, was_correct: bool) -> None:
        """Train with the resolved outcome."""

    def describe(self) -> str:
        """One-line human-readable summary (used in trace metadata)."""
        return type(self).__name__
