"""JRS confidence estimator (Jacobsen, Rotenberg & Smith, MICRO 1996).

A table of *miss distance counters* (MDCs) indexed by PC xor global
history: each correct prediction increments the entry (saturating), each
misprediction resets it to zero.  A branch is *high confidence* when its
counter has reached the saturation ceiling — i.e., it has been predicted
correctly many times in a row in this history context.

Table 2 gives the paper's instance as "1KB (12-bit history) JRS estimator":
2048 4-bit counters indexed with 12 bits of global history, confident
only at full counter saturation.  That exact configuration is
:meth:`JRSConfidenceEstimator.paper`.  The constructor DEFAULTS are
deliberately different — a 4-bit history index and a sub-saturation
threshold of 12 — because they measure substantially better (coverage
vs. wrong-trigger rate) on the synthetic workloads' shorter
context-reuse distances; do not mistake them for the Table 2 instance.
"""

from __future__ import annotations

from typing import Optional

from repro.confidence.base import ConfidenceEstimator


class JRSConfidenceEstimator(ConfidenceEstimator):
    def __init__(
        self,
        table_size: int = 2048,
        history_bits: int = 4,
        counter_bits: int = 4,
        threshold: Optional[int] = 12,
    ) -> None:
        if table_size & (table_size - 1):
            raise ValueError("table_size must be a power of two")
        self.table_size = table_size
        self.history_bits = history_bits
        self.counter_max = (1 << counter_bits) - 1
        #: counter value at or above which the branch counts as confident
        #: (pass ``None`` for full saturation, the original proposal);
        #: clamped to the counter ceiling.
        if threshold is None:
            self.threshold = self.counter_max
        else:
            self.threshold = min(threshold, self.counter_max)
        self._counters = [0] * table_size

    @classmethod
    def paper(cls) -> "JRSConfidenceEstimator":
        """The Table 2 instance: 1KB of state as 2048 4-bit MDCs, a
        12-bit global-history index, confident only at full saturation
        (the original Jacobsen et al. proposal)."""
        return cls(
            table_size=2048, history_bits=12, counter_bits=4, threshold=None
        )

    def describe(self) -> str:
        return (
            f"jrs(table={self.table_size}, history={self.history_bits}b, "
            f"threshold={self.threshold}/{self.counter_max})"
        )

    def _index(self, pc: int, history: int) -> int:
        masked_history = history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ masked_history) & (self.table_size - 1)

    def is_confident(self, pc: int, history: int) -> bool:
        return self._counters[self._index(pc, history)] >= self.threshold

    def update(self, pc: int, history: int, was_correct: bool) -> None:
        index = self._index(pc, history)
        if was_correct:
            if self._counters[index] < self.counter_max:
                self._counters[index] += 1
        else:
            self._counters[index] = 0
