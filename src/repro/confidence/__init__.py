"""Branch confidence estimation.

DMP enters dynamic-predication mode only for *low-confidence* diverge
branches (Section 2.2).  The paper uses a 1KB JRS estimator with 12-bit
history (Jacobsen, Rotenberg & Smith, MICRO 1996) and contrasts it with a
perfect estimator (``diverge-perf-conf``); both live here, along with
trivial always/never estimators used in tests and ablations.
"""

from repro.confidence.base import ConfidenceEstimator
from repro.confidence.jrs import JRSConfidenceEstimator
from repro.confidence.perfect import (
    AlwaysConfident,
    NeverConfident,
    PerfectConfidenceEstimator,
)

__all__ = [
    "ConfidenceEstimator",
    "JRSConfidenceEstimator",
    "PerfectConfidenceEstimator",
    "AlwaysConfident",
    "NeverConfident",
]


def make_estimator(kind: str, **kwargs) -> ConfidenceEstimator:
    """Factory: ``jrs``, ``perfect``, ``always`` or ``never``."""
    estimators = {
        "jrs": JRSConfidenceEstimator,
        "perfect": PerfectConfidenceEstimator,
        "always": AlwaysConfident,
        "never": NeverConfident,
    }
    if kind not in estimators:
        raise ValueError(f"unknown confidence estimator {kind!r}")
    return estimators[kind](**kwargs)
