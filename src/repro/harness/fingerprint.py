"""Canonical fingerprints for experiment keying.

Both the in-memory simulation memo (:meth:`BenchmarkContext.simulate`)
and the on-disk artifact cache (:mod:`repro.harness.cache`) need a key
that identifies "the same experiment".  ``repr()`` is not that key:

* dict-valued fields (``predictor_args``/``confidence_args``) render in
  insertion order, so two equal configs can produce different reprs
  (wasted runs), and
* a field accidentally omitted from a future ``__repr__`` would make
  two *different* configs collide onto the same key — silently
  returning the wrong cached stats.

The canonicalizer here walks every dataclass field via
``dataclasses.fields`` (nothing can be omitted), sorts dict/set members,
and hashes the result, so the fingerprint is total over the object's
data and independent of insertion order.  ``_FORMAT_VERSION`` is folded
into every digest: bump it when the canonical form (or the meaning of a
cached artifact) changes, and every old cache entry invalidates itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Optional

from repro.uarch.config import MachineConfig

#: Bump to invalidate every previously-computed fingerprint (and with
#: them all on-disk cache entries).
_FORMAT_VERSION = 1


def canonicalize(obj: Any) -> Any:
    """A deterministic, order-independent structure for ``obj``.

    Supports primitives, bytes, sequences, dicts/sets (sorted), and
    dataclasses (every field, sorted by name).  Raises ``TypeError`` on
    anything else rather than guessing — an unfingerprintable object in
    a cache key is a correctness bug, not an inconvenience.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        names = sorted(f.name for f in dataclasses.fields(obj))
        return (
            "dataclass",
            type(obj).__qualname__,
            tuple((name, canonicalize(getattr(obj, name))) for name in names),
        )
    if isinstance(obj, dict):
        items = sorted(
            (repr(canonicalize(k)), canonicalize(v)) for k, v in obj.items()
        )
        return ("dict", tuple(items))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonicalize(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonicalize(v)) for v in obj)))
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        # Include the type name: 1 vs 1.0 vs True must not collide.
        return ("lit", type(obj).__name__, obj)
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!s} for fingerprinting"
    )


def fingerprint(obj: Any) -> str:
    """Hex SHA-256 of the canonical form of ``obj``."""
    payload = repr((_FORMAT_VERSION, canonicalize(obj)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Canonical key for one machine configuration."""
    return fingerprint(config)


def context_fingerprint(
    name: str, iterations: Optional[int], seed: int, thresholds: Any
) -> str:
    """Canonical key for one benchmark context's machine-independent
    artifacts: ``(benchmark, iterations, seed, selection thresholds)``."""
    return fingerprint(("context", name, iterations, seed, thresholds))


def workload_fingerprint(spec: Any) -> str:
    """Canonical key for one workload *specification* (a
    :class:`~repro.workloads.generator.WorkloadSpec` or a
    :class:`~repro.fuzz.generator.FuzzSpec`).

    The canonicalizer walks every dataclass field — the generation
    ``seed`` included — so two specs that differ only in seed (or in any
    gadget knob) can never alias one cached artifact.  This is the
    determinism-audit contract for generated programs: everything the
    builder's ``random.Random`` streams descend from is in the key
    (tests/fuzz/test_determinism.py)."""
    return fingerprint(("workload", spec))
