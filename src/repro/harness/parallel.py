"""Process-pool fan-out of ``(benchmark, config)`` simulations.

The timing simulations dominate a suite's wall clock and are
embarrassingly parallel once the machine-independent artifacts exist.
:func:`run_simulations_parallel` therefore:

1. materializes every artifact (trace, profile, hint tables) in the
   parent — through the on-disk cache when one is attached — so workers
   never duplicate profiling work;
2. resolves cells already satisfied by the in-memory memo or the
   persistent cache;
3. ships the prepared contexts to each worker once (pickled via the
   pool initializer, so it works under ``fork``, ``forkserver`` and
   ``spawn`` start methods alike) and fans the remaining cells out;
4. merges results deterministically — insertion order is the caller's
   ``benchmarks x configs`` order, never completion order — and stores
   fresh stats back into the parent's memo and cache.

Workers inherit the process-wide paranoid flag, so the PR-1 oracle
cross-checker and watchdog stay armed inside the pool exactly as they
would serially; simulation is deterministic, so a parallel run is
bit-identical to a serial one (asserted by the test suite).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.runtime import paranoid_enabled, set_paranoid

#: Per-worker context table, installed by :func:`_init_worker`.
_WORKER_CONTEXTS: Dict[str, "BenchmarkContext"] = {}


def _init_worker(payload: bytes, paranoid_flag: bool) -> None:
    global _WORKER_CONTEXTS
    _WORKER_CONTEXTS = pickle.loads(payload)
    set_paranoid(paranoid_flag)


def _run_cell(task: Tuple[str, str, MachineConfig, str]):
    """Simulate one ``(benchmark, label)`` cell inside a worker.

    When the cell carries a trace path, the worker streams the cell's
    event trace there itself — trace files are per-cell, so the merge
    back in the parent needs no event shuffling and stays deterministic
    (the parent's caller-order iteration; docs/observability.md)."""
    benchmark, label, config, trace_file = task
    context = _WORKER_CONTEXTS[benchmark]
    tracer = None
    if trace_file is not None:
        from repro.obs.events import JsonlTracer

        tracer = JsonlTracer(
            trace_file,
            meta={
                "benchmark": benchmark,
                "config": label,
                "iterations": context.iterations,
                "seed": context.seed,
            },
        )
    start = time.perf_counter()
    try:
        stats = context.simulate(config, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    return benchmark, label, stats, time.perf_counter() - start


class ParallelStats:
    """Stats for every requested cell, plus worker-side accounting."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str], SimStats] = {}
        #: Aggregate simulation seconds across all workers.
        self.worker_seconds: float = 0.0
        #: Simulations actually executed in workers (cache hits excluded).
        self.worker_runs: int = 0

    def __getitem__(self, cell: Tuple[str, str]) -> SimStats:
        return self._cells[cell]

    def __setitem__(self, cell: Tuple[str, str], stats: SimStats) -> None:
        self._cells[cell] = stats

    def __len__(self) -> int:
        return len(self._cells)


def run_simulations_parallel(
    contexts: List["BenchmarkContext"],
    configs: Dict[str, MachineConfig],
    jobs: int,
    verbose: bool = False,
    trace_dir: str = None,
) -> ParallelStats:
    """Fill every ``(benchmark, label)`` cell, fanning uncached cells
    over a ``multiprocessing`` pool of ``jobs`` workers.

    With ``trace_dir`` set, every cell runs in a worker and streams its
    own JSONL event trace — cached stats cannot produce the event
    stream, so stage 1's cache resolution is skipped entirely."""
    out = ParallelStats()
    by_name = {context.name: context for context in contexts}
    if len(by_name) != len(contexts):
        raise ReproError("duplicate benchmark contexts in parallel run")
    if trace_dir is not None:
        from repro.obs.runtime import trace_path

    # Stage 1: resolve cells the memo / persistent cache already has
    # (no artifacts needed to compute the keys — a fully cache-warm run
    # skips profiling entirely).  Traced runs resolve nothing here.
    pending: List[Tuple[str, str, MachineConfig, str]] = []
    for context in contexts:
        for label, config in configs.items():
            stats = None if trace_dir is not None else (
                context.cached_stats(config)
            )
            if stats is not None:
                out[(context.name, label)] = stats
            else:
                trace_file = (
                    trace_path(trace_dir, context.name, label)
                    if trace_dir is not None
                    else None
                )
                pending.append((context.name, label, config, trace_file))

    if not pending:
        return out

    # Stage 2: machine-independent artifacts for the contexts that still
    # have work, built (or cache-loaded) once in the parent.
    config_list = list(configs.values())
    pending_names = {task[0] for task in pending}
    for context in contexts:
        if context.name in pending_names:
            context.prepare(config_list)

    # Stage 3: fan the rest out.  Contexts travel once per worker via
    # the initializer; BenchmarkContext.__getstate__ drops the cache
    # handle, so only the parent ever touches the cache directory.
    payload = pickle.dumps(
        {name: by_name[name] for name in pending_names}, protocol=4
    )
    workers = min(jobs, len(pending))
    with multiprocessing.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(payload, paranoid_enabled()),
    ) as pool:
        for benchmark, label, stats, elapsed in pool.imap_unordered(
            _run_cell, pending, chunksize=1
        ):
            out[(benchmark, label)] = stats
            out.worker_seconds += elapsed
            out.worker_runs += 1
            # Stage 4 (incremental): adopt into the parent memo + cache.
            by_name[benchmark].store_stats(configs[label], stats)
            if verbose:
                print(
                    f"  {benchmark:8s} {label:24s} IPC={stats.ipc:.3f} "
                    f"flushes={stats.pipeline_flushes}"
                )
    return out
