"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned text table (numbers right-aligned)."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        cells = []
        for i, cell in enumerate(row):
            if _is_numeric(cell):
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%MK"))
        return True
    except ValueError:
        return False


def format_series(name: str, values: dict, unit: str = "") -> str:
    """One labelled data series, benchmark -> value."""
    parts = [f"{name}:"]
    for key, value in values.items():
        rendered = f"{value:.2f}" if isinstance(value, float) else str(value)
        parts.append(f"  {key:10s} {rendered}{unit}")
    return "\n".join(parts)
