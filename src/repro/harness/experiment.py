"""Benchmark contexts and suite runners.

A :class:`BenchmarkContext` owns everything one benchmark needs that is
*independent of the machine configuration*: the built workload, its
functional trace, the two profile runs, and the diverge/hammock hint
tables.  All of it is computed lazily and cached, so sweeping N machine
configurations over one benchmark pays the (comparatively expensive)
profiling cost once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.processors import simulate
from repro.errors import ReproError
from repro.isa.encoding import HintTable
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    build_hint_table,
    candidate_branch_pcs,
    select_diverge_branches,
)
from repro.profiling.hammock import find_simple_hammocks
from repro.profiling.profiler import (
    ProgramProfile,
    collect_reconvergence,
    profile_trace,
)
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.hints import check_hint_table
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark


class BenchmarkContext:
    """One benchmark's machine-independent artifacts, lazily built."""

    def __init__(
        self,
        name: str,
        iterations: Optional[int] = None,
        seed: int = 0,
        thresholds: SelectionThresholds = SelectionThresholds(),
    ) -> None:
        self.name = name
        self.iterations = iterations
        self.seed = seed
        self.thresholds = thresholds
        self._workload = None
        self._trace = None
        self._profile: Optional[ProgramProfile] = None
        self._selections = None
        self._diverge_hints: Optional[HintTable] = None
        self._hammock_hints: Optional[HintTable] = None
        self._wish_hints: Optional[HintTable] = None
        self._sim_cache: Dict[str, SimStats] = {}

    # -- artifacts --------------------------------------------------------

    @property
    def workload(self):
        if self._workload is None:
            self._workload = build_benchmark(
                self.name, self.iterations, self.seed
            )
        return self._workload

    @property
    def program(self):
        return self.workload.program

    @property
    def trace(self):
        if self._trace is None:
            self._trace = self.workload.run()
        return self._trace

    @property
    def profile(self) -> ProgramProfile:
        """Profile run 1 (edge counts + mispredictions)."""
        if self._profile is None:
            self._profile = profile_trace(self.program, self.trace)
        return self._profile

    @property
    def selections(self):
        """Diverge-branch selections (profile run 2 + Section 3.2 rules)."""
        if self._selections is None:
            candidates = candidate_branch_pcs(self.profile, self.thresholds)
            reconvergence = collect_reconvergence(
                self.program,
                self.trace,
                candidates,
                max_distance=self.thresholds.max_cfm_distance,
            )
            self._selections = select_diverge_branches(
                self.profile, reconvergence, self.thresholds
            )
        return self._selections

    @property
    def diverge_hints(self) -> HintTable:
        """The DMP hint table (all qualifying CFM points per branch).

        Validated on build: a structurally-broken table (a selection bug,
        or a stale profile) raises
        :class:`~repro.errors.HintValidationError` here, before it can
        steer the fetch engine."""
        if self._diverge_hints is None:
            table = build_hint_table(
                self.selections, self.thresholds, multiple_cfm=True
            )
            check_hint_table(self.program, table)
            self._diverge_hints = table
        return self._diverge_hints

    @property
    def hammock_hints(self) -> HintTable:
        """The DHP hint table: simple hammocks whose branches are actually
        hard to predict (same rate floor the DMP selection uses, so the
        DHP-vs-DMP comparison is apples-to-apples)."""
        if self._hammock_hints is None:
            table = find_simple_hammocks(
                self.program,
                profile=self.profile,
                min_misprediction_rate=self.thresholds.min_misprediction_rate,
            )
            check_hint_table(self.program, table)
            self._hammock_hints = table
        return self._hammock_hints

    @property
    def wish_hints(self) -> HintTable:
        """The wish-branch table: if-convertible regions whose branches
        are hard to predict (same rate floor as the other machines)."""
        if self._wish_hints is None:
            from repro.profiling.wish_selection import select_wish_branches

            table, _ = select_wish_branches(
                self.program,
                profile=self.profile,
                min_misprediction_rate=self.thresholds.min_misprediction_rate,
            )
            check_hint_table(self.program, table)
            self._wish_hints = table
        return self._wish_hints

    # -- simulation ---------------------------------------------------------

    def hints_for(self, config: MachineConfig) -> Optional[HintTable]:
        if config.mode == "dmp":
            return self.diverge_hints
        if config.mode == "dhp":
            return self.hammock_hints
        if config.mode == "wish":
            return self.wish_hints
        return None

    def simulate(self, config: MachineConfig) -> SimStats:
        """Simulate under one configuration (memoized: the same config is
        returned from cache, so figure drivers can share runs)."""
        key = repr(config)
        if key not in self._sim_cache:
            self._sim_cache[key] = simulate(
                self.program,
                self.trace,
                config,
                hints=self.hints_for(config),
                benchmark=self.name,
                warm_words=self.workload.memory.warm_words(),
            )
        return self._sim_cache[key]


#: The machine configurations of Figure 7 (basic DMP study).
def figure7_configs() -> Dict[str, MachineConfig]:
    return {
        "base": MachineConfig.baseline(),
        "DHP-jrs": MachineConfig.dhp(),
        "DHP-perf-conf": MachineConfig.dhp(confidence_kind="perfect"),
        "diverge-jrs": MachineConfig.dmp(),
        "diverge-perf-conf": MachineConfig.dmp(confidence_kind="perfect"),
        "dualpath": MachineConfig.dualpath(),
        "perfect-cbp": MachineConfig.baseline(predictor_kind="perfect"),
    }


#: The cumulative-enhancement configurations of Figure 9.
def figure9_configs() -> Dict[str, MachineConfig]:
    return {
        "base": MachineConfig.baseline(),
        "basic-diverge": MachineConfig.dmp(),
        "enhanced-mcfm": MachineConfig.dmp(multiple_cfm=True),
        "enhanced-mcfm-eexit": MachineConfig.dmp(
            multiple_cfm=True, early_exit=True
        ),
        "enhanced-mcfm-eexit-mdb": MachineConfig.dmp(enhanced=True),
    }


class SuiteResult:
    """Results of sweeping configurations over benchmarks."""

    def __init__(self) -> None:
        #: ``{benchmark: {config_label: SimStats}}``
        self.results: Dict[str, Dict[str, SimStats]] = {}

    def add(self, benchmark: str, label: str, stats: SimStats) -> None:
        self.results.setdefault(benchmark, {})[label] = stats

    @property
    def benchmarks(self) -> List[str]:
        return list(self.results)

    def stats(self, benchmark: str, label: str) -> SimStats:
        return self.results[benchmark][label]

    def ipc_improvements(self, label: str, base: str = "base") -> Dict[str, float]:
        """Per-benchmark % IPC improvement of ``label`` over ``base``.

        A degenerate run (zero baseline IPC — an empty trace or a
        zero-cycle simulation) raises :class:`~repro.errors.ReproError`
        rather than dividing by zero."""
        out = {}
        for benchmark, per_config in self.results.items():
            base_ipc = per_config[base].ipc
            if base_ipc == 0:
                raise ReproError(
                    f"benchmark {benchmark!r}: base config {base!r} has "
                    "zero IPC (degenerate run); cannot compute improvement"
                )
            out[benchmark] = 100.0 * (per_config[label].ipc / base_ipc - 1.0)
        return out

    def mean_improvement(self, label: str, base: str = "base") -> float:
        values = list(self.ipc_improvements(label, base).values())
        return sum(values) / len(values) if values else 0.0


def run_suite(
    configs: Dict[str, MachineConfig],
    benchmarks: Iterable[str] = BENCHMARK_NAMES,
    iterations: Optional[int] = None,
    seed: int = 0,
    contexts: Optional[Dict[str, BenchmarkContext]] = None,
    verbose: bool = False,
) -> SuiteResult:
    """Run every configuration over every benchmark.

    Pass ``contexts`` to reuse already-built benchmark artifacts across
    several figures (the per-figure drivers all accept the same dict).
    """
    result = SuiteResult()
    for name in benchmarks:
        if contexts is not None:
            context = contexts.setdefault(
                name, BenchmarkContext(name, iterations, seed)
            )
        else:
            context = BenchmarkContext(name, iterations, seed)
        for label, config in configs.items():
            stats = context.simulate(config)
            result.add(name, label, stats)
            if verbose:
                print(
                    f"  {name:8s} {label:24s} IPC={stats.ipc:.3f} "
                    f"flushes={stats.pipeline_flushes}"
                )
    return result


class MultiSeedResult:
    """Per-seed suite results with mean/spread summaries.

    Synthetic workloads are seeded; a conclusion that flips sign across
    seeds is noise.  ``improvement_stats`` reports mean and spread of the
    % IPC improvement so benches can assert *sign stability* rather than
    point values.
    """

    def __init__(self) -> None:
        #: ``{seed: SuiteResult}``
        self.by_seed: Dict[int, SuiteResult] = {}

    def add(self, seed: int, result: SuiteResult) -> None:
        self.by_seed[seed] = result

    def improvement_stats(
        self, benchmark: str, label: str, base: str = "base"
    ) -> Tuple[float, float, float]:
        """(mean, min, max) % IPC improvement across seeds."""
        values = [
            result.ipc_improvements(label, base)[benchmark]
            for result in self.by_seed.values()
        ]
        return (sum(values) / len(values), min(values), max(values))

    def sign_stable(
        self,
        benchmark: str,
        label: str,
        base: str = "base",
        tolerance: float = 1.0,
    ) -> bool:
        """True when the improvement has the same sign for every seed
        (values within ±tolerance count as zero)."""
        _, lo, hi = self.improvement_stats(benchmark, label, base)
        return lo >= -tolerance or hi <= tolerance


def run_multi_seed(
    configs: Dict[str, MachineConfig],
    benchmarks: Iterable[str],
    seeds: Iterable[int],
    iterations: Optional[int] = None,
) -> MultiSeedResult:
    """Run the suite once per seed (each seed regenerates every data
    array, so traces and profiles differ while CFG shapes stay fixed)."""
    out = MultiSeedResult()
    benchmarks = list(benchmarks)
    for seed in seeds:
        out.add(
            seed,
            run_suite(configs, benchmarks, iterations=iterations, seed=seed),
        )
    return out
