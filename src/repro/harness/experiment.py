"""Benchmark contexts and suite runners.

A :class:`BenchmarkContext` owns everything one benchmark needs that is
*independent of the machine configuration*: the built workload, its
functional trace, the two profile runs, and the diverge/hammock hint
tables.  All of it is computed lazily and cached, so sweeping N machine
configurations over one benchmark pays the (comparatively expensive)
profiling cost once.

Two further layers sit on top (docs/performance.md):

* every artifact and every completed :class:`~repro.uarch.stats.SimStats`
  can be persisted to an :class:`~repro.harness.cache.ArtifactCache`,
  keyed by canonical fingerprints (never ``repr``), so repeated CLI
  invocations skip work they have already done; and
* :func:`run_suite` accepts ``jobs=N`` to fan the
  ``(benchmark, config)`` simulations out over a process pool
  (:mod:`repro.harness.parallel`), merging results deterministically —
  a parallel or cache-warm run is bit-identical to a serial cold run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cfg.analysis import ProgramAnalysis
from repro.core.processors import simulate
from repro.errors import HintValidationError, ReproError
from repro.harness.cache import ArtifactCache, CacheCounters
from repro.harness.fingerprint import config_fingerprint, context_fingerprint
from repro.isa.encoding import HintTable
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    build_hint_table,
    candidate_branch_pcs,
    select_diverge_branches,
)
from repro.profiling.hammock import find_simple_hammocks
from repro.profiling.profiler import (
    ProgramProfile,
    collect_reconvergence,
    profile_trace,
)
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.validation.hints import check_hint_table
from repro.validation.runtime import paranoid_enabled
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

#: Cache kinds for the three hint-table flavours, by machine mode.
_HINT_KINDS = {"dmp": "hints-dmp", "dhp": "hints-dhp", "wish": "hints-wish"}


class BenchmarkContext:
    """One benchmark's machine-independent artifacts, lazily built.

    ``thresholds`` defaults to a *fresh* :class:`SelectionThresholds`
    per instance (a ``None`` sentinel, not a shared default-argument
    object), so mutating one context's thresholds can never leak into
    another.  Pass ``cache`` (an :class:`ArtifactCache` or a directory
    path) to persist artifacts and simulation stats across processes.
    """

    def __init__(
        self,
        name: str,
        iterations: Optional[int] = None,
        seed: int = 0,
        thresholds: Optional[SelectionThresholds] = None,
        cache: Union[None, str, "ArtifactCache"] = None,
    ) -> None:
        self.name = name
        self.iterations = iterations
        self.seed = seed
        self.thresholds = (
            SelectionThresholds() if thresholds is None else thresholds
        )
        self._cache = ArtifactCache.resolve(cache)
        self._fingerprint: Optional[str] = None
        self._workload = None
        self._trace = None
        self._profile: Optional[ProgramProfile] = None
        self._selections = None
        self._diverge_hints: Optional[HintTable] = None
        self._hammock_hints: Optional[HintTable] = None
        self._wish_hints: Optional[HintTable] = None
        self._sim_cache: Dict[str, SimStats] = {}
        self._analysis_loaded = False
        #: Wall-clock seconds spent in each stage *by this process*.
        self.stage_seconds: Dict[str, float] = {
            "build": 0.0, "profile": 0.0, "simulate": 0.0,
        }
        self.sims_run = 0        # timing simulations actually executed
        self.sim_memo_hits = 0   # served from the in-memory memo
        self.sim_cache_hits = 0  # served from the on-disk cache

    # -- identity / cache plumbing ----------------------------------------

    @property
    def fingerprint(self) -> str:
        """Canonical key of this context's machine-independent inputs."""
        if self._fingerprint is None:
            self._fingerprint = context_fingerprint(
                self.name, self.iterations, self.seed, self.thresholds
            )
        return self._fingerprint

    @property
    def cache(self) -> Optional[ArtifactCache]:
        return self._cache

    def attach_cache(
        self, cache: Union[None, str, "ArtifactCache"]
    ) -> None:
        """Adopt an on-disk cache if this context does not have one."""
        if self._cache is None:
            self._cache = ArtifactCache.resolve(cache)

    def check_compatible(
        self, iterations: Optional[int], seed: int
    ) -> None:
        """Raise :class:`ReproError` unless this context was built with
        the given parameters (guards ``run_suite(..., contexts=...)``
        against silently reusing a stale context)."""
        if self.iterations != iterations or self.seed != seed:
            raise ReproError(
                f"stale context for benchmark {self.name!r}: built with "
                f"iterations={self.iterations} seed={self.seed}, but this "
                f"run wants iterations={iterations} seed={seed}; pass a "
                "fresh contexts dict (or matching parameters)"
            )

    def _timed(self, stage: str, t0: float) -> None:
        self.stage_seconds[stage] += time.perf_counter() - t0

    def __getstate__(self):
        # A pickled context (shipped to a worker process) never carries
        # its cache handle: caches are process-local, and only the
        # parent writes to disk.
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    # -- artifacts --------------------------------------------------------

    @property
    def workload(self):
        if self._workload is None:
            t0 = time.perf_counter()
            self._workload = build_benchmark(
                self.name, self.iterations, self.seed
            )
            self._timed("build", t0)
        return self._workload

    @property
    def program(self):
        return self.workload.program

    @property
    def trace(self):
        if self._trace is None:
            if self._cache is not None:
                self._trace = self._cache.load_pickle(
                    "trace", self.fingerprint
                )
            if self._trace is None:
                workload = self.workload  # timed as "build"
                t0 = time.perf_counter()
                self._trace = workload.run()
                self._timed("profile", t0)
                if self._cache is not None:
                    self._cache.store_pickle(
                        "trace", self.fingerprint, self._trace
                    )
        return self._trace

    @property
    def profile(self) -> ProgramProfile:
        """Profile run 1 (edge counts + mispredictions)."""
        if self._profile is None:
            if self._cache is not None:
                self._profile = self._cache.load_pickle(
                    "profile", self.fingerprint
                )
            if self._profile is None:
                program, trace = self.program, self.trace
                t0 = time.perf_counter()
                self._profile = profile_trace(program, trace)
                self._timed("profile", t0)
                if self._cache is not None:
                    self._cache.store_pickle(
                        "profile", self.fingerprint, self._profile
                    )
        return self._profile

    @property
    def selections(self):
        """Diverge-branch selections (profile run 2 + Section 3.2 rules)."""
        if self._selections is None:
            profile = self.profile
            t0 = time.perf_counter()
            candidates = candidate_branch_pcs(profile, self.thresholds)
            reconvergence = collect_reconvergence(
                self.program,
                self.trace,
                candidates,
                max_distance=self.thresholds.max_cfm_distance,
            )
            self._selections = select_diverge_branches(
                profile, reconvergence, self.thresholds
            )
            self._timed("profile", t0)
        return self._selections

    def _cached_hint_table(self, kind: str) -> Optional[HintTable]:
        """A cached hint table, re-validated against this program; a
        structurally-broken cached table is discarded (the
        :class:`HintValidationError` pathway) and rebuilt."""
        if self._cache is None:
            return None
        table = self._cache.load_hints(kind, self.fingerprint)
        if table is None:
            return None
        try:
            check_hint_table(self.program, table)
        except HintValidationError:
            self._cache.mark_corrupt(kind, self.fingerprint)
            return None
        return table

    def _store_hint_table(self, kind: str, table: HintTable) -> None:
        if self._cache is not None:
            self._cache.store_hints(kind, self.fingerprint, table)

    @property
    def diverge_hints(self) -> HintTable:
        """The DMP hint table (all qualifying CFM points per branch).

        Validated on build: a structurally-broken table (a selection bug,
        or a stale profile) raises
        :class:`~repro.errors.HintValidationError` here, before it can
        steer the fetch engine."""
        if self._diverge_hints is None:
            table = self._cached_hint_table(_HINT_KINDS["dmp"])
            if table is None:
                selections = self.selections
                t0 = time.perf_counter()
                table = build_hint_table(
                    selections, self.thresholds, multiple_cfm=True
                )
                check_hint_table(self.program, table)
                self._timed("profile", t0)
                self._store_hint_table(_HINT_KINDS["dmp"], table)
            self._diverge_hints = table
        return self._diverge_hints

    @property
    def hammock_hints(self) -> HintTable:
        """The DHP hint table: simple hammocks whose branches are actually
        hard to predict (same rate floor the DMP selection uses, so the
        DHP-vs-DMP comparison is apples-to-apples)."""
        if self._hammock_hints is None:
            table = self._cached_hint_table(_HINT_KINDS["dhp"])
            if table is None:
                profile = self.profile
                t0 = time.perf_counter()
                table = find_simple_hammocks(
                    self.program,
                    profile=profile,
                    min_misprediction_rate=self.thresholds.min_misprediction_rate,
                )
                check_hint_table(self.program, table)
                self._timed("profile", t0)
                self._store_hint_table(_HINT_KINDS["dhp"], table)
            self._hammock_hints = table
        return self._hammock_hints

    @property
    def wish_hints(self) -> HintTable:
        """The wish-branch table: if-convertible regions whose branches
        are hard to predict (same rate floor as the other machines)."""
        if self._wish_hints is None:
            table = self._cached_hint_table(_HINT_KINDS["wish"])
            if table is None:
                from repro.profiling.wish_selection import select_wish_branches

                profile = self.profile
                t0 = time.perf_counter()
                table, _ = select_wish_branches(
                    self.program,
                    profile=profile,
                    min_misprediction_rate=self.thresholds.min_misprediction_rate,
                )
                check_hint_table(self.program, table)
                self._timed("profile", t0)
                self._store_hint_table(_HINT_KINDS["wish"], table)
            self._wish_hints = table
        return self._wish_hints

    def prepare(self, configs: Iterable[MachineConfig] = ()) -> None:
        """Materialize every machine-independent artifact the given
        configurations will need (used before fanning simulations out to
        worker processes, so workers never duplicate profiling work)."""
        _ = self.workload, self.trace, self.profile
        for config in configs:
            self.hints_for(config)

    # -- simulation ---------------------------------------------------------

    def hints_for(self, config: MachineConfig) -> Optional[HintTable]:
        if config.mode == "dmp":
            return self.diverge_hints
        if config.mode == "dhp":
            return self.hammock_hints
        if config.mode == "wish":
            return self.wish_hints
        return None

    def _effective_config(self, config: MachineConfig) -> MachineConfig:
        """The configuration that will actually run, mirroring the
        paranoid-mode upgrade in :func:`repro.core.processors.simulate`
        — so memo/cache keys always describe the run they index."""
        if paranoid_enabled() and not (
            config.oracle_checks and config.watchdog
        ):
            return config.hardened()
        return config

    def sim_key(self, config: MachineConfig) -> str:
        """Canonical memo key for one simulation of this context."""
        return config_fingerprint(self._effective_config(config))

    def cached_stats(self, config: MachineConfig) -> Optional[SimStats]:
        """Already-known stats for ``config`` (in-memory memo first,
        then the on-disk cache), or ``None``.  Counts hits."""
        key = self.sim_key(config)
        stats = self._sim_cache.get(key)
        if stats is not None:
            self.sim_memo_hits += 1
            return stats
        if self._cache is not None:
            stats = self._cache.load_pickle("sim", f"{self.fingerprint}-{key}")
            if isinstance(stats, SimStats):
                self.sim_cache_hits += 1
                self._sim_cache[key] = stats
                return stats
        return None

    def store_stats(self, config: MachineConfig, stats: SimStats) -> None:
        """Adopt externally-computed stats (e.g. from a worker process)
        into the memo and the on-disk cache."""
        key = self.sim_key(config)
        self._sim_cache[key] = stats
        if self._cache is not None:
            self._cache.store_pickle("sim", f"{self.fingerprint}-{key}", stats)

    def _load_analysis(self) -> None:
        """Adopt persisted static-analysis tables (postdominators,
        reconvergence PCs) for this program, once per context.  Plans
        are rebuilt locally — they hold live object references."""
        if self._analysis_loaded:
            return
        self._analysis_loaded = True
        if self._cache is None:
            return
        tables = self._cache.load_pickle("analysis", self.fingerprint)
        if tables is not None:
            analysis = ProgramAnalysis.of(self.program)
            if analysis.adopt_tables(tables):
                analysis.mark_clean()

    def _store_analysis(self) -> None:
        """Persist analysis tables computed by the run just finished."""
        if self._cache is None:
            return
        analysis = ProgramAnalysis.of(self.program)
        if analysis.dirty:
            self._cache.store_pickle(
                "analysis", self.fingerprint, analysis.export_tables()
            )
            analysis.mark_clean()

    def simulate(self, config: MachineConfig, tracer=None) -> SimStats:
        """Simulate under one configuration (memoized: the same config is
        returned from cache, so figure drivers can share runs).

        The memo key is the canonical fingerprint of the *effective*
        configuration — two equal configs whose dict-valued fields merely
        differ in insertion order share one run, and every field
        participates in the key (``repr`` omissions cannot collide two
        different configs onto the same cached stats)."""
        if tracer is None:
            # A traced run cannot be satisfied from the memo/cache: the
            # event stream only exists if the simulator actually runs.
            stats = self.cached_stats(config)
            if stats is not None:
                return stats
        hints = self.hints_for(config)  # timed as "profile" if first use
        warm = self.workload.memory.warm_words()
        self._load_analysis()
        t0 = time.perf_counter()
        stats = simulate(
            self.program,
            self.trace,
            config,
            hints=hints,
            benchmark=self.name,
            warm_words=warm,
            tracer=tracer,
        )
        self._timed("simulate", t0)
        self.sims_run += 1
        self._store_analysis()
        self.store_stats(config, stats)
        return stats


#: The machine configurations of Figure 7 (basic DMP study).
def figure7_configs() -> Dict[str, MachineConfig]:
    return {
        "base": MachineConfig.baseline(),
        "DHP-jrs": MachineConfig.dhp(),
        "DHP-perf-conf": MachineConfig.dhp(confidence_kind="perfect"),
        "diverge-jrs": MachineConfig.dmp(),
        "diverge-perf-conf": MachineConfig.dmp(confidence_kind="perfect"),
        "dualpath": MachineConfig.dualpath(),
        "perfect-cbp": MachineConfig.baseline(predictor_kind="perfect"),
    }


#: The cumulative-enhancement configurations of Figure 9.
def figure9_configs() -> Dict[str, MachineConfig]:
    return {
        "base": MachineConfig.baseline(),
        "basic-diverge": MachineConfig.dmp(),
        "enhanced-mcfm": MachineConfig.dmp(multiple_cfm=True),
        "enhanced-mcfm-eexit": MachineConfig.dmp(
            multiple_cfm=True, early_exit=True
        ),
        "enhanced-mcfm-eexit-mdb": MachineConfig.dmp(enhanced=True),
    }


@dataclasses.dataclass
class SuiteTimings:
    """Per-stage wall-clock + cache accounting for one suite run, so
    speedups are measured rather than asserted (``repro suite
    --timings``)."""

    jobs: int = 1
    wall_seconds: float = 0.0
    build_seconds: float = 0.0
    profile_seconds: float = 0.0
    #: Aggregate simulation seconds (across workers when parallel, so it
    #: can exceed ``wall_seconds``).
    simulate_seconds: float = 0.0
    simulations_run: int = 0
    sim_memo_hits: int = 0
    sim_cache_hits: int = 0
    #: Batch executor only: cells that ran in the lockstep group vs
    #: cells that fell back to the fast engine, the latter grouped by
    #: the ``cell_supported`` reason string.
    batch_vector_cells: int = 0
    batch_fallbacks: Dict[str, int] = dataclasses.field(
        default_factory=dict
    )
    cache: Optional[CacheCounters] = None

    def report(self) -> str:
        lines = [
            f"timings (jobs={self.jobs}): wall={self.wall_seconds:.2f}s",
            f"  build={self.build_seconds:.2f}s  "
            f"profile={self.profile_seconds:.2f}s  "
            f"simulate={self.simulate_seconds:.2f}s (aggregate)",
            f"  simulations: {self.simulations_run} run, "
            f"{self.sim_memo_hits} memo hit(s), "
            f"{self.sim_cache_hits} disk hit(s)",
        ]
        fell = sum(self.batch_fallbacks.values())
        if self.batch_vector_cells or fell:
            lines.append(
                f"  batch: {self.batch_vector_cells} cell(s) on the "
                f"vector path, {fell} fast-engine fallback(s)"
            )
            for reason, count in sorted(
                self.batch_fallbacks.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"    {count:4d}  {reason}")
        if self.cache is not None:
            lines.append("  " + self.cache.summary().replace("\n", "\n  "))
        return "\n".join(lines)


class SuiteResult:
    """Results of sweeping configurations over benchmarks.

    Two results compare equal iff they carry identical stats for
    identical ``(benchmark, config)`` cells — the property the parallel
    and cached execution paths are tested against.  ``timings`` (when a
    suite runner attached one) is diagnostic and excluded from
    equality."""

    def __init__(self) -> None:
        #: ``{benchmark: {config_label: SimStats}}``
        self.results: Dict[str, Dict[str, SimStats]] = {}
        #: Filled in by :func:`run_suite`.
        self.timings: Optional[SuiteTimings] = None

    def add(self, benchmark: str, label: str, stats: SimStats) -> None:
        self.results.setdefault(benchmark, {})[label] = stats

    def __eq__(self, other) -> bool:
        if not isinstance(other, SuiteResult):
            return NotImplemented
        return self.results == other.results

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    @property
    def benchmarks(self) -> List[str]:
        return list(self.results)

    def stats(self, benchmark: str, label: str) -> SimStats:
        return self.results[benchmark][label]

    def ipc_improvements(self, label: str, base: str = "base") -> Dict[str, float]:
        """Per-benchmark % IPC improvement of ``label`` over ``base``.

        A degenerate run (zero baseline IPC — an empty trace or a
        zero-cycle simulation) raises :class:`~repro.errors.ReproError`
        rather than dividing by zero."""
        out = {}
        for benchmark, per_config in self.results.items():
            base_ipc = per_config[base].ipc
            if base_ipc == 0:
                raise ReproError(
                    f"benchmark {benchmark!r}: base config {base!r} has "
                    "zero IPC (degenerate run); cannot compute improvement"
                )
            out[benchmark] = 100.0 * (per_config[label].ipc / base_ipc - 1.0)
        return out

    def mean_improvement(self, label: str, base: str = "base") -> float:
        values = list(self.ipc_improvements(label, base).values())
        return sum(values) / len(values) if values else 0.0


def _context_snapshot(context: BenchmarkContext) -> Tuple:
    return (
        dict(context.stage_seconds),
        context.sims_run,
        context.sim_memo_hits,
        context.sim_cache_hits,
    )


def _accumulate_deltas(
    timings: SuiteTimings,
    contexts: List[BenchmarkContext],
    before: List[Tuple],
) -> None:
    for context, (stages, sims, memo, disk) in zip(contexts, before):
        timings.build_seconds += context.stage_seconds["build"] - stages["build"]
        timings.profile_seconds += (
            context.stage_seconds["profile"] - stages["profile"]
        )
        timings.simulate_seconds += (
            context.stage_seconds["simulate"] - stages["simulate"]
        )
        timings.simulations_run += context.sims_run - sims
        timings.sim_memo_hits += context.sim_memo_hits - memo
        timings.sim_cache_hits += context.sim_cache_hits - disk


def _cell_tracer(context: BenchmarkContext, label: str, trace_dir):
    """A JSONL tracer for one suite cell, or ``None`` when untraced."""
    if trace_dir is None:
        return None
    from repro.obs.events import JsonlTracer
    from repro.obs.runtime import trace_path

    return JsonlTracer(
        trace_path(trace_dir, context.name, label),
        meta={
            "benchmark": context.name,
            "config": label,
            "iterations": context.iterations,
            "seed": context.seed,
        },
    )


def _simulate_cell(
    context: BenchmarkContext, label: str, config: MachineConfig,
    trace_dir, verbose: bool,
) -> SimStats:
    """One (benchmark, config) cell through the context (memo/cache
    aware), with optional event tracing."""
    tracer = _cell_tracer(context, label, trace_dir)
    try:
        stats = context.simulate(config, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if verbose:
        print(
            f"  {context.name:8s} {label:24s} IPC={stats.ipc:.3f} "
            f"flushes={stats.pipeline_flushes}"
        )
    return stats


def _execute_serial(
    run_contexts, configs, *, jobs, verbose, trace_dir, result, timings
) -> None:
    """One cell at a time, in deterministic order."""
    for context in run_contexts:
        for label, config in configs.items():
            stats = _simulate_cell(context, label, config, trace_dir, verbose)
            result.add(context.name, label, stats)


def _execute_pool(
    run_contexts, configs, *, jobs, verbose, trace_dir, result, timings
) -> None:
    """Fan the cells out over a process pool (repro.harness.parallel)."""
    from repro.harness.parallel import run_simulations_parallel

    stats_map = run_simulations_parallel(
        run_contexts, configs, jobs=max(jobs, 2), verbose=verbose,
        trace_dir=trace_dir,
    )
    timings.simulate_seconds += stats_map.worker_seconds
    timings.simulations_run += stats_map.worker_runs
    for context in run_contexts:
        for label, config in configs.items():
            result.add(context.name, label, stats_map[(context.name, label)])


def _execute_batch(
    run_contexts, configs, *, jobs, verbose, trace_dir, result, timings
) -> None:
    """All cells through the vectorized lockstep engine in one group.

    Every config is run with ``engine="batch"`` (the engine is
    bit-identical, and cells outside the vector envelope fall back to
    the fast engine inside ``run_batch``).  Memoized / disk-cached cells
    are served without simulating; traced cells cannot batch (the event
    stream needs a live scalar simulator) and run serially instead.
    """
    from repro.uarch.batch import BatchCell, run_batch

    cells: List = []
    meta: List[Tuple[BenchmarkContext, str, MachineConfig]] = []
    for context in run_contexts:
        for label, config in configs.items():
            effective = (
                config if config.engine == "batch"
                else config.replace(engine="batch")
            )
            if trace_dir is not None:
                stats = _simulate_cell(
                    context, label, effective, trace_dir, verbose
                )
                result.add(context.name, label, stats)
                continue
            stats = context.cached_stats(effective)
            if stats is not None:
                result.add(context.name, label, stats)
                continue
            hints = context.hints_for(effective)
            warm = context.workload.memory.warm_words()
            context._load_analysis()
            cells.append(BatchCell(
                context.program, context.trace, effective, hints=hints,
                benchmark=context.name, warm_words=warm,
            ))
            meta.append((context, label, effective))
    if not cells:
        return
    fell_before = sum(timings.batch_fallbacks.values())
    t0 = time.perf_counter()
    stats_list = run_batch(cells, fallback_reasons=timings.batch_fallbacks)
    per_cell = (time.perf_counter() - t0) / len(cells)
    fell = sum(timings.batch_fallbacks.values()) - fell_before
    timings.batch_vector_cells += len(cells) - fell
    # Re-enforce the arena memo LRU caps: a long-lived process issuing
    # many sweeps (notebooks, services, the fuzz harness) must not
    # accumulate an unbounded arena/horizon memo per program and trace.
    from repro.uarch.batch import batch_supported

    if batch_supported():
        from repro.uarch.batch.arena import trim_arena_caches

        trim_arena_caches()
    for (context, label, effective), stats in zip(meta, stats_list):
        context.stage_seconds["simulate"] += per_cell
        context.sims_run += 1
        context._store_analysis()
        context.store_stats(effective, stats)
        result.add(context.name, label, stats)
        if verbose:
            print(
                f"  {context.name:8s} {label:24s} IPC={stats.ipc:.3f} "
                f"flushes={stats.pipeline_flushes}"
            )


#: Pluggable suite executors: how the (benchmark, config) cells of one
#: suite run are simulated.  All three produce bit-identical results;
#: tests/harness/test_parallel.py and tests/core/test_engine_batch.py
#: hold them to it.
SUITE_EXECUTORS = {
    "serial": _execute_serial,
    "pool": _execute_pool,
    "batch": _execute_batch,
}


def _resolve_executor(
    executor: Optional[str], configs: Dict[str, MachineConfig], jobs: int
) -> str:
    if executor is not None:
        if executor not in SUITE_EXECUTORS:
            raise ReproError(
                f"unknown executor {executor!r}; expected one of "
                f"{sorted(SUITE_EXECUTORS)}"
            )
        return executor
    if any(config.engine == "batch" for config in configs.values()):
        return "batch"
    return "pool" if jobs > 1 else "serial"


def run_suite(
    configs: Dict[str, MachineConfig],
    benchmarks: Iterable[str] = BENCHMARK_NAMES,
    iterations: Optional[int] = None,
    seed: int = 0,
    contexts: Optional[Dict[str, BenchmarkContext]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Union[None, str, ArtifactCache] = None,
    trace_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> SuiteResult:
    """Run every configuration over every benchmark.

    Pass ``contexts`` to reuse already-built benchmark artifacts across
    several figures (the per-figure drivers all accept the same dict); a
    reused context whose ``iterations``/``seed`` do not match this call
    raises :class:`~repro.errors.ReproError` instead of silently
    returning stats for different parameters.

    The cells are dispatched through a pluggable *executor*
    (``SUITE_EXECUTORS``): ``"serial"`` simulates one cell at a time,
    ``"pool"`` fans out over a process pool, and ``"batch"`` runs every
    cell through the vectorized lockstep engine
    (:mod:`repro.uarch.batch`) in one group.  When ``executor`` is not
    given it is inferred: ``"batch"`` if any config selects
    ``engine="batch"``, else ``"pool"`` when ``jobs > 1``, else
    ``"serial"``.  All executors return bit-identical results.

    ``cache`` (an :class:`ArtifactCache` or directory path) persists
    artifacts and stats across invocations.

    ``trace_dir`` (or the process-wide toggle set by
    :func:`repro.obs.runtime.set_trace_dir` — the CLI's ``--trace``
    flags) writes one JSONL event trace per ``(benchmark, config)``
    cell into the directory; traced cells always simulate (never come
    from memo or cache) and produce the same stats as untraced ones.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if trace_dir is None:
        from repro.obs.runtime import active_trace_dir

        trace_dir = active_trace_dir()
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    cache = ArtifactCache.resolve(cache)
    benchmarks = list(benchmarks)
    result = SuiteResult()
    wall_start = time.perf_counter()

    run_contexts: List[BenchmarkContext] = []
    for name in benchmarks:
        if contexts is not None:
            context = contexts.get(name)
            if context is None:
                context = BenchmarkContext(name, iterations, seed, cache=cache)
                contexts[name] = context
            else:
                context.check_compatible(iterations, seed)
                context.attach_cache(cache)
        else:
            context = BenchmarkContext(name, iterations, seed, cache=cache)
        run_contexts.append(context)

    before = [_context_snapshot(context) for context in run_contexts]
    timings = SuiteTimings(jobs=jobs)

    execute = SUITE_EXECUTORS[_resolve_executor(executor, configs, jobs)]
    execute(
        run_contexts, configs, jobs=jobs, verbose=verbose,
        trace_dir=trace_dir, result=result, timings=timings,
    )

    _accumulate_deltas(timings, run_contexts, before)
    timings.wall_seconds = time.perf_counter() - wall_start
    timings.cache = cache.counters if cache is not None else None
    result.timings = timings
    return result


class MultiSeedResult:
    """Per-seed suite results with mean/spread summaries.

    Synthetic workloads are seeded; a conclusion that flips sign across
    seeds is noise.  ``improvement_stats`` reports mean and spread of the
    % IPC improvement so benches can assert *sign stability* rather than
    point values.
    """

    def __init__(self) -> None:
        #: ``{seed: SuiteResult}``
        self.by_seed: Dict[int, SuiteResult] = {}

    def add(self, seed: int, result: SuiteResult) -> None:
        self.by_seed[seed] = result

    def improvement_stats(
        self, benchmark: str, label: str, base: str = "base"
    ) -> Tuple[float, float, float]:
        """(mean, min, max) % IPC improvement across seeds."""
        values = [
            result.ipc_improvements(label, base)[benchmark]
            for result in self.by_seed.values()
        ]
        return (sum(values) / len(values), min(values), max(values))

    def sign_stable(
        self,
        benchmark: str,
        label: str,
        base: str = "base",
        tolerance: float = 1.0,
    ) -> bool:
        """True when the improvement has the same sign for every seed
        (values within ±tolerance count as zero)."""
        _, lo, hi = self.improvement_stats(benchmark, label, base)
        return lo >= -tolerance or hi <= tolerance


def run_multi_seed(
    configs: Dict[str, MachineConfig],
    benchmarks: Iterable[str],
    seeds: Iterable[int],
    iterations: Optional[int] = None,
    jobs: int = 1,
    cache: Union[None, str, ArtifactCache] = None,
    executor: Optional[str] = None,
) -> MultiSeedResult:
    """Run the suite once per seed (each seed regenerates every data
    array, so traces and profiles differ while CFG shapes stay fixed).
    ``jobs``/``cache``/``executor`` are forwarded to each per-seed
    :func:`run_suite` — multi-seed sweeps are exactly the shape the
    ``"batch"`` executor exists for."""
    out = MultiSeedResult()
    benchmarks = list(benchmarks)
    for seed in seeds:
        out.add(
            seed,
            run_suite(
                configs,
                benchmarks,
                iterations=iterations,
                seed=seed,
                jobs=jobs,
                cache=cache,
                executor=executor,
            ),
        )
    return out
