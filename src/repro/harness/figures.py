"""Per-figure/table experiment drivers.

Each ``figN``/``tableN`` function regenerates the data behind one exhibit
of the paper's evaluation and returns a :class:`FigureResult` holding the
series (rows keyed by benchmark) plus a paper-style text rendering.

All drivers share a ``contexts`` dict (benchmark name →
:class:`~repro.harness.experiment.BenchmarkContext`) so the expensive
artifacts — traces and profiles — are built once per benchmark no matter
how many figures are generated.  A reused context whose parameters do
not match the current call raises :class:`~repro.errors.ReproError`
instead of silently serving stale data.

Every simulation-driven exhibit routes its runs through
:func:`~repro.harness.experiment.run_suite`, so the drivers uniformly
accept ``jobs=N`` (process-pool fan-out) and ``cache=...`` (persistent
artifact/stats cache) — the CLI's ``repro figure --jobs/--cache-dir``
flags (docs/performance.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.classify import classify_mispredictions
from repro.analysis.wrongpath import wrong_path_breakdown
from repro.harness.cache import ArtifactCache
from repro.harness.experiment import (
    BenchmarkContext,
    SuiteResult,
    figure7_configs,
    figure9_configs,
    run_suite,
)
from repro.harness.tables import format_table
from repro.uarch.config import MachineConfig
from repro.workloads.suite import BENCHMARK_NAMES


class FigureResult:
    """Data + rendering for one regenerated exhibit."""

    def __init__(self, name: str, headers: List[str], rows: List[list],
                 notes: str = "") -> None:
        self.name = name
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def by_benchmark(self) -> Dict[str, list]:
        return {row[0]: row[1:] for row in self.rows}


def _contexts(
    contexts: Optional[Dict[str, BenchmarkContext]],
    benchmarks: Iterable[str],
    iterations: Optional[int],
    cache=None,
) -> Dict[str, BenchmarkContext]:
    cache = ArtifactCache.resolve(cache)
    contexts = contexts if contexts is not None else {}
    for name in benchmarks:
        context = contexts.get(name)
        if context is None:
            contexts[name] = BenchmarkContext(name, iterations, cache=cache)
        else:
            context.check_compatible(iterations, seed=context.seed)
            context.attach_cache(cache)
    return contexts


def _suite(
    configs: Dict[str, MachineConfig],
    contexts: Dict[str, BenchmarkContext],
    benchmarks: Iterable[str],
    iterations: Optional[int],
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> SuiteResult:
    """Run one config sweep through the shared contexts (parallel/cached
    when asked).  ``engine`` overrides every config's simulation engine
    (the CLI's ``--engine`` flag); results are bit-identical across
    engines, so this only changes how fast the sweep runs."""
    if engine:
        configs = {
            label: config.replace(engine=engine)
            for label, config in configs.items()
        }
    return run_suite(
        configs,
        benchmarks,
        iterations,
        contexts=contexts,
        jobs=jobs,
        cache=cache,
    )


def _mean_row(label: str, columns: List[List[float]]) -> list:
    return [label] + [sum(col) / len(col) if col else 0.0 for col in columns]


# ---------------------------------------------------------------------------
# Figure 1 — wrong-path control-(in)dependence
# ---------------------------------------------------------------------------

def fig1(
    contexts=None,
    benchmarks: Iterable[str] = BENCHMARK_NAMES,
    iterations: Optional[int] = None,
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> FigureResult:
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {"base": MachineConfig.baseline()},
        contexts, benchmarks, iterations, jobs, cache, engine,
    )
    rows = []
    cd_col, ci_col = [], []
    for name in benchmarks:
        breakdown = wrong_path_breakdown(suite.stats(name, "base"))
        rows.append(
            [name, breakdown.pct_wrong_cd, breakdown.pct_wrong_ci,
             breakdown.pct_wrong]
        )
        cd_col.append(breakdown.pct_wrong_cd)
        ci_col.append(breakdown.pct_wrong_ci)
    rows.append(_mean_row("amean", [cd_col, ci_col,
                                    [a + b for a, b in zip(cd_col, ci_col)]]))
    return FigureResult(
        "Figure 1: % of fetched instructions on the wrong path",
        ["benchmark", "%wrong-CD", "%wrong-CI", "%wrong-total"],
        rows,
        notes=("Paper: ~52% of fetched instructions are wrong-path; "
               "~63% of those control-independent."),
    )


# ---------------------------------------------------------------------------
# Table 1 — exit cases (definitional; rendered for completeness)
# ---------------------------------------------------------------------------

def table1() -> FigureResult:
    rows = [
        [1, "reach CFM", "reach CFM", "correct", "normal exit"],
        [2, "reach CFM", "reach CFM", "mispredicted", "normal exit"],
        [3, "reach CFM", "no reach", "correct", "re-direct fetch"],
        [4, "reach CFM", "no reach", "mispredicted", "no special action"],
        [5, "no reach", "-", "correct", "no special action"],
        [6, "no reach", "-", "mispredicted", "flush the pipeline"],
    ]
    return FigureResult(
        "Table 1: exit cases of dynamic predication mode",
        ["case", "predicted path", "alternate path", "prediction", "action"],
        rows,
    )


# ---------------------------------------------------------------------------
# Table 2 — baseline configuration
# ---------------------------------------------------------------------------

def table2(config: Optional[MachineConfig] = None) -> FigureResult:
    config = config or MachineConfig.baseline()
    rows = [
        ["fetch width", config.fetch_width],
        ["conditional branches/cycle", config.max_branches_per_cycle],
        ["fetch ends at taken branch", config.fetch_stops_at_taken],
        ["pipeline depth (min mispredict penalty)", config.pipeline_depth],
        ["reorder buffer", config.rob_size],
        ["retire width", config.retire_width],
        ["direction predictor", config.predictor_kind],
        ["confidence estimator", config.confidence_kind],
        ["BTB entries", config.btb_entries],
        ["return address stack", config.ras_depth],
        ["store buffer", config.store_buffer_size],
        ["memory latency (cycles)", config.memory_latency],
    ]
    return FigureResult(
        "Table 2: baseline processor configuration",
        ["parameter", "value"],
        rows,
    )


# ---------------------------------------------------------------------------
# Table 3 — baseline characteristics
# ---------------------------------------------------------------------------

def table3(
    contexts=None,
    benchmarks: Iterable[str] = BENCHMARK_NAMES,
    iterations: Optional[int] = None,
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> FigureResult:
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {"base": MachineConfig.baseline()},
        contexts, benchmarks, iterations, jobs, cache, engine,
    )
    rows = []
    for name in benchmarks:
        stats = suite.stats(name, "base")
        rows.append(
            [
                name,
                round(stats.ipc, 2),
                stats.retired_instructions,
                stats.retired_branches,
                stats.mispredictions,
                round(stats.mpki, 2),
            ]
        )
    return FigureResult(
        "Table 3: baseline characteristics",
        ["benchmark", "IPC", "insts", "branches", "mispredicted", "MPKI"],
        rows,
    )


# ---------------------------------------------------------------------------
# Figure 6 — misprediction classification
# ---------------------------------------------------------------------------

def fig6(
    contexts=None,
    benchmarks: Iterable[str] = BENCHMARK_NAMES,
    iterations: Optional[int] = None,
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> FigureResult:
    # No timing simulations here — only profiles and hint tables, which
    # the artifact cache covers; ``jobs`` is accepted for driver
    # uniformity.
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    rows = []
    cols = [[], [], []]
    shares = []
    for name in benchmarks:
        context = contexts[name]
        classification = classify_mispredictions(
            name,
            context.profile,
            context.diverge_hints,
            context.hammock_hints,
        )
        rows.append(
            [
                name,
                classification.mpki_simple_hammock,
                classification.mpki_complex_diverge,
                classification.mpki_other,
            ]
        )
        cols[0].append(classification.mpki_simple_hammock)
        cols[1].append(classification.mpki_complex_diverge)
        cols[2].append(classification.mpki_other)
        shares.append(classification.diverge_share)
    rows.append(_mean_row("amean", cols))
    mean_share = 100 * sum(shares) / len(shares) if shares else 0.0
    return FigureResult(
        "Figure 6: mispredictions per 1k instructions by class",
        ["benchmark", "simple-hammock", "complex-diverge", "other"],
        rows,
        notes=(f"Diverge branches cover {mean_share:.0f}% of mispredictions "
               "(paper: 57% average, ~9% from simple hammocks)."),
    )


# ---------------------------------------------------------------------------
# Figures 7/9 — IPC improvement studies
# ---------------------------------------------------------------------------

def _improvement_figure(
    name: str,
    configs: Dict[str, MachineConfig],
    contexts,
    benchmarks,
    iterations,
    notes: str = "",
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> FigureResult:
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        configs, contexts, benchmarks, iterations, jobs, cache, engine
    )
    labels = [label for label in configs if label != "base"]
    rows = []
    columns = {label: [] for label in labels}
    for benchmark in benchmarks:
        row = [benchmark]
        for label in labels:
            value = 100.0 * (
                suite.stats(benchmark, label).ipc
                / suite.stats(benchmark, "base").ipc
                - 1.0
            )
            row.append(value)
            columns[label].append(value)
        rows.append(row)
    rows.append(_mean_row("amean", [columns[label] for label in labels]))
    result = FigureResult(
        name, ["benchmark"] + [f"%{label}" for label in labels], rows, notes
    )
    result.suite = suite  # expose raw stats for downstream figures
    return result


def fig7(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
         jobs=1, cache=None, engine=""):
    return _improvement_figure(
        "Figure 7: % IPC improvement over base (basic DMP study)",
        figure7_configs(),
        contexts,
        benchmarks,
        iterations,
        notes=("Paper shapes: diverge > DHP > dual-path; perfect confidence "
               "well above JRS for DMP; perfect-cbp far above everything."),
        jobs=jobs,
        cache=cache,
        engine=engine,
    )


def fig9(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
         jobs=1, cache=None, engine=""):
    return _improvement_figure(
        "Figure 9: % IPC improvement, enhanced DMP (cumulative)",
        figure9_configs(),
        contexts,
        benchmarks,
        iterations,
        notes="Paper: enhanced-mcfm-eexit-mdb averages +10.8% over base.",
        jobs=jobs,
        cache=cache,
        engine=engine,
    )


# ---------------------------------------------------------------------------
# Figures 8/10 — exit-case distributions
# ---------------------------------------------------------------------------

def _exit_case_figure(
    name: str,
    config: MachineConfig,
    contexts,
    benchmarks,
    iterations,
    jobs: int = 1,
    cache=None,
    engine: str = "",
) -> FigureResult:
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {"dmp": config}, contexts, benchmarks, iterations, jobs, cache,
        engine
    )
    rows = []
    cols = [[] for _ in range(6)]
    for benchmark in benchmarks:
        stats = suite.stats(benchmark, "dmp")
        total = max(sum(stats.exit_cases.values()), 1)
        shares = [
            100.0 * stats.exit_cases[case] / total for case in range(1, 7)
        ]
        rows.append([benchmark] + shares)
        for i, share in enumerate(shares):
            cols[i].append(share)
    rows.append(_mean_row("amean", cols))
    return FigureResult(
        name,
        ["benchmark"] + [f"%case{c}" for c in range(1, 7)],
        rows,
        notes="Cases 2 and 4 save a flush; cases 1 and 3 are pure overhead.",
    )


def fig8(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
         jobs=1, cache=None, engine=""):
    return _exit_case_figure(
        "Figure 8: exit-case distribution, basic DMP",
        MachineConfig.dmp(),
        contexts, benchmarks, iterations, jobs, cache, engine,
    )


def fig10(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
          jobs=1, cache=None, engine=""):
    return _exit_case_figure(
        "Figure 10: exit-case distribution, enhanced DMP",
        MachineConfig.dmp(enhanced=True),
        contexts, benchmarks, iterations, jobs, cache, engine,
    )


# ---------------------------------------------------------------------------
# Figure 11 — pipeline-flush reduction
# ---------------------------------------------------------------------------

def fig11(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
          jobs=1, cache=None, engine=""):
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {
            "base": MachineConfig.baseline(),
            "enhanced": MachineConfig.dmp(enhanced=True),
        },
        contexts, benchmarks, iterations, jobs, cache, engine,
    )
    rows = []
    col = []
    for benchmark in benchmarks:
        base = suite.stats(benchmark, "base")
        enhanced = suite.stats(benchmark, "enhanced")
        if base.pipeline_flushes:
            reduction = 100.0 * (
                1.0 - enhanced.pipeline_flushes / base.pipeline_flushes
            )
        else:
            reduction = 0.0
        rows.append([benchmark, reduction])
        col.append(reduction)
    rows.append(_mean_row("amean", [col]))
    return FigureResult(
        "Figure 11: % reduction in pipeline flushes (enhanced DMP)",
        ["benchmark", "%flush reduction"],
        rows,
        notes="Paper: 31% average; >40% on bzip2/parser/twolf/vpr/mesa/fma3d.",
    )


# ---------------------------------------------------------------------------
# Figure 12 — fetched / executed instruction counts
# ---------------------------------------------------------------------------

def fig12(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
          jobs=1, cache=None, engine=""):
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {
            "base": MachineConfig.baseline(),
            "dmp": MachineConfig.dmp(enhanced=True),
        },
        contexts, benchmarks, iterations, jobs, cache, engine,
    )
    rows = []
    fetch_ratio, exec_ratio = [], []
    for benchmark in benchmarks:
        base = suite.stats(benchmark, "base")
        dmp = suite.stats(benchmark, "dmp")
        rows.append(
            [
                benchmark,
                base.fetched_total,
                dmp.fetched_total,
                base.executed_instructions,
                dmp.executed_instructions,
                dmp.extra_uops,
                dmp.select_uops,
            ]
        )
        fetch_ratio.append(dmp.fetched_total / max(base.fetched_total, 1))
        exec_ratio.append(
            dmp.total_executed_with_uops / max(base.executed_instructions, 1)
        )
    mean_fetch = 100 * (sum(fetch_ratio) / len(fetch_ratio) - 1)
    mean_exec = 100 * (sum(exec_ratio) / len(exec_ratio) - 1)
    return FigureResult(
        "Figure 12: fetched and executed instructions",
        ["benchmark", "fetch(base)", "fetch(DMP)", "exec(base)",
         "exec(DMP)", "extra-uops", "select-uops"],
        rows,
        notes=(f"Fetched change {mean_fetch:+.1f}% (paper: -18%); executed "
               f"change incl. uops {mean_exec:+.1f}% (paper: +9%)."),
    )


# ---------------------------------------------------------------------------
# Figure 13 — window-size and pipeline-depth sweeps
# ---------------------------------------------------------------------------

def fig13(
    contexts=None,
    benchmarks=BENCHMARK_NAMES,
    iterations=None,
    windows=(128, 256, 512),
    depths=(10, 20, 30),
    sweep_rob=512,
    jobs=1,
    cache=None,
    engine="",
) -> FigureResult:
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    # One flat sweep so every point parallelizes together.
    configs: Dict[str, MachineConfig] = {}
    points = []
    for window in windows:
        points.append(("window", window, dict(rob_size=window)))
    for depth in depths:
        points.append(
            ("depth", depth, dict(rob_size=256, pipeline_depth=depth))
        )
    for kind, value, overrides in points:
        configs[f"{kind}-{value}-base"] = MachineConfig.baseline(**overrides)
        configs[f"{kind}-{value}-dhp"] = MachineConfig.dhp(**overrides)
        configs[f"{kind}-{value}-dmp"] = MachineConfig.dmp(
            enhanced=True, **overrides
        )
    suite = _suite(
        configs, contexts, benchmarks, iterations, jobs, cache, engine
    )
    rows = []
    for kind, value, _ in points:
        means = []
        for machine in ("base", "dhp", "dmp"):
            label = f"{kind}-{value}-{machine}"
            ipcs = [suite.stats(b, label).ipc for b in benchmarks]
            means.append(sum(ipcs) / len(ipcs))
        rows.append([kind, value] + means)
    return FigureResult(
        "Figure 13: IPC vs. window size (top) and pipeline depth (bottom)",
        ["sweep", "value", "base IPC", "DHP IPC", "enhanced-diverge IPC"],
        rows,
        notes=("Paper: DMP's edge grows with window size (6.9/9.4/10.8%) "
               "and pipeline depth (3.3/6.8/9.4%)."),
    )


# ---------------------------------------------------------------------------
# Hint-free DMP — dynamic merge-point prediction vs compiler hints
# ---------------------------------------------------------------------------

def figmpp(contexts=None, benchmarks=BENCHMARK_NAMES, iterations=None,
           jobs=1, cache=None, engine=""):
    """Hint-free DMP (mode ``"mpp"``) against compiler-hinted DMP.

    Not a paper exhibit — the follow-on study behind
    docs/merge_point_prediction.md: how much of the compiler-hinted IPC
    gain the learned merge points recover, and how accurate the learned
    points are (fraction of outcome-resolving episodes whose alternate
    path reached the learned CFM)."""
    cache = ArtifactCache.resolve(cache)
    contexts = _contexts(contexts, benchmarks, iterations, cache)
    suite = _suite(
        {
            "base": MachineConfig.baseline(),
            "dmp": MachineConfig.dmp(enhanced=True),
            "mpp": MachineConfig.mpp(),
        },
        contexts, benchmarks, iterations, jobs, cache, engine,
    )
    rows = []
    cols = [[], [], [], []]
    for benchmark in benchmarks:
        base = suite.stats(benchmark, "base")
        dmp = suite.stats(benchmark, "dmp")
        mpp = suite.stats(benchmark, "mpp")
        dmp_gain = 100.0 * (dmp.ipc / base.ipc - 1.0)
        mpp_gain = 100.0 * (mpp.ipc / base.ipc - 1.0)
        accuracy = 100.0 * mpp.merge_accuracy
        row = [benchmark, dmp_gain, mpp_gain, mpp.mpp_predictions, accuracy]
        rows.append(row)
        for col, value in zip(cols, row[1:]):
            col.append(value)
    rows.append(_mean_row("amean", cols))
    return FigureResult(
        "Hint-free DMP: learned vs compiler merge points",
        ["benchmark", "%IPC dmp", "%IPC mpp", "mpp episodes", "%merge acc"],
        rows,
        notes=("mpp opens episodes only after the predictor trains, so it "
               "trails compiler hints early in a run; accuracy counts "
               "outcome-resolving episodes (resolution-truncated ones are "
               "neutral)."),
    )


#: Everything, in paper order (used by the full-reproduction example).
ALL_DRIVERS = {
    "fig1": fig1,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "figmpp": figmpp,
}
