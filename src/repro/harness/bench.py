"""Engine microbenchmark harness behind ``repro bench``.

Measures simulated-instructions-per-second for each benchmark x machine
configuration in three cells:

``reference_cold``
    the straight-line reference engine, static-analysis caches cleared
    before every repeat;
``fast_cold``
    the pre-decoded block-plan engine, caches cleared before every
    repeat (so plan building is charged to the run);
``fast_warm``
    the fast engine with the program-scoped analysis (block plans,
    postdominators, reconvergence points) already built.

Every fast cell is differentially checked against the reference stats —
a cell is only reported with ``identical: true`` if the two engines'
:class:`~repro.uarch.stats.SimStats` match bit for bit.

Timing uses :func:`time.process_time` (CPU time, immune to the wall
clock noise of shared hosts) and keeps the best of ``repeats`` runs.
Raw instructions-per-second is machine-dependent, so regression
checking (:func:`compare`) works on the *speedup ratios* between the
engines, which transfer across hosts.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cfg.analysis import ProgramAnalysis
from repro.core.processors import simulate
from repro.harness.experiment import BenchmarkContext
from repro.obs.events import CollectorTracer
from repro.uarch.config import MachineConfig

#: JSON schema tag, bumped on incompatible report layout changes.
SCHEMA = "repro-bench/1"

#: Machine configurations the bench knows how to build.  The perfect-
#: predictor variants are excluded: they exercise the same engine code
#: paths with less work, which only adds noise to the matrix.
CONFIG_FACTORIES = {
    "base": MachineConfig.baseline,
    "dhp": MachineConfig.dhp,
    "dmp": MachineConfig.dmp,
    "dmp-enhanced": lambda: MachineConfig.dmp(enhanced=True),
    "dualpath": MachineConfig.dualpath,
}

DEFAULT_BENCHMARKS = ("parser", "gzip", "mcf")
DEFAULT_CONFIGS = ("base", "dmp-enhanced", "dhp", "dualpath")
DEFAULT_ITERATIONS = 500
DEFAULT_REPEATS = 3

#: The quick matrix the CI job runs (see ``repro bench --smoke``).
SMOKE_BENCHMARKS = ("parser", "gzip")
SMOKE_CONFIGS = ("base", "dmp-enhanced")
SMOKE_ITERATIONS = 300
SMOKE_REPEATS = 2


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _measure_cell(context: BenchmarkContext, ref_config: MachineConfig,
                  fast_config: MachineConfig, repeats: int):
    """Best-of-``repeats`` CPU seconds for the three cells of one
    (benchmark, config) pair.

    The reference, fast-cold and fast-warm runs are *interleaved* within
    each repeat rather than measured phase by phase: host speed drifts
    on the timescale of seconds, and interleaving exposes every engine
    to the same drift so the speedup *ratio* stays honest.  Bypasses the
    harness's stats memo on purpose — the memo would turn every repeat
    after the first into a dict lookup.
    """
    hints = context.hints_for(ref_config)
    warm_words = context.workload.memory.warm_words()
    program, trace = context.program, context.trace

    def timed(config):
        t0 = time.process_time()
        stats = simulate(program, trace, config, hints=hints,
                         benchmark=context.name, warm_words=warm_words)
        return time.process_time() - t0, stats

    best = [math.inf, math.inf, math.inf]
    stats = [None, None, None]
    for _ in range(repeats):
        ProgramAnalysis.reset(program)
        ref_s, stats[0] = timed(ref_config)
        ProgramAnalysis.reset(program)
        fast_s, stats[1] = timed(fast_config)
        # Analysis caches are warm from the run just above.
        warm_s, stats[2] = timed(fast_config)
        for i, elapsed in enumerate((ref_s, fast_s, warm_s)):
            if elapsed < best[i]:
                best[i] = elapsed
    return best, stats


def run_bench(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
    cache=None,
    progress=None,
    trace_dir: Optional[str] = None,
) -> Dict:
    """Run the engine benchmark matrix and return the report dict.

    Every cell also performs one *traced* fast run to prove the
    observability layer does not perturb the simulation
    (``traced_identical``); with ``trace_dir`` set, those runs stream
    their JSONL event traces there instead of an in-memory collector.
    """
    unknown = [c for c in configs if c not in CONFIG_FACTORIES]
    if unknown:
        raise ValueError(f"unknown bench configs: {', '.join(unknown)}")
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    say = progress or (lambda msg: None)
    cells: List[Dict] = []
    for name in benchmarks:
        context = BenchmarkContext(name, iterations=iterations, seed=seed,
                                   cache=cache)
        for config_name in configs:
            base_config = CONFIG_FACTORIES[config_name]()
            ref_config = base_config.replace(engine="reference")
            fast_config = base_config.replace(engine="fast")
            (ref_s, fast_s, warm_s), (ref_stats, fast_stats, warm_stats) = (
                _measure_cell(context, ref_config, fast_config, repeats)
            )
            ref_dict = dataclasses.asdict(ref_stats)
            identical = (
                ref_dict == dataclasses.asdict(fast_stats)
                and ref_dict == dataclasses.asdict(warm_stats)
            )
            # Observability contract: a traced run must not perturb the
            # simulation (the tracer only observes).  One extra fast run
            # with a tracer attached proves it per cell.
            if trace_dir is not None:
                from repro.obs.events import JsonlTracer
                from repro.obs.runtime import trace_path

                tracer = JsonlTracer(
                    trace_path(trace_dir, name, config_name),
                    meta={"benchmark": name, "config": config_name,
                          "iterations": iterations, "seed": seed},
                )
            else:
                tracer = CollectorTracer()
            try:
                traced_stats = simulate(
                    context.program, context.trace, fast_config,
                    hints=context.hints_for(fast_config),
                    benchmark=context.name,
                    warm_words=context.workload.memory.warm_words(),
                    tracer=tracer,
                )
            finally:
                tracer.close()
            traced_identical = ref_dict == dataclasses.asdict(traced_stats)
            insts = ref_stats.retired_instructions
            # A zero CPU-time measurement means the cell finished below
            # the process_time tick: its speedup ratios are meaningless,
            # not merely "0.0".  Mark it so the geomean and regression
            # gates can exclude it instead of ingesting a fake zero.
            degenerate = not (ref_s > 0 and fast_s > 0 and warm_s > 0)
            cell = {
                "benchmark": name,
                "config": config_name,
                "retired_instructions": insts,
                "identical": identical,
                "traced_identical": traced_identical,
                "traced_events": tracer.events_emitted,
                "degenerate": degenerate,
                "reference_cold_s": ref_s,
                "fast_cold_s": fast_s,
                "fast_warm_s": warm_s,
                "reference_cold_ips": insts / ref_s if ref_s else 0.0,
                "fast_cold_ips": insts / fast_s if fast_s else 0.0,
                "fast_warm_ips": insts / warm_s if warm_s else 0.0,
                "speedup_cold": ref_s / fast_s if fast_s else 0.0,
                "speedup_warm": ref_s / warm_s if warm_s else 0.0,
            }
            cells.append(cell)
            say(f"{name:8s} {config_name:12s} "
                f"ref {ref_s:6.3f}s  fast {fast_s:6.3f}s  "
                f"warm {warm_s:6.3f}s  "
                f"speedup {cell['speedup_cold']:.2f}x/"
                f"{cell['speedup_warm']:.2f}x  "
                f"identical={identical}"
                + (" DEGENERATE" if degenerate else ""))
    live = [c for c in cells if not c["degenerate"]]
    summary = {
        "geomean_speedup_cold": geomean(c["speedup_cold"] for c in live),
        "geomean_speedup_warm": geomean(c["speedup_warm"] for c in live),
        "all_identical": all(c["identical"] for c in cells),
        "all_traced_identical": all(c["traced_identical"] for c in cells),
        "degenerate_cells": [
            f"{c['benchmark']}/{c['config']}" for c in cells
            if c["degenerate"]
        ],
    }
    return {
        "schema": SCHEMA,
        "parameters": {
            "benchmarks": list(benchmarks),
            "configs": list(configs),
            "iterations": iterations,
            "seed": seed,
            "repeats": repeats,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "cells": cells,
        "summary": summary,
    }


def _cell_map(report: Dict) -> Dict:
    return {(c["benchmark"], c["config"]): c for c in report["cells"]}


def _degenerate(cell: Dict) -> bool:
    """Degenerate marker, inferred for pre-marker reports where a zero
    speedup was the only (ambiguous) signal."""
    return bool(cell.get("degenerate", cell.get("speedup_cold", 0) <= 0))


def compare(current: Dict, baseline: Dict,
            max_regression: float = 0.25) -> List[str]:
    """Regressions of ``current`` against a ``baseline`` report.

    Raw instructions-per-second depends on the host, so the comparison
    is between *speedup ratios* (fast vs reference on the same host at
    the same moment): a cell regresses when its cold speedup falls more
    than ``max_regression`` below the baseline's for the same
    (benchmark, config) pair.  Cells present on only one side are
    skipped, as are cells marked degenerate on either side (a zero
    CPU-time measurement carries no ratio information); a
    fast/reference or traced/untraced stats mismatch is always a
    failure.  Returns a list of human-readable violations (empty =
    pass).
    """
    problems: List[str] = []
    for cell in current["cells"]:
        if not cell["identical"]:
            problems.append(
                f"{cell['benchmark']}/{cell['config']}: fast engine stats "
                f"diverge from the reference engine"
            )
        if not cell.get("traced_identical", True):
            problems.append(
                f"{cell['benchmark']}/{cell['config']}: tracing perturbed "
                f"the simulation stats"
            )
    base_cells = _cell_map(baseline)
    for key, cell in _cell_map(current).items():
        base = base_cells.get(key)
        if base is None or _degenerate(base) or _degenerate(cell):
            continue
        ratio = cell["speedup_cold"] / base["speedup_cold"]
        if ratio < 1.0 - max_regression:
            problems.append(
                f"{key[0]}/{key[1]}: cold speedup {cell['speedup_cold']:.2f}x "
                f"is {1 - ratio:.0%} below baseline "
                f"{base['speedup_cold']:.2f}x "
                f"(allowed {max_regression:.0%})"
            )
    cur_g = current["summary"]["geomean_speedup_cold"]
    base_g = baseline["summary"]["geomean_speedup_cold"]
    if base_g > 0 and cur_g / base_g < 1.0 - max_regression:
        problems.append(
            f"overall: geomean cold speedup {cur_g:.2f}x is "
            f"{1 - cur_g / base_g:.0%} below baseline {base_g:.2f}x"
        )
    return problems


def load_report(path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {report.get('schema')!r}"
        )
    return report


def save_report(report: Dict, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
