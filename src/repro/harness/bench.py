"""Engine microbenchmark harness behind ``repro bench``.

Measures simulated-instructions-per-second for each benchmark x machine
configuration in three cells:

``reference_cold``
    the straight-line reference engine, static-analysis caches cleared
    before every repeat;
``fast_cold``
    the pre-decoded block-plan engine, caches cleared before every
    repeat (so plan building is charged to the run);
``fast_warm``
    the fast engine with the program-scoped analysis (block plans,
    postdominators, reconvergence points) already built.

On top of the per-cell matrix, the harness times the vectorized batch
engine on a lockstep design-space sweep (``suite/batch-sweep`` and the
CI-sized ``suite/batch-smoke`` cells — see :func:`_run_batch_group`),
with per-cell bit-identity asserted against the reference engine on a
deterministic sample of the grid.

Every fast cell is differentially checked against the reference stats —
a cell is only reported with ``identical: true`` if the two engines'
:class:`~repro.uarch.stats.SimStats` match bit for bit.

Timing uses :func:`time.process_time` (CPU time, immune to the wall
clock noise of shared hosts) and keeps the best of ``repeats`` runs.
Raw instructions-per-second is machine-dependent, so regression
checking (:func:`compare`) works on the *speedup ratios* between the
engines, which transfer across hosts.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cfg.analysis import ProgramAnalysis
from repro.core.processors import simulate
from repro.harness.experiment import BenchmarkContext
from repro.obs.events import CollectorTracer
from repro.uarch.config import MachineConfig

#: JSON schema tag, bumped on incompatible report layout changes.
SCHEMA = "repro-bench/1"

#: Machine configurations the bench knows how to build.  The perfect-
#: predictor variants are excluded: they exercise the same engine code
#: paths with less work, which only adds noise to the matrix.
CONFIG_FACTORIES = {
    "base": MachineConfig.baseline,
    "dhp": MachineConfig.dhp,
    "dmp": MachineConfig.dmp,
    "dmp-enhanced": lambda: MachineConfig.dmp(enhanced=True),
    "dualpath": MachineConfig.dualpath,
}

DEFAULT_BENCHMARKS = ("parser", "gzip", "mcf")
DEFAULT_CONFIGS = ("base", "dmp-enhanced", "dhp", "dualpath")
DEFAULT_ITERATIONS = 500
DEFAULT_REPEATS = 3

#: The quick matrix the CI job runs (see ``repro bench --smoke``).
SMOKE_BENCHMARKS = ("parser", "gzip")
SMOKE_CONFIGS = ("base", "dmp-enhanced")
SMOKE_ITERATIONS = 300
SMOKE_REPEATS = 2

#: The design-space sweep the batch engine is measured on: every
#: benchmark in the suite at a grid of frontend/backend sizings, all
#: advanced as one lockstep group (the paper's figure 13/14 workload —
#: many configurations, few seeds).  Timing the reference engine on the
#: full grid is exactly what the batch engine exists to avoid, so the
#: reference is timed — and bit-identity asserted — on a deterministic
#: sample of cells, and the batch side is charged its uniform per-cell
#: share of one cold group run (arena + analysis caches cleared first).
BATCH_CONFIGS = ("base", "dualpath")
BATCH_WIDTHS = (4, 8)
BATCH_DEPTHS = (10, 30)
BATCH_ROBS = (128, 512)
BATCH_RETIRES = (4, 8)
BATCH_SWEEP_SEEDS = (0, 1)
BATCH_SWEEP_SAMPLE = 10
BATCH_SMOKE_SEEDS = (0,)
BATCH_SMOKE_SAMPLE = 4

#: The predicated design-space sweep (``suite/batch-dmp-sweep``): the
#: paper's figure 13/14 comparison arms — DMP against dual-path and the
#: baseline — across the same 16 frontend/backend sizings, with every
#: dmp cell running its dpred episodes on the batch engine's vector
#: path.  Identity is asserted against the reference engine on a
#: deterministic sample as usual; throughput is additionally measured
#: against the *fast* engine on sampled dmp-mode cells
#: (``speedup_fast_dmp``) — the scalar engine a predicated sweep would
#: otherwise have to run on.
DMP_BATCH_CONFIGS = ("dmp", "dualpath", "base")


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _measure_cell(context: BenchmarkContext, ref_config: MachineConfig,
                  fast_config: MachineConfig, repeats: int):
    """Best-of-``repeats`` CPU seconds for the three cells of one
    (benchmark, config) pair.

    The reference, fast-cold and fast-warm runs are *interleaved* within
    each repeat rather than measured phase by phase: host speed drifts
    on the timescale of seconds, and interleaving exposes every engine
    to the same drift so the speedup *ratio* stays honest.  Bypasses the
    harness's stats memo on purpose — the memo would turn every repeat
    after the first into a dict lookup.
    """
    hints = context.hints_for(ref_config)
    warm_words = context.workload.memory.warm_words()
    program, trace = context.program, context.trace

    def timed(config):
        t0 = time.process_time()
        stats = simulate(program, trace, config, hints=hints,
                         benchmark=context.name, warm_words=warm_words)
        return time.process_time() - t0, stats

    best = [math.inf, math.inf, math.inf]
    stats = [None, None, None]
    for _ in range(repeats):
        ProgramAnalysis.reset(program)
        ref_s, stats[0] = timed(ref_config)
        ProgramAnalysis.reset(program)
        fast_s, stats[1] = timed(fast_config)
        # Analysis caches are warm from the run just above.
        warm_s, stats[2] = timed(fast_config)
        for i, elapsed in enumerate((ref_s, fast_s, warm_s)):
            if elapsed < best[i]:
                best[i] = elapsed
    return best, stats


def _batch_grid(
    config_names: Sequence[str] = BATCH_CONFIGS,
) -> List[MachineConfig]:
    """A lockstep sweep grid: ``config_names`` modes x 16 sizings."""
    grid = []
    for config_name in config_names:
        base = CONFIG_FACTORIES[config_name]()
        for width in BATCH_WIDTHS:
            for depth in BATCH_DEPTHS:
                for rob in BATCH_ROBS:
                    for retire in BATCH_RETIRES:
                        grid.append(base.replace(
                            engine="batch", fetch_width=width,
                            pipeline_depth=depth, rob_size=rob,
                            retire_width=retire,
                        ))
    return grid


def _run_batch_group(label: str, benchmarks: Sequence[str],
                     iterations: int, seeds: Sequence[int], sample: int,
                     cache, say,
                     config_names: Sequence[str] = BATCH_CONFIGS,
                     use_hints: bool = False,
                     fast_modes: Sequence[str] = ()) -> Optional[Dict]:
    """One cold lockstep run of the batch sweep; returns a report cell.

    ``speedup_cold`` is the geomean, over the sampled cells, of the
    reference engine's per-cell time against the batch engine's uniform
    per-cell share (group total / cell count) — lockstep execution has
    no per-cell attribution finer than that.  Every sampled cell's
    :class:`~repro.uarch.stats.SimStats` must match the batch result
    bit for bit (``identical``).  Returns ``None`` when numpy is
    unavailable (the batch engine then degrades to the fast engine, and
    a throughput claim for it would be meaningless).

    ``use_hints`` attaches each context's CFM/hammock hint table to its
    cells (predicated grids are meaningless without one); ``fast_modes``
    additionally times the *fast* engine — warm, the way a scalar sweep
    would actually run — on sampled cells of those modes and reports
    the geomean against the batch per-cell share as
    ``speedup_fast_dmp``.
    """
    from repro.uarch.batch import BatchCell, batch_supported, run_batch

    if not batch_supported():
        say(f"{label}: numpy unavailable, batch sweep skipped")
        return None
    from repro.uarch.batch.arena import clear_arena_caches

    if not benchmarks or not seeds or not config_names:
        # An empty sweep has no per-cell share to divide by; report the
        # skip instead of dying on batch_s / len(cells).
        say(f"{label}: empty sweep (no cells), batch group skipped")
        return None
    cells: List[BatchCell] = []
    programs = []
    for name in benchmarks:
        for seed in seeds:
            context = BenchmarkContext(
                name, iterations=iterations, seed=seed, cache=cache
            )
            program, trace = context.program, context.trace
            warm_words = context.workload.memory.warm_words()
            programs.append(program)
            for config in _batch_grid(config_names):
                cells.append(BatchCell(
                    program, trace, config,
                    hints=(context.hints_for(config)
                           if use_hints else None),
                    benchmark=name, warm_words=warm_words,
                ))
    # Cold: the batch run pays for its own arenas and block plans.
    for program in programs:
        ProgramAnalysis.reset(program)
    clear_arena_caches()
    fallback_reasons: Dict[str, int] = {}
    profile: Dict[str, float] = {}
    gang_stats: Dict[str, int] = {}
    t0 = time.process_time()
    results = run_batch(cells, fallback_reasons=fallback_reasons,
                        profile=profile, gang_stats=gang_stats)
    batch_s = time.process_time() - t0
    percell = batch_s / len(cells)

    stride = max(1, len(cells) // sample)
    sampled = list(range(0, len(cells), stride))[:sample]
    identical = True
    ref_times: List[float] = []
    speedups: List[float] = []
    for index in sampled:
        cell = cells[index]
        t0 = time.process_time()
        ref_stats = simulate(
            cell.program, cell.trace,
            cell.config.replace(engine="reference"), hints=cell.hints,
            benchmark=cell.benchmark, warm_words=cell.warm_words,
        )
        ref_s = time.process_time() - t0
        if dataclasses.asdict(ref_stats) != dataclasses.asdict(
                results[index]):
            identical = False
            say(f"{label}: stats mismatch on sampled cell {index} "
                f"({cell.benchmark}/{cell.config.mode})")
        if ref_s > 0:
            ref_times.append(ref_s)
            if percell > 0:
                speedups.append(ref_s / percell)
    # The fast-engine comparator for predicated grids: sampled warm
    # (analysis caches are hot from the runs above — a scalar sweep
    # would pay for them once, not per cell).
    fast_times: List[float] = []
    fast_speedups: List[float] = []
    if fast_modes:
        targets = [
            i for i, cell in enumerate(cells)
            if cell.config.mode in fast_modes
        ]
        fstride = max(1, len(targets) // sample)
        for index in targets[::fstride][:sample]:
            cell = cells[index]
            t0 = time.process_time()
            simulate(
                cell.program, cell.trace,
                cell.config.replace(engine="fast"), hints=cell.hints,
                benchmark=cell.benchmark, warm_words=cell.warm_words,
            )
            fast_s = time.process_time() - t0
            if fast_s > 0:
                fast_times.append(fast_s)
                if percell > 0:
                    fast_speedups.append(fast_s / percell)
    degenerate = not (percell > 0 and speedups)
    cell_dict = {
        "benchmark": "suite",
        "config": label,
        "retired_instructions": sum(
            r.retired_instructions for r in results
        ),
        "identical": identical,
        "degenerate": degenerate,
        "sweep_cells": len(cells),
        "sampled_reference_cells": len(sampled),
        "batch_total_s": batch_s,
        "batch_percell_s": percell,
        "reference_percell_s": geomean(ref_times),
        "speedup_cold": geomean(speedups),
        # Wall-time phase attribution for the group's one cold run
        # (`repro bench --profile` prints it): where a lockstep sweep
        # actually spends its time — the vector driver, dpred episode
        # tails, wrong-path walks, arena construction, or cells that
        # fell off the vector path entirely.
        "profile": {k: round(v, 4) for k, v in sorted(profile.items())},
        "gang_stats": dict(sorted(gang_stats.items())),
        "fallback_reasons": dict(sorted(fallback_reasons.items())),
    }
    if fast_modes:
        cell_dict["fast_sampled_cells"] = len(fast_times)
        cell_dict["fast_percell_s"] = geomean(fast_times)
        cell_dict["speedup_fast_dmp"] = geomean(fast_speedups)
    say(f"{'suite':8s} {label:12s} "
        f"batch {batch_s:6.1f}s / {len(cells)} cells = "
        f"{1000 * percell:6.1f} ms/cell  "
        f"ref sample {geomean(ref_times):6.3f} s/cell  "
        f"speedup {cell_dict['speedup_cold']:.2f}x  "
        + (f"fast-dmp {cell_dict['speedup_fast_dmp']:.2f}x  "
           if fast_modes else "")
        + f"identical={identical}"
        + (" DEGENERATE" if degenerate else ""))
    return cell_dict


def run_bench(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
    cache=None,
    progress=None,
    trace_dir: Optional[str] = None,
    batch: str = "full",
) -> Dict:
    """Run the engine benchmark matrix and return the report dict.

    Every cell also performs one *traced* fast run to prove the
    observability layer does not perturb the simulation
    (``traced_identical``); with ``trace_dir`` set, those runs stream
    their JSONL event traces there instead of an in-memory collector.

    ``batch`` controls the lockstep-sweep cells: ``"full"`` times both
    the full-suite sweep (``suite/batch-sweep``) and the quick CI shape
    (``suite/batch-smoke``, so a committed full report doubles as the
    smoke baseline), ``"smoke"`` only the latter, ``"off"`` neither.
    Batch cells are excluded from the fast-engine geomeans and
    summarized under ``geomean_batch_speedup``.
    """
    if batch not in ("full", "smoke", "off"):
        raise ValueError(f"unknown batch mode {batch!r}")
    unknown = [c for c in configs if c not in CONFIG_FACTORIES]
    if unknown:
        raise ValueError(f"unknown bench configs: {', '.join(unknown)}")
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    say = progress or (lambda msg: None)
    cells: List[Dict] = []
    for name in benchmarks:
        context = BenchmarkContext(name, iterations=iterations, seed=seed,
                                   cache=cache)
        for config_name in configs:
            base_config = CONFIG_FACTORIES[config_name]()
            ref_config = base_config.replace(engine="reference")
            fast_config = base_config.replace(engine="fast")
            (ref_s, fast_s, warm_s), (ref_stats, fast_stats, warm_stats) = (
                _measure_cell(context, ref_config, fast_config, repeats)
            )
            ref_dict = dataclasses.asdict(ref_stats)
            identical = (
                ref_dict == dataclasses.asdict(fast_stats)
                and ref_dict == dataclasses.asdict(warm_stats)
            )
            # Observability contract: a traced run must not perturb the
            # simulation (the tracer only observes).  One extra fast run
            # with a tracer attached proves it per cell.
            if trace_dir is not None:
                from repro.obs.events import JsonlTracer
                from repro.obs.runtime import trace_path

                tracer = JsonlTracer(
                    trace_path(trace_dir, name, config_name),
                    meta={"benchmark": name, "config": config_name,
                          "iterations": iterations, "seed": seed},
                )
            else:
                tracer = CollectorTracer()
            try:
                traced_stats = simulate(
                    context.program, context.trace, fast_config,
                    hints=context.hints_for(fast_config),
                    benchmark=context.name,
                    warm_words=context.workload.memory.warm_words(),
                    tracer=tracer,
                )
            finally:
                tracer.close()
            traced_identical = ref_dict == dataclasses.asdict(traced_stats)
            insts = ref_stats.retired_instructions
            # A zero CPU-time measurement means the cell finished below
            # the process_time tick: its speedup ratios are meaningless,
            # not merely "0.0".  Mark it so the geomean and regression
            # gates can exclude it instead of ingesting a fake zero.
            degenerate = not (ref_s > 0 and fast_s > 0 and warm_s > 0)
            cell = {
                "benchmark": name,
                "config": config_name,
                "retired_instructions": insts,
                "identical": identical,
                "traced_identical": traced_identical,
                "traced_events": tracer.events_emitted,
                "degenerate": degenerate,
                "reference_cold_s": ref_s,
                "fast_cold_s": fast_s,
                "fast_warm_s": warm_s,
                "reference_cold_ips": insts / ref_s if ref_s else 0.0,
                "fast_cold_ips": insts / fast_s if fast_s else 0.0,
                "fast_warm_ips": insts / warm_s if warm_s else 0.0,
                "speedup_cold": ref_s / fast_s if fast_s else 0.0,
                "speedup_warm": ref_s / warm_s if warm_s else 0.0,
            }
            cells.append(cell)
            say(f"{name:8s} {config_name:12s} "
                f"ref {ref_s:6.3f}s  fast {fast_s:6.3f}s  "
                f"warm {warm_s:6.3f}s  "
                f"speedup {cell['speedup_cold']:.2f}x/"
                f"{cell['speedup_warm']:.2f}x  "
                f"identical={identical}"
                + (" DEGENERATE" if degenerate else ""))
    if batch != "off":
        from repro.workloads.suite import BENCHMARK_NAMES

        if batch == "full":
            sweep = _run_batch_group(
                "batch-sweep", BENCHMARK_NAMES, iterations,
                BATCH_SWEEP_SEEDS, BATCH_SWEEP_SAMPLE, cache, say,
            )
            if sweep is not None:
                cells.append(sweep)
            dmp_sweep = _run_batch_group(
                "batch-dmp-sweep", BENCHMARK_NAMES, iterations,
                BATCH_SWEEP_SEEDS, BATCH_SWEEP_SAMPLE, cache, say,
                config_names=DMP_BATCH_CONFIGS, use_hints=True,
                fast_modes=("dmp",),
            )
            if dmp_sweep is not None:
                cells.append(dmp_sweep)
        smoke = _run_batch_group(
            "batch-smoke", SMOKE_BENCHMARKS, SMOKE_ITERATIONS,
            BATCH_SMOKE_SEEDS, BATCH_SMOKE_SAMPLE, cache, say,
        )
        if smoke is not None:
            cells.append(smoke)
        dmp_smoke = _run_batch_group(
            "batch-dmp-smoke", SMOKE_BENCHMARKS, SMOKE_ITERATIONS,
            BATCH_SMOKE_SEEDS, BATCH_SMOKE_SAMPLE, cache, say,
            config_names=DMP_BATCH_CONFIGS, use_hints=True,
            fast_modes=("dmp",),
        )
        if dmp_smoke is not None:
            cells.append(dmp_smoke)
    is_batch = [c["config"].startswith("batch-") for c in cells]
    live = [
        c for c, bat in zip(cells, is_batch)
        if not (bat or c["degenerate"])
    ]
    batch_live = [
        c for c, bat in zip(cells, is_batch)
        if bat and not c["degenerate"]
    ]
    profile_total: Dict[str, float] = {}
    gang_total: Dict[str, int] = {}
    for c in batch_live:
        for key, val in c.get("profile", {}).items():
            profile_total[key] = round(
                profile_total.get(key, 0.0) + val, 4
            )
        for key, val in c.get("gang_stats", {}).items():
            if key == "max_gang":
                gang_total[key] = max(gang_total.get(key, 0), val)
            else:
                gang_total[key] = gang_total.get(key, 0) + val
    summary = {
        "geomean_speedup_cold": geomean(c["speedup_cold"] for c in live),
        "geomean_speedup_warm": geomean(c["speedup_warm"] for c in live),
        "geomean_batch_speedup": geomean(
            c["speedup_cold"] for c in batch_live
        ),
        "geomean_dmp_fast_speedup": geomean(
            c["speedup_fast_dmp"] for c in batch_live
            if "speedup_fast_dmp" in c
        ),
        "profile": dict(sorted(profile_total.items())),
        "gang_stats": dict(sorted(gang_total.items())),
        "all_identical": all(c["identical"] for c in cells),
        "all_traced_identical": all(
            c.get("traced_identical", True) for c in cells
        ),
        "degenerate_cells": [
            f"{c['benchmark']}/{c['config']}" for c in cells
            if c["degenerate"]
        ],
    }
    return {
        "schema": SCHEMA,
        "parameters": {
            "benchmarks": list(benchmarks),
            "configs": list(configs),
            "iterations": iterations,
            "seed": seed,
            "repeats": repeats,
            "batch": batch,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "cells": cells,
        "summary": summary,
    }


def _cell_map(report: Dict) -> Dict:
    return {(c["benchmark"], c["config"]): c for c in report["cells"]}


def _degenerate(cell: Dict) -> bool:
    """Degenerate marker, inferred for pre-marker reports where a zero
    speedup was the only (ambiguous) signal.

    A non-positive speedup is treated as degenerate even when the cell
    carries an explicit ``degenerate: false`` marker: such a cell holds
    no ratio information, and feeding it to the per-cell regression
    check would divide by zero.
    """
    if bool(cell.get("degenerate", False)):
        return True
    return cell.get("speedup_cold", 0) <= 0


def compare(current: Dict, baseline: Dict,
            max_regression: float = 0.25) -> List[str]:
    """Regressions of ``current`` against a ``baseline`` report.

    Raw instructions-per-second depends on the host, so the comparison
    is between *speedup ratios* (fast vs reference on the same host at
    the same moment): a cell regresses when its cold speedup falls more
    than ``max_regression`` below the baseline's for the same
    (benchmark, config) pair.  Cells present on only one side are
    skipped, as are cells marked degenerate on either side (a zero
    CPU-time measurement carries no ratio information); a
    fast/reference or traced/untraced stats mismatch is always a
    failure.  Returns a list of human-readable violations (empty =
    pass).
    """
    problems: List[str] = []
    for cell in current["cells"]:
        if not cell["identical"]:
            problems.append(
                f"{cell['benchmark']}/{cell['config']}: fast engine stats "
                f"diverge from the reference engine"
            )
        if not cell.get("traced_identical", True):
            problems.append(
                f"{cell['benchmark']}/{cell['config']}: tracing perturbed "
                f"the simulation stats"
            )
    base_cells = _cell_map(baseline)
    for key, cell in _cell_map(current).items():
        base = base_cells.get(key)
        if base is None or _degenerate(base) or _degenerate(cell):
            continue
        ratio = cell["speedup_cold"] / base["speedup_cold"]
        if ratio < 1.0 - max_regression:
            problems.append(
                f"{key[0]}/{key[1]}: cold speedup {cell['speedup_cold']:.2f}x "
                f"is {1 - ratio:.0%} below baseline "
                f"{base['speedup_cold']:.2f}x "
                f"(allowed {max_regression:.0%})"
            )
    cur_g = current["summary"].get("geomean_speedup_cold", 0.0)
    base_g = baseline["summary"].get("geomean_speedup_cold", 0.0)
    if base_g > 0 and cur_g / base_g < 1.0 - max_regression:
        problems.append(
            f"overall: geomean cold speedup {cur_g:.2f}x is "
            f"{1 - cur_g / base_g:.0%} below baseline {base_g:.2f}x"
        )
    return problems


def find_latest_baseline(directory: str = ".") -> str:
    """Path of the newest committed ``BENCH_*.json`` in ``directory``.

    Report names embed a UTC timestamp (``BENCH_20260807T034511Z.json``),
    so lexicographic order *is* chronological order — the resolver
    behind ``repro bench --baseline latest``.  Raises
    :class:`FileNotFoundError` with an actionable message when the
    directory holds no baseline at all.
    """
    import glob

    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise FileNotFoundError(
            f"no BENCH_*.json baseline found in "
            f"{os.path.abspath(directory)} — run `repro bench` "
            f"and commit the report first"
        )
    return paths[-1]


def load_report(path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {report.get('schema')!r}"
        )
    return report


def save_report(report: Dict, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
