"""Persistent, content-addressed artifact cache for the harness.

Sweeping many machine configurations over many benchmarks (every figure
of the paper) repeats two kinds of expensive work: machine-independent
artifact generation (functional trace, profile, hint tables) and the
timing simulations themselves.  :class:`ArtifactCache` persists both to
disk, keyed by the canonical fingerprints of
:mod:`repro.harness.fingerprint` — never by ``repr()``.

Layout (see docs/performance.md)::

    <root>/<kind>/<fingerprint>.bin

where ``kind`` is one of ``trace``, ``profile``, ``hints-dmp``,
``hints-dhp``, ``hints-wish`` or ``sim``.  Every file carries a magic
header and a SHA-256 checksum of its payload; a truncated, bit-flipped
or otherwise corrupt entry is *detected, discarded and recomputed* — it
reuses the :class:`~repro.errors.HintValidationError` pathway
internally and never silently feeds bad data back into a run.  Hint
tables are stored in their existing compact byte encoding
(:meth:`~repro.isa.encoding.HintTable.to_bytes`), whose hardened loader
performs its own structural validation on top of the checksum.

Writes are atomic (temp file + ``os.replace``), so concurrent processes
sharing a cache directory can only ever observe complete entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import HintValidationError
from repro.isa.encoding import HintTable

#: File magic for cache entries; the trailing byte is the entry-format
#: version (bump on incompatible layout changes).
_MAGIC = b"DMPC\x01"
_DIGEST_SIZE = hashlib.sha256().digest_size


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss/corruption accounting, per artifact kind."""

    hits: Dict[str, int] = dataclasses.field(default_factory=dict)
    misses: Dict[str, int] = dataclasses.field(default_factory=dict)
    stores: int = 0
    #: Entries that failed the checksum / decode / hint validation and
    #: were deleted so the artifact gets recomputed.
    corrupt_discarded: int = 0

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def record_hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def record_miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def summary(self) -> str:
        kinds = sorted(set(self.hits) | set(self.misses))
        parts = [
            f"{kind}={self.hits.get(kind, 0)}/{self.hits.get(kind, 0) + self.misses.get(kind, 0)}"
            for kind in kinds
        ]
        line = (
            f"cache: {self.total_hits} hit(s), {self.total_misses} miss(es), "
            f"{self.stores} store(s), {self.corrupt_discarded} corrupt discarded"
        )
        if parts:
            line += "\n  per kind (hits/lookups): " + "  ".join(parts)
        return line


class ArtifactCache:
    """Content-addressed on-disk cache of harness artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.counters = CacheCounters()

    @classmethod
    def resolve(
        cls, cache: Union[None, str, Path, "ArtifactCache"]
    ) -> Optional["ArtifactCache"]:
        """Accept ``None``, a directory path, or an existing cache."""
        if cache is None or isinstance(cache, ArtifactCache):
            return cache
        return cls(cache)

    # -- raw entries ------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.bin"

    def store_bytes(self, kind: str, key: str, payload: bytes) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)  # atomic: readers never see a partial entry
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.counters.stores += 1

    def load_bytes(self, kind: str, key: str) -> Optional[bytes]:
        """The stored payload, or ``None`` on miss *or* corruption.

        Corruption (truncation, bad magic, checksum mismatch) is counted,
        the entry deleted, and ``None`` returned so the caller recomputes
        — the same detect-and-recover contract the hardened hint loader
        provides (:class:`~repro.errors.HintValidationError`)."""
        path = self._path(kind, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.counters.record_miss(kind)
            return None
        try:
            payload = self._decode(blob, kind=kind, key=key)
        except HintValidationError:
            self.mark_corrupt(kind, key, had_hit=False)
            return None
        self.counters.record_hit(kind)
        return payload

    @staticmethod
    def _decode(blob: bytes, kind: str, key: str) -> bytes:
        header = len(_MAGIC) + _DIGEST_SIZE
        if len(blob) < header:
            raise HintValidationError(
                [f"cache entry {kind}/{key} truncated below its header"]
            )
        if blob[: len(_MAGIC)] != _MAGIC:
            raise HintValidationError(
                [f"cache entry {kind}/{key} has wrong magic"]
            )
        digest = blob[len(_MAGIC): header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise HintValidationError(
                [f"cache entry {kind}/{key} failed its checksum"]
            )
        return payload

    def discard(self, kind: str, key: str) -> None:
        """Delete one entry (missing is fine)."""
        try:
            self._path(kind, key).unlink()
        except FileNotFoundError:
            pass

    def mark_corrupt(self, kind: str, key: str, had_hit: bool = True) -> None:
        """Discard a corrupt/undecodable entry and fix the accounting:
        a previously-recorded hit (``had_hit``) becomes a miss, and the
        corruption is counted so ``--timings`` surfaces it."""
        if had_hit:
            self.counters.hits[kind] -= 1
        self.counters.record_miss(kind)
        self.counters.corrupt_discarded += 1
        self.discard(kind, key)

    # -- typed entries ----------------------------------------------------

    def store_pickle(self, kind: str, key: str, obj: Any) -> None:
        self.store_bytes(kind, key, pickle.dumps(obj, protocol=4))

    def load_pickle(self, kind: str, key: str) -> Optional[Any]:
        payload = self.load_bytes(kind, key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # Checksum passed but the pickle does not decode (e.g. the
            # repo's classes changed shape): stale, not just corrupt —
            # same recovery: drop it and recompute.
            self.mark_corrupt(kind, key)
            return None

    def store_hints(self, kind: str, key: str, table: HintTable) -> None:
        self.store_bytes(kind, key, table.to_bytes())

    def load_hints(self, kind: str, key: str) -> Optional[HintTable]:
        """Load a hint table through the hardened byte decoder.

        A payload that passes the checksum but fails
        :meth:`HintTable.from_bytes` structural validation is discarded
        and recomputed, exactly like a checksum failure."""
        payload = self.load_bytes(kind, key)
        if payload is None:
            return None
        try:
            return HintTable.from_bytes(payload)
        except HintValidationError:
            self.mark_corrupt(kind, key)
            return None
