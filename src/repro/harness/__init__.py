"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.experiment` — per-benchmark context (workload →
  trace → profiles → hint tables, built once, shared across machine
  configurations) and suite runners;
* :mod:`repro.harness.tables` — text rendering of result tables;
* :mod:`repro.harness.figures` — one driver per paper figure/table, each
  returning the data series the paper plots.
"""

from repro.harness.experiment import (
    BenchmarkContext,
    SuiteResult,
    run_suite,
)
from repro.harness.tables import format_table
from repro.harness import figures

__all__ = [
    "BenchmarkContext",
    "SuiteResult",
    "run_suite",
    "format_table",
    "figures",
]
