"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.experiment` — per-benchmark context (workload →
  trace → profiles → hint tables, built once, shared across machine
  configurations) and suite runners;
* :mod:`repro.harness.fingerprint` — canonical experiment fingerprints
  (the cache/memo keys; never ``repr``);
* :mod:`repro.harness.cache` — persistent, checksummed artifact cache;
* :mod:`repro.harness.bench` — engine throughput microbenchmark and
  perf-regression gate (``repro bench``);
* :mod:`repro.harness.parallel` — process-pool fan-out of simulations;
* :mod:`repro.harness.tables` — text rendering of result tables;
* :mod:`repro.harness.figures` — one driver per paper figure/table, each
  returning the data series the paper plots.
"""

from repro.harness import bench
from repro.harness.cache import ArtifactCache, CacheCounters
from repro.harness.experiment import (
    BenchmarkContext,
    SuiteResult,
    SuiteTimings,
    run_multi_seed,
    run_suite,
)
from repro.harness.fingerprint import (
    config_fingerprint,
    context_fingerprint,
    fingerprint,
)
from repro.harness.tables import format_table
from repro.harness import figures

__all__ = [
    "ArtifactCache",
    "bench",
    "BenchmarkContext",
    "CacheCounters",
    "SuiteResult",
    "SuiteTimings",
    "config_fingerprint",
    "context_fingerprint",
    "fingerprint",
    "format_table",
    "figures",
    "run_multi_seed",
    "run_suite",
]
