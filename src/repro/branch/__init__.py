"""Branch-prediction substrate.

The paper's baseline front end uses a 64KB perceptron predictor
(Jiménez & Lin), a 4K-entry BTB, a 64-entry return address stack and an
indirect target cache (Table 2).  All of those are implemented here, plus
the simpler bimodal/gshare/hybrid predictors used for ablations and a
perfect predictor for the ``perfect-cbp`` series of Figure 7.

Every direction predictor shares the :class:`~repro.branch.base.BranchPredictor`
interface: ``predict`` returns a :class:`~repro.branch.base.Prediction`
capturing the state used to predict (so training at retirement uses the
history the prediction saw, as real designs do), ``spec_update`` shifts the
speculative global history at fetch, ``train`` updates the tables at
retirement, and ``snapshot``/``restore`` provide the history checkpointing
DMP relies on (Section 2.3).
"""

from repro.branch.base import BranchPredictor, GlobalHistory, Prediction
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.perfect import PerfectPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.indirect import IndirectTargetCache

__all__ = [
    "BranchPredictor",
    "GlobalHistory",
    "Prediction",
    "BimodalPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "PerceptronPredictor",
    "PerfectPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "IndirectTargetCache",
]


def make_predictor(kind: str, **kwargs) -> BranchPredictor:
    """Factory used by machine configs: ``perceptron``, ``gshare``,
    ``bimodal``, ``hybrid`` or ``perfect``."""
    predictors = {
        "perceptron": PerceptronPredictor,
        "gshare": GSharePredictor,
        "bimodal": BimodalPredictor,
        "hybrid": HybridPredictor,
        "perfect": PerfectPredictor,
    }
    if kind not in predictors:
        raise ValueError(f"unknown predictor kind {kind!r}")
    return predictors[kind](**kwargs)
