"""Branch target buffer: set-associative PC -> target cache with LRU."""

from __future__ import annotations

from typing import Dict, List, Optional


class BranchTargetBuffer:
    """A set-associative BTB (Table 2: 4K entries).

    A front end only redirects fetch for a taken branch if the BTB knows
    the target; a BTB miss on a taken branch costs a bubble.  Targets here
    are instruction PCs.
    """

    def __init__(self, num_entries: int = 4096, associativity: int = 4) -> None:
        if num_entries % associativity:
            raise ValueError("entries must divide evenly into ways")
        self.num_sets = num_entries // associativity
        self.associativity = associativity
        # Insertion-ordered builtin dicts, oldest entry first (same LRU
        # order an OrderedDict maintains; see repro.memsys.cache).
        self._sets: List[Dict[int, int]] = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.num_sets

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, updating LRU state."""
        entry_set = self._sets[(pc >> 2) % self.num_sets]
        target = entry_set.get(pc)
        if target is not None:
            del entry_set[pc]
            entry_set[pc] = target
            self.hits += 1
            return target
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        entry_set = self._sets[(pc >> 2) % self.num_sets]
        if pc in entry_set:
            del entry_set[pc]
            entry_set[pc] = target
            return
        if len(entry_set) >= self.associativity:
            del entry_set[next(iter(entry_set))]  # evict LRU
        entry_set[pc] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
