"""Branch target buffer: set-associative PC -> target cache with LRU."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional


class BranchTargetBuffer:
    """A set-associative BTB (Table 2: 4K entries).

    A front end only redirects fetch for a taken branch if the BTB knows
    the target; a BTB miss on a taken branch costs a bubble.  Targets here
    are instruction PCs.
    """

    def __init__(self, num_entries: int = 4096, associativity: int = 4) -> None:
        if num_entries % associativity:
            raise ValueError("entries must divide evenly into ways")
        self.num_sets = num_entries // associativity
        self.associativity = associativity
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.num_sets

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, updating LRU state."""
        entry_set = self._sets.get(self._set_index(pc))
        if entry_set is not None and pc in entry_set:
            entry_set.move_to_end(pc)
            self.hits += 1
            return entry_set[pc]
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        index = self._set_index(pc)
        entry_set = self._sets.setdefault(index, OrderedDict())
        if pc in entry_set:
            entry_set.move_to_end(pc)
            entry_set[pc] = target
            return
        if len(entry_set) >= self.associativity:
            entry_set.popitem(last=False)  # evict LRU
        entry_set[pc] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
