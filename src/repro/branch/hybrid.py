"""Hybrid (tournament) predictor: gshare + bimodal with a chooser.

Used to reproduce the related-work comparison context (Klauser et al.
evaluated DHP with a hybrid gshare+bimodal predictor) and as an ablation
point between bimodal and perceptron.
"""

from __future__ import annotations

from repro.branch.base import (
    BranchPredictor,
    Prediction,
    saturating_decrement,
    saturating_increment,
)
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor


class _HybridMeta:
    __slots__ = ("gshare_pred", "bimodal_pred", "choice_index")

    def __init__(self, gshare_pred, bimodal_pred, choice_index):
        self.gshare_pred = gshare_pred
        self.bimodal_pred = bimodal_pred
        self.choice_index = choice_index


class HybridPredictor(BranchPredictor):
    """McFarling-style tournament: a 2-bit chooser selects per branch."""

    def __init__(
        self,
        table_size: int = 4096,
        history_bits: int = 12,
    ) -> None:
        super().__init__(history_bits)
        self.gshare = GSharePredictor(table_size, history_bits)
        self.bimodal = BimodalPredictor(table_size, history_bits)
        self.table_size = table_size
        # 0..1 -> prefer bimodal, 2..3 -> prefer gshare
        self._choice = [2] * table_size

    def predict(self, pc: int) -> Prediction:
        g = self.gshare.predict(pc)
        b = self.bimodal.predict(pc)
        choice_index = (pc >> 2) & (self.table_size - 1)
        use_gshare = self._choice[choice_index] >= 2
        taken = g.taken if use_gshare else b.taken
        return Prediction(
            taken,
            pc,
            history=self.history.bits,
            meta=_HybridMeta(g, b, choice_index),
        )

    def spec_update(self, taken: bool) -> None:
        super().spec_update(taken)
        self.gshare.spec_update(taken)
        self.bimodal.spec_update(taken)

    def snapshot(self) -> int:
        return self.history.snapshot()

    def restore(self, snap: int) -> None:
        super().restore(snap)
        self.gshare.restore(snap)
        self.bimodal.restore(snap)

    def train(self, prediction: Prediction, actual: bool) -> None:
        meta: _HybridMeta = prediction.meta
        self.gshare.train(meta.gshare_pred, actual)
        self.bimodal.train(meta.bimodal_pred, actual)
        g_correct = meta.gshare_pred.taken == actual
        b_correct = meta.bimodal_pred.taken == actual
        if g_correct != b_correct:
            counter = self._choice[meta.choice_index]
            if g_correct:
                self._choice[meta.choice_index] = saturating_increment(
                    counter, 3
                )
            else:
                self._choice[meta.choice_index] = saturating_decrement(counter)
