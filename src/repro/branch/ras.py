"""Return address stack (Table 2: 64 entries)."""

from __future__ import annotations

from typing import List, Optional, Tuple


class ReturnAddressStack:
    """A fixed-depth circular return-address predictor stack.

    On overflow the oldest entry is overwritten (standard hardware
    behaviour); on underflow prediction fails (``None``).  Supports
    checkpointing so speculation down wrong paths can be repaired.
    """

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._stack)

    def restore(self, snap: Tuple[int, ...]) -> None:
        self._stack = list(snap[-self.depth:])

    def __len__(self) -> int:
        return len(self._stack)
