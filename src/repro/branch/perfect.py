"""Perfect conditional-branch predictor (the ``perfect-cbp`` series).

The timing model tells the predictor the actual outcome just before asking
for the prediction (an oracle channel that only this class uses).
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor, Prediction


class PerfectPredictor(BranchPredictor):
    """Always predicts the actual outcome.

    The driver must call :meth:`set_oracle` with the branch's true direction
    before each :meth:`predict`; this mirrors how execution-driven
    simulators implement perfect prediction.
    """

    def __init__(self, history_bits: int = 16) -> None:
        super().__init__(history_bits)
        self._oracle_outcome = None

    def set_oracle(self, taken: bool) -> None:
        self._oracle_outcome = taken

    def predict(self, pc: int) -> Prediction:
        if self._oracle_outcome is None:
            # Off the correct path there is no oracle; fall back to
            # not-taken (this only happens inside wrong-path walks, which a
            # perfect predictor never extends anyway).
            return Prediction(False, pc)
        taken = self._oracle_outcome
        self._oracle_outcome = None
        return Prediction(taken, pc)

    def train(self, prediction: Prediction, actual: bool) -> None:
        return  # nothing to learn

    @property
    def is_perfect(self) -> bool:
        return True
