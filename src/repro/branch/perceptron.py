"""Perceptron branch predictor (Jiménez & Lin, HPCA 2001).

The paper's baseline uses a 64KB perceptron predictor with 59-bit history
and 1021 entries (Table 2).  We implement the same algorithm with
configurable table size and history length; the default is scaled to the
synthetic workloads' working sets (and a paper-sized instance is a one-line
config change).
"""

from __future__ import annotations

from typing import List

from repro.branch.base import BranchPredictor, Prediction


class PerceptronPredictor(BranchPredictor):
    """Table of perceptrons, dot-product of signed weights with history.

    Prediction is ``taken`` when the output (bias + Σ w_i · x_i, with
    x_i = +1 for a taken history bit and −1 otherwise) is non-negative.
    Training bumps weights toward the outcome whenever the prediction was
    wrong or the output magnitude is below the threshold
    θ = ⌊1.93·h + 14⌋.
    """

    def __init__(
        self,
        num_perceptrons: int = 1021,
        history_bits: int = 31,
        weight_bits: int = 8,
    ) -> None:
        super().__init__(history_bits)
        self.num_perceptrons = num_perceptrons
        self.history_bits = history_bits
        self.theta = int(1.93 * history_bits + 14)
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        # weights[i][0] is the bias; weights[i][1..h] pair with history bits.
        self._weights: List[List[int]] = [
            [0] * (history_bits + 1) for _ in range(num_perceptrons)
        ]
        # Memoized dot-product outputs, one ``{history: output}`` dict per
        # perceptron.  A perceptron's output depends only on its weights
        # and the history bits, and only :meth:`train` changes weights, so
        # each memo stays exact until its perceptron trains (the
        # below-threshold early return leaves it valid).  Loopy traces
        # re-predict the same (pc, history) pairs constantly; this turns
        # the 31-term dot product into a dict hit with identical results.
        self._memo: List[dict] = [{} for _ in range(num_perceptrons)]
        # Running Σ weights[1..h] per perceptron, kept in sync by train().
        # With it the dot product needs only the *set* history bits:
        # bias + Σ w_i·x_i  =  bias − total + 2·Σ_{set bits} w_i.
        self._totals: List[int] = [0] * num_perceptrons

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.num_perceptrons

    def predict(self, pc: int) -> Prediction:
        index = (pc >> 2) % self.num_perceptrons
        history = self.history.bits
        memo = self._memo[index]
        output = memo.get(history)
        if output is None:
            weights = self._weights[index]
            s = 0
            bits = history
            while bits:
                lsb = bits & -bits
                s += weights[lsb.bit_length()]
                bits &= bits - 1
            output = weights[0] - self._totals[index] + 2 * s
            memo[history] = output
        return Prediction(
            output >= 0, pc, index=index, history=history, output=output
        )

    def train(self, prediction: Prediction, actual: bool) -> None:
        mispredicted = prediction.taken != actual
        if not mispredicted and abs(prediction.output) > self.theta:
            return
        index = prediction.index
        weights = self._weights[index]
        mx = self._weight_max
        mn = self._weight_min
        t = 1 if actual else -1
        w = weights[0] + t
        weights[0] = mx if w > mx else (mn if w < mn else w)
        bits = prediction.history
        total = 0
        for i in range(1, self.history_bits + 1):
            w = weights[i] + (t if bits & 1 else -t)
            bits >>= 1
            if w > mx:
                w = mx
            elif w < mn:
                w = mn
            weights[i] = w
            total += w
        self._totals[index] = total
        self._memo[index].clear()

    def _clip(self, value: int) -> int:
        if value > self._weight_max:
            return self._weight_max
        if value < self._weight_min:
            return self._weight_min
        return value
