"""Common interface for direction predictors and the global history register."""

from __future__ import annotations

import abc
from typing import Optional


class GlobalHistory:
    """A fixed-width global branch history register (GHR).

    Stored as an integer bit-vector, newest outcome in bit 0.  Supports the
    checkpoint/restore protocol DMP uses: the GHR is checkpointed before
    entering dynamic-predication mode and variants of it are installed on
    the predicted and alternate paths (the last bit set for the taken path,
    cleared for the not-taken path — Section 2.3, footnote 6).
    """

    __slots__ = ("bits", "width", "_mask")

    def __init__(self, width: int, bits: int = 0) -> None:
        if width <= 0:
            raise ValueError("history width must be positive")
        self.width = width
        self._mask = (1 << width) - 1
        self.bits = bits & self._mask

    def shift(self, taken: bool) -> None:
        self.bits = ((self.bits << 1) | int(taken)) & self._mask

    def with_last(self, taken: bool) -> int:
        """The history value with its newest bit forced to ``taken``."""
        return (self.bits & ~1) | int(taken)

    def snapshot(self) -> int:
        return self.bits

    def restore(self, bits: int) -> None:
        self.bits = bits & self._mask

    def __repr__(self) -> str:
        return f"GlobalHistory({self.bits:0{self.width}b})"


class Prediction:
    """The result of one direction prediction.

    Carries the predictor-private context (table index, history bits, raw
    output) needed to train at retirement with the state the prediction
    actually used.
    """

    __slots__ = ("taken", "pc", "index", "history", "output", "meta")

    def __init__(
        self,
        taken: bool,
        pc: int,
        index: int = 0,
        history: int = 0,
        output: int = 0,
        meta: Optional[object] = None,
    ) -> None:
        self.taken = taken
        self.pc = pc
        self.index = index
        self.history = history
        self.output = output
        self.meta = meta

    def __repr__(self) -> str:
        return f"Prediction({'T' if self.taken else 'NT'} @{self.pc:#x})"


class BranchPredictor(abc.ABC):
    """Abstract direction predictor.

    Protocol (mirrors how the timing model drives it):

    1. ``predict(pc)`` at fetch — returns a :class:`Prediction`;
    2. ``spec_update(taken)`` immediately after, shifting the speculative
       GHR with the *predicted* direction;
    3. ``train(prediction, actual)`` at retirement — updates the pattern
       tables (the paper trains at retire so wrong-path branches never
       pollute them);
    4. ``snapshot()`` / ``restore(snap)`` around flushes and dpred mode.
    """

    def __init__(self, history_bits: int) -> None:
        self.history = GlobalHistory(history_bits)

    @abc.abstractmethod
    def predict(self, pc: int) -> Prediction:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def train(self, prediction: Prediction, actual: bool) -> None:
        """Update tables at retirement."""

    def spec_update(self, taken: bool) -> None:
        """Shift the predicted direction into the speculative history."""
        self.history.shift(taken)

    def snapshot(self) -> int:
        return self.history.snapshot()

    def restore(self, snap: int) -> None:
        self.history.restore(snap)

    def repair(self, prediction: Prediction, actual: bool) -> None:
        """Fix the speculative history after a misprediction flush: restore
        the history the branch predicted with and shift in the real outcome
        (what a front end does during misprediction recovery)."""
        self.restore(prediction.history)
        self.spec_update(actual)


def saturating_increment(value: int, maximum: int) -> int:
    return value + 1 if value < maximum else value


def saturating_decrement(value: int, minimum: int = 0) -> int:
    return value - 1 if value > minimum else value
