"""Indirect target cache (Table 2: 64K entries).

The mini-ISA's only indirect transfer is RET (predicted by the RAS), but
the substrate is complete: a history-hashed last-target cache in the style
of a tagless target cache, usable for indirect jumps if a workload adds
them.
"""

from __future__ import annotations

from typing import Optional


class IndirectTargetCache:
    """History-xor-PC indexed last-target table."""

    def __init__(self, num_entries: int = 65536, history_bits: int = 8) -> None:
        if num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a power of two")
        self.num_entries = num_entries
        self.history_bits = history_bits
        self._targets = [None] * num_entries
        self._history = 0
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.num_entries - 1)

    def predict(self, pc: int) -> Optional[int]:
        return self._targets[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        index = self._index(pc)
        if self._targets[index] == target:
            self.hits += 1
        else:
            self.misses += 1
        self._targets[index] = target
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 2) ^ (target >> 2)) & mask
