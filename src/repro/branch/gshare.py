"""Gshare (McFarling) global-history predictor."""

from __future__ import annotations

from repro.branch.base import (
    BranchPredictor,
    Prediction,
    saturating_decrement,
    saturating_increment,
)

_WEAKLY_TAKEN = 2


class GSharePredictor(BranchPredictor):
    """Two-bit counters indexed by ``PC xor GHR``."""

    def __init__(self, table_size: int = 16384, history_bits: int = 14) -> None:
        super().__init__(history_bits)
        if table_size & (table_size - 1):
            raise ValueError("table_size must be a power of two")
        self.table_size = table_size
        self._counters = [_WEAKLY_TAKEN] * table_size

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & (self.table_size - 1)

    def predict(self, pc: int) -> Prediction:
        history = self.history.bits
        index = self._index(pc, history)
        counter = self._counters[index]
        return Prediction(
            counter >= 2, pc, index=index, history=history, output=counter
        )

    def train(self, prediction: Prediction, actual: bool) -> None:
        index = prediction.index
        if actual:
            self._counters[index] = saturating_increment(
                self._counters[index], 3
            )
        else:
            self._counters[index] = saturating_decrement(self._counters[index])
