"""Structured exception hierarchy for the reproduction toolkit.

Every failure the toolkit raises deliberately derives from
:class:`ReproError`, so harness drivers and the CLI can separate "the
simulator detected a problem and stopped safely" from genuine bugs
(which surface as ordinary Python exceptions and should crash loudly).

Hierarchy::

    ReproError
    ├── SimulationError          a timing-simulator run went wrong
    │   ├── SimulationHangError  the watchdog bounded a hung run
    │   └── CfmError             the CFM CAM was driven with an
    │                            impossible candidate set (also a
    │                            ValueError, like the raw raise it
    │                            replaced)
    ├── OracleMismatchError      timing run diverged from the functional
    │                            trace / a dpred invariant was violated
    ├── TraceValidationError     a JSONL event trace failed schema
    │                            validation or did not reconcile with
    │                            its run's stats (repro.obs)
    └── HintValidationError      a hint table failed static validation
                                 (also a ValueError, for backward
                                 compatibility with the old loader)

See docs/robustness.md for how these are used by the oracle checker,
the watchdog and the fault-injection harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class ReproError(Exception):
    """Base class for every deliberate failure in the toolkit."""


class SimulationError(ReproError):
    """A timing-simulator run failed in a detectable, bounded way."""


class _DiagnosticMixin:
    """Carries a structured diagnostics dict alongside the message."""

    def __init__(self, message: str, diagnostics: Optional[Dict] = None):
        super().__init__(message)
        self.diagnostics: Dict = dict(diagnostics or {})

    def report(self) -> Dict:
        """The structured diagnostics (copy), for logging/JSON output."""
        return dict(self.diagnostics)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.diagnostics:
            return base
        detail = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.diagnostics.items())
        )
        return f"{base} [{detail}]"


class SimulationHangError(_DiagnosticMixin, SimulationError):
    """The watchdog tripped: the run exceeded its cycle budget or made no
    forward progress.  ``diagnostics`` carries the machine state at the
    trip point (pc, mode, dpred nesting, last-retired instruction, cycle
    and the limit that was exceeded)."""


class CfmError(SimulationError, ValueError):
    """The CFM CAM was driven with an impossible candidate set or lock
    request.  The engines' shared no-episode fallback declines degenerate
    hints before a CAM is ever built, so reaching this raise means a bug
    (or a deliberately hostile caller in the fault-injection tests).
    Subclasses :class:`ValueError` because it replaces a raw one.
    """


class OracleMismatchError(_DiagnosticMixin, ReproError):
    """The oracle cross-checker found the timing run inconsistent with
    the functional trace, or a dynamic-predication invariant violated."""


class TraceValidationError(ReproError):
    """A structured event trace (``repro.obs`` JSONL) is malformed,
    truncated, or inconsistent with the stats of the run it records."""


class HintValidationError(ReproError, ValueError):
    """A hint table failed static validation against its program.

    ``issues`` lists every individual problem found.  Subclasses
    :class:`ValueError` so pre-existing callers of
    :meth:`~repro.isa.encoding.HintTable.from_bytes` that catch
    ``ValueError`` keep working.
    """

    def __init__(self, issues: Iterable[str]):
        self.issues = [str(issue) for issue in issues]
        count = len(self.issues)
        summary = "; ".join(self.issues[:5])
        if count > 5:
            summary += f"; ... ({count - 5} more)"
        super().__init__(f"{count} hint validation issue(s): {summary}")
