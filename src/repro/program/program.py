"""Whole-program container: multiple function CFGs with assigned PCs."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction

ENTRY_FUNCTION = "main"


class Program:
    """One or more function CFGs laid out in a single PC space.

    ``seal()`` lays functions out in insertion order (blocks in their own
    insertion order), assigns each instruction a PC, and builds the reverse
    maps used throughout the simulator.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._functions: Dict[str, ControlFlowGraph] = {}
        self._sealed = False
        self._block_of_pc: Dict[int, Tuple[str, BasicBlock, int]] = {}
        self._function_of_block: Dict[Tuple[str, str], ControlFlowGraph] = {}

    # -- construction ----------------------------------------------------

    def add_function(self, cfg: ControlFlowGraph) -> None:
        if self._sealed:
            raise RuntimeError("program is sealed")
        if cfg.name in self._functions:
            raise ValueError(f"duplicate function {cfg.name!r}")
        self._functions[cfg.name] = cfg

    def seal(self) -> "Program":
        """Assign PCs, validate cross-function references, freeze."""
        if self._sealed:
            return self
        if ENTRY_FUNCTION not in self._functions:
            raise ValueError(f"program needs a {ENTRY_FUNCTION!r} function")
        pc = 0x1000  # a conventional text-segment base
        for cfg in self._functions.values():
            cfg.seal()
            for block in cfg:
                for index, instr in enumerate(block.instructions):
                    instr.pc = pc
                    self._block_of_pc[pc] = (cfg.name, block, index)
                    pc += INSTRUCTION_BYTES
        # Validate that every CALL targets a known function.
        for cfg in self._functions.values():
            for block in cfg:
                term = block.terminator
                if term is not None and term.opcode.name == "CALL":
                    if term.target not in self._functions:
                        raise ValueError(
                            f"call to unknown function {term.target!r} "
                            f"in {cfg.name}/{block.name}"
                        )
        self._sealed = True
        return self

    # -- queries ------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def entry_function(self) -> ControlFlowGraph:
        return self._functions[ENTRY_FUNCTION]

    def function(self, name: str) -> ControlFlowGraph:
        return self._functions[name]

    def functions(self) -> Iterator[ControlFlowGraph]:
        return iter(self._functions.values())

    def __contains__(self, function_name: str) -> bool:
        return function_name in self._functions

    def locate(self, pc: int) -> Tuple[str, BasicBlock, int]:
        """Return ``(function_name, block, index_within_block)`` for a PC."""
        self._require_sealed()
        return self._block_of_pc[pc]

    def instruction_at(self, pc: int) -> Instruction:
        _, block, index = self.locate(pc)
        return block.instructions[index]

    def block_starting_at(self, pc: int) -> Optional[Tuple[str, BasicBlock]]:
        """The block whose *first* instruction is at ``pc``, if any."""
        entry = self._block_of_pc.get(pc)
        if entry is None or entry[2] != 0:
            return None
        return entry[0], entry[1]

    def instruction_count(self) -> int:
        return sum(cfg.instruction_count() for cfg in self._functions.values())

    def static_conditional_branches(self) -> Iterator[Tuple[str, str, Instruction]]:
        """Yield ``(function, block, instruction)`` for every static BR."""
        self._require_sealed()
        for cfg in self._functions.values():
            for block_name, instr in cfg.conditional_branches():
                yield cfg.name, block_name, instr

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise RuntimeError("program must be sealed first")

    def __repr__(self) -> str:
        return (
            f"<Program {self.name} ({len(self._functions)} functions, "
            f"{self.instruction_count()} insts)>"
        )
