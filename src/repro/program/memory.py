"""Architectural data memory for the functional interpreter.

Word-granular (one 64-bit value per address), sparse, and deterministic:
unwritten locations read as zero unless the workload pre-fills them.  The
workload generator uses :meth:`Memory.fill_array` to lay down the seeded
pseudo-random input data that makes its branches genuinely data-dependent.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

_MASK = (1 << 64) - 1


class Memory:
    """Sparse word-addressed memory."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load(self, address: int) -> int:
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self._words[address] = value & _MASK

    def fill_array(self, base: int, values: Iterable[int]) -> int:
        """Store ``values`` at consecutive addresses from ``base``.

        Returns the number of words written.
        """
        count = 0
        for offset, value in enumerate(values):
            self.store(base + offset, value)
            count += 1
        return count

    def fill_random(self, base: int, length: int, seed: int, bound: int = 256) -> None:
        """Fill ``length`` words with seeded uniform values in ``[0, bound)``."""
        rng = random.Random(seed)
        self.fill_array(base, (rng.randrange(bound) for _ in range(length)))

    def footprint(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def warm_words(self) -> List[int]:
        """Sorted addresses of every word ever written — the working set
        the timing harness pre-loads into the L2 to model a warmed-up
        cache (see ``TimingSimulator``'s ``warm_words`` parameter)."""
        return sorted(self._words)

    def __repr__(self) -> str:
        return f"<Memory ({len(self._words)} words)>"
