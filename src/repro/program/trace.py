"""Dynamic-trace structures produced by the functional interpreter.

The trace is block-granular: one :class:`BlockExec` per dynamic basic-block
execution.  This is compact (synthetic benchmarks run hundreds of thousands
of dynamic instructions) while carrying everything downstream consumers
need — static instruction identity comes from the block itself, and the only
per-dynamic-instance values recorded are the branch outcome and the memory
addresses touched.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cfg.graph import BasicBlock


class BlockExec:
    """One dynamic execution of a basic block.

    Attributes
    ----------
    function:
        Name of the function the block belongs to.
    block:
        The static :class:`BasicBlock` (shared, not copied).
    taken:
        Outcome of the terminating conditional branch; ``None`` when the
        block does not end in a conditional branch.
    mem_addrs:
        Addresses of the block's loads and stores, in program order.
    """

    __slots__ = ("function", "block", "taken", "mem_addrs")

    def __init__(
        self,
        function: str,
        block: BasicBlock,
        taken: Optional[bool],
        mem_addrs: Tuple[int, ...],
    ) -> None:
        self.function = function
        self.block = block
        self.taken = taken
        self.mem_addrs = mem_addrs

    def __repr__(self) -> str:
        outcome = "" if self.taken is None else (" T" if self.taken else " NT")
        return f"<BlockExec {self.function}/{self.block.name}{outcome}>"


class Trace:
    """The full dynamic trace of one program run."""

    def __init__(self, program_name: str) -> None:
        self.program_name = program_name
        self.records: List[BlockExec] = []
        self.instruction_count = 0
        self.branch_count = 0
        self.taken_count = 0
        self.load_count = 0
        self.store_count = 0

    def append(self, record: BlockExec) -> None:
        self.records.append(record)
        block = record.block
        self.instruction_count += len(block.instructions)
        if record.taken is not None:
            self.branch_count += 1
            if record.taken:
                self.taken_count += 1
        # Counters, not an O(block length) scan: the block computes its
        # (loads, stores) pair once and every dynamic append reuses it.
        loads, stores = block.mem_profile()
        self.load_count += loads
        self.store_count += stores

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def branch_outcomes(self) -> List[Tuple[int, bool]]:
        """``(branch_pc, taken)`` for every dynamic conditional branch."""
        outcomes = []
        for record in self.records:
            if record.taken is not None:
                outcomes.append((record.block.instructions[-1].pc, record.taken))
        return outcomes

    def __repr__(self) -> str:
        return (
            f"<Trace {self.program_name}: {len(self.records)} blocks, "
            f"{self.instruction_count} insts, {self.branch_count} branches>"
        )
