"""Architectural interpreter for the mini-ISA.

Executes a sealed :class:`~repro.program.program.Program` with real register
and memory semantics, producing the block-granular dynamic
:class:`~repro.program.trace.Trace`.  No timing is modelled here; timing is
the job of :mod:`repro.uarch.timing`.

The FP opcodes operate on the integer register file (FADD adds, FMUL
multiplies, FDIV floor-divides with divide-by-zero reading as zero).  Their
FP-ness matters only for latency and instruction-mix statistics, which is
all the paper's mechanisms ever observe.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import (
    Condition,
    Instruction,
    Opcode,
    evaluate_condition,
)
from repro.isa.registers import RegisterFile
from repro.program.memory import Memory
from repro.program.program import ENTRY_FUNCTION, Program
from repro.program.trace import BlockExec, Trace

_MASK = (1 << 64) - 1


class ExecutionLimitExceeded(RuntimeError):
    """The program ran past the interpreter's instruction budget."""


class Interpreter:
    """Runs a program to completion (HALT) or to an instruction budget."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        max_instructions: int = 50_000_000,
    ) -> None:
        if not program.sealed:
            raise ValueError("program must be sealed")
        self.program = program
        self.registers = RegisterFile()
        self.memory = memory if memory is not None else Memory()
        self.max_instructions = max_instructions
        self._call_stack: List[Tuple[str, str]] = []  # (function, return block)

    def run(self) -> Trace:
        """Execute from ``main``'s entry block until HALT."""
        trace = Trace(self.program.name)
        function = ENTRY_FUNCTION
        cfg = self.program.function(function)
        block = cfg.entry
        executed = 0
        while True:
            taken: Optional[bool] = None
            mem_addrs: List[int] = []
            next_function = function
            next_block_name: Optional[str] = None
            halted = False
            for instr in block.instructions:
                executed += 1
                op = instr.opcode
                if op == Opcode.BR:
                    taken = self._branch_taken(instr)
                    next_block_name = (
                        instr.target if taken else block.fallthrough
                    )
                elif op == Opcode.JMP:
                    next_block_name = instr.target
                elif op == Opcode.CALL:
                    self._call_stack.append((function, block.fallthrough))
                    next_function = instr.target
                    next_block_name = self.program.function(
                        next_function
                    ).entry.name
                elif op == Opcode.RET:
                    if not self._call_stack:
                        halted = True  # returning from main ends the program
                    else:
                        next_function, next_block_name = self._call_stack.pop()
                elif op == Opcode.HALT:
                    halted = True
                else:
                    self._execute_datapath(instr, mem_addrs)
            trace.append(
                BlockExec(function, block, taken, tuple(mem_addrs))
            )
            if halted:
                return trace
            if executed > self.max_instructions:
                raise ExecutionLimitExceeded(
                    f"{self.program.name} exceeded "
                    f"{self.max_instructions} instructions"
                )
            if next_block_name is None:
                next_block_name = block.fallthrough
            if next_block_name is None:
                raise RuntimeError(
                    f"fell off block {block.name!r} in {function!r}"
                )
            function = next_function
            cfg = self.program.function(function)
            block = cfg.block(next_block_name)

    # -- per-instruction semantics ------------------------------------------

    def _branch_taken(self, instr: Instruction) -> bool:
        regs = self.registers
        lhs = regs.read(instr.srcs[0])
        rhs = regs.read(instr.srcs[1]) if len(instr.srcs) == 2 else instr.imm
        return evaluate_condition(instr.cond, lhs, rhs)

    def _execute_datapath(self, instr: Instruction, mem_addrs: List[int]) -> None:
        regs = self.registers
        op = instr.opcode
        if op == Opcode.ADD:
            value = regs.read(instr.srcs[0]) + regs.read(instr.srcs[1])
        elif op == Opcode.SUB:
            value = regs.read(instr.srcs[0]) - regs.read(instr.srcs[1])
        elif op == Opcode.AND:
            value = regs.read(instr.srcs[0]) & regs.read(instr.srcs[1])
        elif op == Opcode.OR:
            value = regs.read(instr.srcs[0]) | regs.read(instr.srcs[1])
        elif op == Opcode.XOR:
            value = regs.read(instr.srcs[0]) ^ regs.read(instr.srcs[1])
        elif op == Opcode.SHL:
            value = regs.read(instr.srcs[0]) << (regs.read(instr.srcs[1]) & 63)
        elif op == Opcode.SHR:
            value = regs.read(instr.srcs[0]) >> (regs.read(instr.srcs[1]) & 63)
        elif op in (Opcode.MUL, Opcode.FMUL):
            value = regs.read(instr.srcs[0]) * regs.read(instr.srcs[1])
        elif op == Opcode.FADD:
            value = regs.read(instr.srcs[0]) + regs.read(instr.srcs[1])
        elif op == Opcode.FDIV:
            divisor = regs.read(instr.srcs[1])
            value = regs.read(instr.srcs[0]) // divisor if divisor else 0
        elif op == Opcode.ADDI:
            value = regs.read(instr.srcs[0]) + instr.imm
        elif op == Opcode.ANDI:
            value = regs.read(instr.srcs[0]) & instr.imm
        elif op == Opcode.XORI:
            value = regs.read(instr.srcs[0]) ^ instr.imm
        elif op == Opcode.MOVI:
            value = instr.imm
        elif op == Opcode.LOAD:
            address = (regs.read(instr.srcs[0]) + instr.imm) & _MASK
            mem_addrs.append(address)
            value = self.memory.load(address)
        elif op == Opcode.STORE:
            address = (regs.read(instr.srcs[1]) + instr.imm) & _MASK
            mem_addrs.append(address)
            self.memory.store(address, regs.read(instr.srcs[0]))
            return
        elif op == Opcode.NOP:
            return
        else:  # pragma: no cover - guarded by Instruction validation
            raise RuntimeError(f"unhandled opcode {op!r}")
        regs.write(instr.dest, value)
