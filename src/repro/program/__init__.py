"""Program representation and functional (architectural) simulation.

A :class:`~repro.program.program.Program` bundles one or more function CFGs,
assigns PCs, and provides PC-indexed lookups.  The
:class:`~repro.program.interpreter.Interpreter` executes a program
architecturally — real register/memory semantics, no timing — producing the
dynamic :class:`~repro.program.trace.Trace` that the profiler and the timing
model consume.
"""

from repro.program.program import Program
from repro.program.memory import Memory
from repro.program.trace import BlockExec, Trace
from repro.program.interpreter import Interpreter, ExecutionLimitExceeded

__all__ = [
    "Program",
    "Memory",
    "BlockExec",
    "Trace",
    "Interpreter",
    "ExecutionLimitExceeded",
]
