"""The two-level cache hierarchy plus main memory of Table 2."""

from __future__ import annotations

from repro.memsys.cache import Cache


class MainMemory:
    """Flat main memory: fixed minimum latency, bank-count bookkeeping."""

    def __init__(self, latency: int = 300, banks: int = 32) -> None:
        self.latency = latency
        self.banks = banks
        self.accesses = 0

    def access(self) -> int:
        self.accesses += 1
        return self.latency


class CacheHierarchy:
    """L1I + L1D backed by a unified L2 backed by main memory.

    ``data_access`` / ``inst_access`` return the total load-to-use latency
    for a word address, updating every level's state and counters.

    ``prefetch_lines`` enables a simple sequential stream prefetcher: on
    every L1D miss the next N lines are brought into L1D and L2 without
    charging latency (the stream engine runs ahead of demand).  Strided
    and sequential workloads benefit; pointer chases do not.
    """

    def __init__(
        self,
        l1i: Cache = None,
        l1d: Cache = None,
        l2: Cache = None,
        memory: MainMemory = None,
        prefetch_lines: int = 0,
    ) -> None:
        # Table 2 defaults (sizes in 8-byte words).
        self.l1i = l1i or Cache("L1I", 64 * 1024 // 8, 2, latency=2)
        self.l1d = l1d or Cache("L1D", 64 * 1024 // 8, 4, latency=2)
        self.l2 = l2 or Cache("L2", 1024 * 1024 // 8, 8, latency=10)
        self.memory = memory or MainMemory()
        self.prefetch_lines = prefetch_lines
        self.prefetches_issued = 0

    def data_access(self, address: int) -> int:
        if self.l1d.access(address):
            return self.l1d.latency
        if self.prefetch_lines:
            self._prefetch_stream(address)
        if self.l2.access(address):
            return self.l1d.latency + self.l2.latency
        return self.l1d.latency + self.l2.latency + self.memory.access()

    def _prefetch_stream(self, miss_address: int) -> None:
        """Pull the next lines into the hierarchy behind a demand miss."""
        line_words = self.l1d.line_words
        base_line = miss_address // line_words
        for ahead in range(1, self.prefetch_lines + 1):
            prefetch_address = (base_line + ahead) * line_words
            if not self.l1d.probe(prefetch_address):
                self.l1d.access(prefetch_address)
                self.l2.access(prefetch_address)
                self.prefetches_issued += 1

    def inst_access(self, address: int) -> int:
        if self.l1i.access(address):
            return self.l1i.latency
        if self.l2.access(address):
            return self.l1i.latency + self.l2.latency
        return self.l1i.latency + self.l2.latency + self.memory.access()

    def __repr__(self) -> str:
        return f"<CacheHierarchy {self.l1i!r} {self.l1d!r} {self.l2!r}>"
