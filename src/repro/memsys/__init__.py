"""Memory-system substrate: set-associative caches and the DRAM model.

Mirrors Table 2 of the paper: 64KB 2-way L1I (2-cycle), 64KB 4-way L1D
(2-cycle), 1MB 8-way unified L2 (10-cycle), 64B lines, LRU everywhere, and
a 300-cycle minimum-latency main memory.
"""

from repro.memsys.cache import Cache
from repro.memsys.hierarchy import CacheHierarchy, MainMemory

__all__ = ["Cache", "CacheHierarchy", "MainMemory"]
