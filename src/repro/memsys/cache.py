"""A set-associative cache with LRU replacement.

Tracks tags only (the functional interpreter holds the actual data), which
is all a timing model needs.  Addresses are word addresses; ``line_words``
sets how many words share a line (Table 2's 64B lines over 8-byte words
give the default of 8).
"""

from __future__ import annotations

from typing import Dict, List


class Cache:
    def __init__(
        self,
        name: str,
        size_words: int,
        associativity: int,
        line_words: int = 8,
        latency: int = 1,
    ) -> None:
        num_lines = size_words // line_words
        if num_lines <= 0 or num_lines % associativity:
            raise ValueError(
                f"{name}: {size_words} words / {line_words}-word lines do "
                f"not divide into {associativity} ways"
            )
        self.name = name
        self.line_words = line_words
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        self.latency = latency
        # One insertion-ordered dict per set: oldest entry first, so LRU
        # update is delete+reinsert and eviction is "remove the first
        # key" — the same order an OrderedDict with move_to_end /
        # popitem(last=False) maintains, on the cheaper builtin dict.
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access a word; returns True on hit.  Misses allocate the line."""
        line = address // self.line_words
        entry_set = self._sets[line % self.num_sets]
        if line in entry_set:
            del entry_set[line]
            entry_set[line] = True
            self.hits += 1
            return True
        self.misses += 1
        if len(entry_set) >= self.associativity:
            del entry_set[next(iter(entry_set))]
        entry_set[line] = True
        return False

    def probe(self, address: int) -> bool:
        """Check residency without touching LRU or counters."""
        line = address // self.line_words
        return line in self._sets[line % self.num_sets]

    def invalidate_all(self) -> None:
        for entry_set in self._sets:
            entry_set.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"<Cache {self.name}: {self.num_sets}x{self.associativity} "
            f"lines, {self.hit_rate:.1%} hits>"
        )
