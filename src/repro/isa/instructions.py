"""Instruction definitions for the mini-ISA.

Instructions are *static*: they live inside basic blocks of a control-flow
graph and are shared by every dynamic execution of that block.  Control-flow
targets are therefore expressed as CFG block names, not literal addresses;
concrete PCs are assigned when a :class:`~repro.program.program.Program` is
sealed (each instruction occupies :data:`INSTRUCTION_BYTES` bytes).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

INSTRUCTION_BYTES = 4


class Opcode(enum.IntEnum):
    """Mini-ISA opcodes.

    The integer ALU group, loads/stores and the control-flow group cover
    everything the SPEC-int-like workloads need; the FP group exists so that
    the three floating-point benchmarks of the paper (mesa, ammp, fma3d) get
    a distinct instruction mix with longer latencies.
    """

    # Integer ALU
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    MUL = enum.auto()
    ADDI = enum.auto()
    ANDI = enum.auto()
    XORI = enum.auto()
    MOVI = enum.auto()
    # Memory
    LOAD = enum.auto()
    STORE = enum.auto()
    # Control flow
    BR = enum.auto()      # conditional branch
    JMP = enum.auto()     # unconditional direct jump
    CALL = enum.auto()    # direct call (pushes return address)
    RET = enum.auto()     # indirect return (pops return address)
    # Floating point (operates on the integer register file; the FP-ness
    # only matters for latency and instruction-mix statistics)
    FADD = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    # Misc
    NOP = enum.auto()
    HALT = enum.auto()    # terminates the program


class Condition(enum.IntEnum):
    """Comparison kinds for conditional branches: ``src0 <cond> src1``."""

    EQ = enum.auto()
    NE = enum.auto()
    LT = enum.auto()
    GE = enum.auto()
    LE = enum.auto()
    GT = enum.auto()


_CONTROL = frozenset({Opcode.BR, Opcode.JMP, Opcode.CALL, Opcode.RET})
_FP = frozenset({Opcode.FADD, Opcode.FMUL, Opcode.FDIV})

#: Execution latency (cycles) by opcode, used by the timing model.
EXECUTION_LATENCY = {
    Opcode.MUL: 3,
    Opcode.FADD: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.LOAD: 0,  # latency comes from the cache hierarchy
}
_DEFAULT_LATENCY = 1


class Instruction:
    """A single static instruction.

    Parameters
    ----------
    opcode:
        The operation.
    dest:
        Destination architectural register index, or ``None`` when the
        instruction writes no register (stores, branches, nop).
    srcs:
        Tuple of source architectural register indices.
    imm:
        Immediate operand (ALU immediate, or load/store displacement).
    cond:
        Comparison kind; only meaningful for :attr:`Opcode.BR`.
    target:
        CFG-level control target: the taken-successor block name for ``BR``
        and ``JMP``, or the callee function name for ``CALL``.
    """

    __slots__ = ("opcode", "dest", "srcs", "imm", "cond", "target", "pc")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        imm: int = 0,
        cond: Optional[Condition] = None,
        target: Optional[str] = None,
    ) -> None:
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.cond = cond
        self.target = target
        self.pc: Optional[int] = None  # assigned at Program.seal()
        self._validate()

    def _validate(self) -> None:
        op = self.opcode
        if op == Opcode.BR:
            if self.cond is None:
                raise ValueError("BR requires a condition")
            if self.target is None:
                raise ValueError("BR requires a taken target")
            if len(self.srcs) not in (1, 2):
                raise ValueError("BR takes one or two source registers")
        elif op in (Opcode.JMP, Opcode.CALL):
            if self.target is None:
                raise ValueError(f"{op.name} requires a target")
        elif op == Opcode.LOAD:
            if self.dest is None or len(self.srcs) != 1:
                raise ValueError("LOAD needs a dest and one address register")
        elif op == Opcode.STORE:
            if len(self.srcs) != 2:
                raise ValueError("STORE needs (value, address) registers")

    # -- classification helpers ------------------------------------------

    @property
    def is_control(self) -> bool:
        return self.opcode in _CONTROL

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode == Opcode.BR

    @property
    def is_load(self) -> bool:
        return self.opcode == Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode == Opcode.STORE

    @property
    def is_fp(self) -> bool:
        return self.opcode in _FP

    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    @property
    def latency(self) -> int:
        """Fixed execution latency; loads report 0 and defer to the caches."""
        return EXECUTION_LATENCY.get(self.opcode, _DEFAULT_LATENCY)

    def __repr__(self) -> str:
        parts = [self.opcode.name.lower()]
        if self.dest is not None:
            parts.append(f"r{self.dest}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.cond is not None:
            parts.append(self.cond.name.lower())
        if self.target is not None:
            parts.append(f"->{self.target}")
        pc = f"@{self.pc:#x}" if self.pc is not None else "@?"
        return f"<{' '.join(parts)} {pc}>"


def evaluate_condition(cond: Condition, lhs: int, rhs: int) -> bool:
    """Evaluate a branch condition on two *signed* 64-bit values."""
    lhs = _to_signed(lhs)
    rhs = _to_signed(rhs)
    if cond == Condition.EQ:
        return lhs == rhs
    if cond == Condition.NE:
        return lhs != rhs
    if cond == Condition.LT:
        return lhs < rhs
    if cond == Condition.GE:
        return lhs >= rhs
    if cond == Condition.LE:
        return lhs <= rhs
    if cond == Condition.GT:
        return lhs > rhs
    raise ValueError(f"unknown condition {cond!r}")


def _to_signed(value: int) -> int:
    value &= (1 << 64) - 1
    if value >= 1 << 63:
        value -= 1 << 64
    return value
