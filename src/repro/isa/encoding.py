"""The compiler-to-hardware hint channel.

The paper conveys diverge branches and their CFM points "through
modifications in the ISA" (Section 2.1): a special encoding on the branch
plus the CFM point address(es).  We model that channel as a side table keyed
by branch PC — exactly the information a marked binary would carry, without
inventing bit-level instruction formats.

A compact binary serialization (:meth:`HintTable.to_bytes` /
:meth:`HintTable.from_bytes`) stands in for the marked sections of the
binary; it is used by tests and by the example that dumps a "compiled"
program to disk.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import HintValidationError


class DivergeHint:
    """Compiler marking for one diverge branch.

    Attributes
    ----------
    cfm_pcs:
        PCs of the control-flow merge points, most frequent first.  The
        basic DMP mechanism uses only ``cfm_pcs[0]``; the enhanced
        multiple-CFM mechanism (Section 2.7.1) loads all of them into the
        CFM CAM.
    early_exit_threshold:
        Compiler-selected alternate-path instruction budget for the early
        exit enhancement (Section 2.7.2).  ``None`` leaves the choice to the
        hardware's static default.
    is_loop:
        Marks a diverge *loop* branch (future-work Section 2.7.4); the
        backward-branch dynamic-predication engine keys off this.
    """

    __slots__ = ("cfm_pcs", "early_exit_threshold", "is_loop")

    def __init__(
        self,
        cfm_pcs: Tuple[int, ...],
        early_exit_threshold: Optional[int] = None,
        is_loop: bool = False,
    ) -> None:
        if not cfm_pcs:
            # Structured (and still a ValueError, via the subclass): an
            # empty CFM set is constructible from buggy learned-hint code
            # paths, not just hand-built tables, and must fail loudly.
            raise HintValidationError(
                ["a diverge hint needs at least one CFM point"]
            )
        self.cfm_pcs = tuple(cfm_pcs)
        self.early_exit_threshold = early_exit_threshold
        self.is_loop = is_loop

    @property
    def primary_cfm(self) -> int:
        """The single CFM point the basic mechanism uses."""
        return self.cfm_pcs[0]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DivergeHint)
            and self.cfm_pcs == other.cfm_pcs
            and self.early_exit_threshold == other.early_exit_threshold
            and self.is_loop == other.is_loop
        )

    def __repr__(self) -> str:
        return (
            f"DivergeHint(cfm_pcs={self.cfm_pcs}, "
            f"early_exit_threshold={self.early_exit_threshold}, "
            f"is_loop={self.is_loop})"
        )


_HEADER = struct.Struct("<4sI")  # magic, entry count
_ENTRY = struct.Struct("<QBBH")  # branch pc, n_cfm, flags, early-exit
_MAGIC = b"DMPH"
_FLAG_LOOP = 1
_FLAG_HAS_THRESHOLD = 2


class HintTable:
    """All diverge-branch hints for one program binary."""

    def __init__(self) -> None:
        self._hints: Dict[int, DivergeHint] = {}

    def add(self, branch_pc: int, hint: DivergeHint) -> None:
        if branch_pc in self._hints:
            raise HintValidationError(
                [f"duplicate hint for branch pc {branch_pc:#x}"]
            )
        self._hints[branch_pc] = hint

    def get(self, branch_pc: int) -> Optional[DivergeHint]:
        return self._hints.get(branch_pc)

    def is_diverge_branch(self, branch_pc: int) -> bool:
        return branch_pc in self._hints

    def __len__(self) -> int:
        return len(self._hints)

    def __iter__(self) -> Iterator[Tuple[int, DivergeHint]]:
        return iter(sorted(self._hints.items()))

    def __contains__(self, branch_pc: int) -> bool:
        return branch_pc in self._hints

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact on-disk form."""
        chunks = [_HEADER.pack(_MAGIC, len(self._hints))]
        for pc, hint in sorted(self._hints.items()):
            flags = 0
            threshold = 0
            if hint.is_loop:
                flags |= _FLAG_LOOP
            if hint.early_exit_threshold is not None:
                flags |= _FLAG_HAS_THRESHOLD
                threshold = hint.early_exit_threshold
            chunks.append(_ENTRY.pack(pc, len(hint.cfm_pcs), flags, threshold))
            chunks.append(struct.pack(f"<{len(hint.cfm_pcs)}Q", *hint.cfm_pcs))
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HintTable":
        """Deserialize a table produced by :meth:`to_bytes`.

        Malformed input — wrong magic, truncation mid-entry, duplicate
        or impossible entries — raises a structured
        :class:`~repro.errors.HintValidationError` (a ``ValueError``
        subclass) rather than a raw ``struct.error``: the hint channel
        models untrusted binary sections, so the loader must fail
        loudly and identifiably on corrupt data.
        """
        try:
            magic, count = _HEADER.unpack_from(data, 0)
        except struct.error:
            raise HintValidationError(
                ["hint table shorter than its header"]
            ) from None
        if magic != _MAGIC:
            raise HintValidationError(
                [f"not a DMP hint table (magic {magic!r})"]
            )
        table = cls()
        offset = _HEADER.size
        for index in range(count):
            try:
                pc, n_cfm, flags, threshold = _ENTRY.unpack_from(data, offset)
                offset += _ENTRY.size
                if n_cfm == 0:
                    raise HintValidationError(
                        [f"entry {index}: zero CFM points"]
                    )
                cfm_pcs = struct.unpack_from(f"<{n_cfm}Q", data, offset)
                offset += 8 * n_cfm
                table.add(
                    pc,
                    DivergeHint(
                        cfm_pcs,
                        early_exit_threshold=(
                            threshold if flags & _FLAG_HAS_THRESHOLD else None
                        ),
                        is_loop=bool(flags & _FLAG_LOOP),
                    ),
                )
            except struct.error:
                raise HintValidationError(
                    [
                        f"hint table truncated in entry {index} "
                        f"(of {count}) at byte {offset}"
                    ]
                ) from None
            except ValueError as exc:
                if isinstance(exc, HintValidationError):
                    raise
                raise HintValidationError(
                    [f"entry {index}: {exc}"]
                ) from None
        return table
