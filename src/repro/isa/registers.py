"""Architectural register namespace and an interpreter-side register file.

The mini-ISA has 32 integer architectural registers, ``r0`` .. ``r31``.
``r0`` is hardwired to zero (reads return 0, writes are dropped), which the
workload generator uses freely as a null source/sink.
"""

from __future__ import annotations

NUM_ARCH_REGS = 32
REG_ZERO = 0

_MASK = (1 << 64) - 1


def reg_name(index: int) -> str:
    """Return the assembly name for an architectural register index."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


class RegisterFile:
    """A 64-bit architectural register file with a hardwired zero register.

    Values wrap modulo 2**64 the way real hardware registers do, so synthetic
    workloads can run indefinitely without Python big-int growth.
    """

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_ARCH_REGS

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index == REG_ZERO:
            return
        self._regs[index] = value & _MASK

    def snapshot(self) -> tuple:
        """Return an immutable copy of the register state (for tests)."""
        return tuple(self._regs)

    def load_snapshot(self, values) -> None:
        """Restore state captured by :meth:`snapshot`."""
        if len(values) != NUM_ARCH_REGS:
            raise ValueError("snapshot has wrong register count")
        self._regs = [v & _MASK for v in values]
        self._regs[REG_ZERO] = 0

    def __repr__(self) -> str:
        live = {reg_name(i): v for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({live})"
