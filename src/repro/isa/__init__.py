"""Mini-ISA substrate.

The paper evaluates DMP on Alpha binaries.  We define a small RISC-like
instruction set that carries everything the diverge-merge machinery needs:
architectural register identities (for renaming, select-uops and dependence
tracking), loads/stores (for the store buffer and cache hierarchy), and a
full complement of control-flow instructions (conditional branches,
unconditional jumps, calls and returns).

The compiler-to-microarchitecture hint channel (diverge-branch and CFM-point
marking, Section 2.1 of the paper) is modelled by :class:`~repro.isa.encoding.HintTable`,
a side table keyed by branch PC — the moral equivalent of the special
instruction encodings the paper adds to the Alpha ISA.
"""

from repro.isa.registers import (
    NUM_ARCH_REGS,
    REG_ZERO,
    RegisterFile,
    reg_name,
)
from repro.isa.instructions import (
    Opcode,
    Condition,
    Instruction,
    INSTRUCTION_BYTES,
)
from repro.isa.encoding import DivergeHint, HintTable

__all__ = [
    "NUM_ARCH_REGS",
    "REG_ZERO",
    "RegisterFile",
    "reg_name",
    "Opcode",
    "Condition",
    "Instruction",
    "INSTRUCTION_BYTES",
    "DivergeHint",
    "HintTable",
]
