"""Metrics registry: per-run rollups and suite-level run reports.

:class:`RunMetrics` derives the figure-level quantities (exit-case
histogram, dynamic-predication coverage, flush-avoidance rate, uop
overhead) from one :class:`~repro.uarch.stats.SimStats` — or from the
stats dict a trace file's ``end`` record carries, so reports can be
built either from live suite results or from JSONL artifacts on disk.

:class:`SuiteReport` collects one :class:`RunMetrics` per ``(benchmark,
config)`` cell in deterministic caller order (benchmarks x configs, the
same order :func:`repro.harness.experiment.run_suite` merges parallel
results in — never worker completion order) and renders JSON or CSV.
"""

from __future__ import annotations

import dataclasses
import io
import json
from typing import Dict, Iterable, List, Optional

from repro.core.modes import ExitCase

#: JSON report schema tag.
REPORT_SCHEMA = "repro-report/1"


def _as_stats_dict(stats) -> Dict:
    if dataclasses.is_dataclass(stats):
        return dataclasses.asdict(stats)
    return dict(stats)


@dataclasses.dataclass
class RunMetrics:
    """Derived rollups for one ``(benchmark, config)`` simulation."""

    benchmark: str
    config: str
    cycles: int
    retired_instructions: int
    ipc: float
    retired_branches: int
    mispredictions: int
    misprediction_rate: float
    mpki: float
    pipeline_flushes: int
    #: Fraction of mispredictions that did NOT flush the pipeline (the
    #: quantity Figure 11 plots: predication converts flushes into
    #: predicated-FALSE work).
    flush_avoidance_rate: float
    dpred_entries: int
    #: Dynamic-predication episodes per retired branch — how much of the
    #: dynamic branch stream entered an episode.
    dpred_coverage: float
    dpred_restarts: int
    early_exits: int
    select_uops: int
    extra_uops: int
    #: Inserted-uop overhead relative to executed instructions (Fig 12).
    uop_overhead: float
    #: Table 1 exit-case histogram (Figs 8/10), keys 1..6.
    exit_cases: Dict[int, int]

    @classmethod
    def from_stats(
        cls, stats, benchmark: str = "", config: str = ""
    ) -> "RunMetrics":
        """Build from a :class:`~repro.uarch.stats.SimStats` or the
        equivalent dict (a trace ``end`` record's ``stats`` payload,
        whose exit-case keys JSON stringified)."""
        d = _as_stats_dict(stats)
        cycles = d["cycles"]
        retired = d["retired_instructions"]
        branches = d["retired_branches"]
        mispredictions = d["mispredictions"]
        flushes = d["pipeline_flushes"]
        executed = d["executed_instructions"]
        extra = d["extra_uops"]
        selects = d["select_uops"]
        exit_cases = {
            int(case): int(count) for case, count in d["exit_cases"].items()
        }
        return cls(
            benchmark=benchmark or d.get("benchmark", ""),
            config=config or d.get("config_description", ""),
            cycles=cycles,
            retired_instructions=retired,
            ipc=retired / cycles if cycles else 0.0,
            retired_branches=branches,
            mispredictions=mispredictions,
            misprediction_rate=(
                mispredictions / branches if branches else 0.0
            ),
            mpki=1000.0 * mispredictions / retired if retired else 0.0,
            pipeline_flushes=flushes,
            flush_avoidance_rate=(
                (mispredictions - flushes) / mispredictions
                if mispredictions
                else 0.0
            ),
            dpred_entries=d["dpred_entries"],
            dpred_coverage=(
                d["dpred_entries"] / branches if branches else 0.0
            ),
            dpred_restarts=d["dpred_restarts"],
            early_exits=d["early_exits"],
            select_uops=selects,
            extra_uops=extra,
            uop_overhead=(
                (extra + selects) / executed if executed else 0.0
            ),
            exit_cases=exit_cases,
        )

    #: Episodes that recorded a Table 1 exit case (restarted episodes do
    #: not; see Section 2.7.3 and the oracle's exit accounting).
    @property
    def terminal_episodes(self) -> int:
        return sum(self.exit_cases.values())


#: CSV column order (exit cases expand to one column per enum member).
_CSV_FIELDS = (
    "benchmark",
    "config",
    "cycles",
    "retired_instructions",
    "ipc",
    "retired_branches",
    "mispredictions",
    "misprediction_rate",
    "mpki",
    "pipeline_flushes",
    "flush_avoidance_rate",
    "dpred_entries",
    "dpred_coverage",
    "dpred_restarts",
    "early_exits",
    "select_uops",
    "extra_uops",
    "uop_overhead",
)


class SuiteReport:
    """Deterministically ordered run report over many cells."""

    def __init__(
        self,
        cells: Iterable[RunMetrics],
        meta: Optional[Dict] = None,
    ) -> None:
        self.cells: List[RunMetrics] = list(cells)
        self.meta: Dict = dict(meta or {})

    @classmethod
    def from_suite(cls, result, meta: Optional[Dict] = None) -> "SuiteReport":
        """From a :class:`~repro.harness.experiment.SuiteResult` — cell
        order is the result's insertion order, which ``run_suite`` fixes
        to the caller's benchmarks x configs order on both the serial
        and the parallel path."""
        cells = [
            RunMetrics.from_stats(stats, benchmark=benchmark, config=label)
            for benchmark, per_config in result.results.items()
            for label, stats in per_config.items()
        ]
        return cls(cells, meta=meta)

    def to_dict(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "meta": self.meta,
            "cells": [dataclasses.asdict(cell) for cell in self.cells],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        out = io.StringIO()
        case_columns = [f"exit_case_{case.value}" for case in ExitCase]
        out.write(",".join(_CSV_FIELDS + tuple(case_columns)) + "\n")
        for cell in self.cells:
            row = [getattr(cell, field) for field in _CSV_FIELDS]
            row += [cell.exit_cases.get(case.value, 0) for case in ExitCase]
            out.write(
                ",".join(
                    f"{value:.6f}" if isinstance(value, float) else str(value)
                    for value in row
                )
                + "\n"
            )
        return out.getvalue()

    def render(self, fmt: str = "json") -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "csv":
            return self.to_csv()
        raise ValueError(f"unknown report format {fmt!r}")
