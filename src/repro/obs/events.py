"""Structured event tracing for the timing simulators.

A :class:`Tracer` attached to a simulator (``simulate(...,
tracer=...)``) receives one call per *episode-level* event — dynamic
predication enter/exit, per-path outcomes, confidence decisions,
pipeline flushes, dual-path forks — and never per-instruction events, so
a traced run stays within a small constant factor of an untraced one.
With no tracer attached every hook site is a single ``is None`` test
(the zero-overhead-when-off contract; tests/obs assert the resulting
:class:`~repro.uarch.stats.SimStats` are bit-identical).

Event records are dicts with a type tag ``t`` and a per-run sequence
number ``i``.  :class:`JsonlTracer` streams them to a schema-versioned
JSONL file (one JSON object per line, first record a header, last an
``end`` record carrying the run's full stats); the base class keeps a
bounded ring of recent events, which the watchdog dumps into
:class:`~repro.errors.SimulationHangError` diagnostics when a hung run
is caught mid-episode (docs/observability.md).

Exit-case attribution uses an explicit episode-frame stack mirroring the
simulator's ``_dpred_depth`` nesting: ``note_exit_case`` charges the
innermost open episode, so nested episodes (the Section 2.7.4 policy)
cannot steal their parent's Table 1 exit case.
"""

from __future__ import annotations

import collections
import dataclasses
import json
from typing import Any, Deque, Dict, List, Optional

#: JSONL schema tag, bumped on incompatible record layout changes.
SCHEMA = "repro-trace/1"

#: Default ring capacity (events kept for hang diagnostics).
DEFAULT_RING_CAPACITY = 256

#: Every record type and its required payload fields (beyond ``t``/``i``),
#: used by :func:`repro.obs.reconcile.validate_trace_file`.
EVENT_FIELDS: Dict[str, tuple] = {
    "header": ("schema",),
    "machine": ("mode", "engine"),
    "ep-enter": ("ep", "kind", "pc", "depth", "cycle", "mispredicted"),
    "path": ("ep", "role", "outcome", "n"),
    "ep-exit": ("ep", "kind", "cases", "restart", "selects", "cycle"),
    "conf": ("pc", "confident", "site"),
    "flush": ("site", "cycle"),
    "fork": ("pc", "cycle"),
    "mpp": ("pc", "event"),
    "end": ("stats", "events"),
}

#: Episode kinds (the three predication engines).
EPISODE_KINDS = ("dpred", "wish", "loop")


class _EpisodeFrame:
    __slots__ = ("ep", "kind", "cases", "selects")

    def __init__(self, ep: int, kind: str) -> None:
        self.ep = ep
        self.kind = kind
        self.cases: List[int] = []
        self.selects = 0


class Tracer:
    """In-memory tracer: a bounded ring of events plus the episode-frame
    stack.  Also the test double (``capacity=None`` keeps everything)."""

    def __init__(self, capacity: Optional[int] = DEFAULT_RING_CAPACITY) -> None:
        self._ring: Deque[Dict[str, Any]] = collections.deque(maxlen=capacity)
        self._seq = 0
        self._frames: List[_EpisodeFrame] = []
        self._next_ep = 0
        self.finished = False

    # -- low-level record plumbing -------------------------------------

    def emit(self, event_type: str, **fields) -> None:
        record = {"t": event_type, "i": self._seq}
        record.update(fields)
        self._seq += 1
        self._ring.append(record)
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        """Overridden by persistent tracers; the base keeps only the ring."""

    @property
    def events_emitted(self) -> int:
        return self._seq

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The retained events (the full stream when ``capacity=None``)."""
        return list(self._ring)

    def tail(self, n: int = 32) -> List[Dict[str, Any]]:
        """The last ``n`` retained events (hang-dump payload)."""
        if n <= 0:
            return []
        ring = self._ring
        return list(ring)[-n:] if len(ring) > n else list(ring)

    # -- episode lifecycle ---------------------------------------------

    def episode_enter(
        self,
        kind: str,
        pc: int,
        pos: int,
        depth: int,
        cycle: int,
        mispredicted: bool,
    ) -> None:
        ep = self._next_ep
        self._next_ep += 1
        self._frames.append(_EpisodeFrame(ep, kind))
        self.emit(
            "ep-enter",
            ep=ep,
            kind=kind,
            pc=pc,
            pos=pos,
            depth=depth,
            cycle=cycle,
            mispredicted=mispredicted,
        )

    def note_path(
        self,
        role: str,
        outcome: str,
        n: int,
        cfm_pc: Optional[int] = None,
    ) -> None:
        """One predicated path finished (``role``: predicted/alternate;
        ``n``: instructions fetched on it)."""
        ep = self._frames[-1].ep if self._frames else None
        self.emit("path", ep=ep, role=role, outcome=outcome, n=n, cfm_pc=cfm_pc)

    def note_exit_case(self, case: int) -> None:
        """Charge a Table 1 exit case to the innermost open episode."""
        if self._frames:
            self._frames[-1].cases.append(int(case))

    def note_selects(self, count: int) -> None:
        if self._frames:
            self._frames[-1].selects += count

    def episode_exit(self, restart: bool, cycle: int) -> None:
        frame = self._frames.pop()
        self.emit(
            "ep-exit",
            ep=frame.ep,
            kind=frame.kind,
            cases=frame.cases,
            restart=restart,
            selects=frame.selects,
            cycle=cycle,
        )

    @property
    def open_episodes(self) -> int:
        return len(self._frames)

    # -- point events ---------------------------------------------------

    def note_confidence(self, pc: int, confident: bool, site: str) -> None:
        self.emit("conf", pc=pc, confident=confident, site=site)

    def note_flush(self, site: str, cycle: int, pc: Optional[int] = None) -> None:
        self.emit("flush", site=site, cycle=cycle, pc=pc)

    def note_fork(self, pc: int, cycle: int) -> None:
        self.emit("fork", pc=pc, cycle=cycle)

    def note_merge(
        self, event: str, pc: int, cfm: Optional[int] = None
    ) -> None:
        """A dynamic merge-point predictor event (mode ``"mpp"``):
        ``predict`` (episode opened on a learned CFM point, with ``cfm``),
        ``hit``, ``miss``, ``recovery`` (miss + pipeline flush) or
        ``retrain`` (confidence collapse cleared the entry)."""
        self.emit("mpp", pc=pc, event=event, cfm=cfm)

    # -- run boundaries --------------------------------------------------

    def machine(self, **fields) -> None:
        """Emitted once by the simulator constructor: machine metadata
        (mode, engine, predictor/confidence description)."""
        self.emit("machine", **fields)

    def finish(self, stats) -> None:
        """Emitted by the simulator at the end of ``run()``: the full
        stats payload, which reconciliation checks the event stream
        against."""
        payload = (
            dataclasses.asdict(stats)
            if dataclasses.is_dataclass(stats)
            else dict(stats)
        )
        self.emit("end", stats=payload, events=self._seq)
        self.finished = True

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class CollectorTracer(Tracer):
    """Unbounded in-memory tracer for tests and programmatic use."""

    def __init__(self) -> None:
        super().__init__(capacity=None)


class JsonlTracer(Tracer):
    """Streams every event to a JSONL file.

    The first record is a schema header (``meta`` merges into it:
    benchmark, config label, iterations, ...); the last — written by
    :meth:`finish` — is an ``end`` record carrying the run's full
    :class:`~repro.uarch.stats.SimStats`.  A file without an ``end``
    record is a truncated (crashed or hung) run, and
    :func:`repro.obs.reconcile.validate_trace_file` says so.
    """

    def __init__(
        self,
        path,
        meta: Optional[Dict[str, Any]] = None,
        capacity: Optional[int] = DEFAULT_RING_CAPACITY,
    ) -> None:
        super().__init__(capacity=capacity)
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.emit("header", schema=SCHEMA, **(meta or {}))

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")))
        self._handle.write("\n")

    def finish(self, stats) -> None:
        super().finish(stats)
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
