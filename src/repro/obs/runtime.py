"""Process-wide trace destination.

The CLI's ``--trace`` / ``--trace-out DIR`` flags must instrument *every*
simulation a command runs — including ones buried inside figure drivers
that never see the parsed arguments.  Mirroring
:mod:`repro.validation.runtime` (paranoid mode), the harness consults
this toggle instead of threading a tracer through every driver
signature: when a trace directory is active, :func:`repro.harness
.experiment.run_suite` opens one JSONL tracer per ``(benchmark,
config)`` cell underneath it.

Tracing only ever *adds* observation; it never changes timing results
(asserted by tests/obs), so memoized simulation caches keyed on the
config stay valid — although traced cells deliberately bypass the memo
so every requested trace file is actually produced.
"""

from __future__ import annotations

import contextlib
import os
import re
from typing import Optional

_TRACE_DIR: Optional[str] = None


def set_trace_dir(path: Optional[str]) -> Optional[str]:
    """Set the process-wide trace directory (``None`` disables tracing);
    returns the previous value."""
    global _TRACE_DIR
    previous = _TRACE_DIR
    _TRACE_DIR = str(path) if path else None
    return previous


def active_trace_dir() -> Optional[str]:
    return _TRACE_DIR


def trace_path(directory: str, benchmark: str, label: str) -> str:
    """The canonical trace-file path for one ``(benchmark, config)``
    cell: ``<dir>/<benchmark>__<label>.jsonl``, with filesystem-hostile
    label characters replaced.  Shared by the serial and parallel suite
    paths so the two produce identical trees."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "-", label)
    return os.path.join(directory, f"{benchmark}__{safe}.jsonl")


@contextlib.contextmanager
def tracing(path: Optional[str]):
    """Context manager: trace into ``path`` inside the ``with`` block
    (a ``None`` path is a no-op, so callers can pass the flag through
    unconditionally)."""
    previous = set_trace_dir(path)
    try:
        yield
    finally:
        set_trace_dir(previous)
