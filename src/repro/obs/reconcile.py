"""Trace-file validation and event-vs-stats reconciliation.

Two layers of checking over a ``repro-trace/1`` JSONL file:

* :func:`validate_trace_file` — structural: well-formed JSON lines, a
  schema header first, known record types with their required fields,
  strictly increasing sequence numbers, and a terminating ``end``
  record (its absence marks a truncated — crashed or hung — run);
* :func:`reconcile_trace` — semantic: every dynamic-predication episode
  in the stream must balance (enter/exit pairs), every *terminal*
  episode must record exactly one Table 1 exit case (restarted episodes
  exactly zero), and the event-derived histograms must equal the run's
  final :class:`~repro.uarch.stats.SimStats` — the same accounting the
  PR-1 oracle enforces online, re-established offline from artifacts.

Violations raise :class:`~repro.errors.TraceValidationError` with the
offending record's sequence number in the message.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

from repro.errors import TraceValidationError
from repro.obs.events import EVENT_FIELDS, SCHEMA


def read_trace(path) -> List[Dict]:
    """Parse a JSONL trace into records (structure unchecked)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceValidationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TraceValidationError(
                    f"{path}:{lineno}: record is not a JSON object"
                )
            records.append(record)
    return records


def validate_trace_file(path) -> Dict:
    """Structural validation; returns the header record."""
    records = read_trace(path)
    if not records:
        raise TraceValidationError(f"{path}: empty trace file")
    header = records[0]
    if header.get("t") != "header":
        raise TraceValidationError(
            f"{path}: first record must be a header, got {header.get('t')!r}"
        )
    if header.get("schema") != SCHEMA:
        raise TraceValidationError(
            f"{path}: unsupported trace schema {header.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    last_seq = -1
    for record in records:
        kind = record.get("t")
        if kind not in EVENT_FIELDS:
            raise TraceValidationError(
                f"{path}: unknown record type {kind!r} at i={record.get('i')}"
            )
        seq = record.get("i")
        if not isinstance(seq, int) or seq <= last_seq:
            raise TraceValidationError(
                f"{path}: sequence numbers must strictly increase "
                f"(got {seq!r} after {last_seq})"
            )
        last_seq = seq
        missing = [
            field for field in EVENT_FIELDS[kind] if field not in record
        ]
        if missing:
            raise TraceValidationError(
                f"{path}: {kind!r} record i={seq} is missing "
                f"field(s) {', '.join(missing)}"
            )
    if records[-1].get("t") != "end":
        raise TraceValidationError(
            f"{path}: no end record — the traced run was truncated "
            "(crashed or hung before finishing)"
        )
    return header


@dataclasses.dataclass
class TraceSummary:
    """What reconciliation established about one trace file."""

    path: str
    benchmark: str
    config: str
    events: int
    episodes: int
    terminal_episodes: int
    restarted_episodes: int
    exit_cases: Dict[int, int]
    flushes: int
    forks: int
    select_uops: int
    stats: Dict

    def describe(self) -> str:
        cases = " ".join(
            f"c{case}={count}" for case, count in sorted(self.exit_cases.items())
        )
        return (
            f"{self.benchmark}/{self.config}: {self.events} events, "
            f"{self.episodes} episodes ({self.terminal_episodes} terminal, "
            f"{self.restarted_episodes} restarted)  {cases}  "
            f"flushes={self.flushes}"
        )


def reconcile_trace(path) -> TraceSummary:
    """Validate ``path`` structurally, then reconcile its episode events
    against the final stats in its ``end`` record."""
    header = validate_trace_file(path)
    records = read_trace(path)
    stats = records[-1]["stats"]

    def fail(message: str, **context) -> None:
        detail = "".join(f" {k}={v!r}" for k, v in context.items())
        raise TraceValidationError(f"{path}: {message}{detail}")

    open_frames: Dict[int, Dict] = {}
    episodes = terminal = restarted = flushes = forks = selects = 0
    histogram: Dict[int, int] = {}
    for record in records:
        kind = record["t"]
        if kind == "ep-enter":
            ep = record["ep"]
            if ep in open_frames:
                fail("duplicate episode id", ep=ep, i=record["i"])
            open_frames[ep] = record
            episodes += 1
        elif kind == "ep-exit":
            ep = record["ep"]
            if open_frames.pop(ep, None) is None:
                fail("episode exit without enter", ep=ep, i=record["i"])
            cases = record["cases"]
            if record["restart"]:
                restarted += 1
                if cases:
                    fail(
                        "restarted episode recorded an exit case",
                        ep=ep, cases=cases,
                    )
            else:
                terminal += 1
                if len(cases) != 1:
                    fail(
                        "terminal episode must record exactly one exit case",
                        ep=ep, cases=cases,
                    )
                histogram[cases[0]] = histogram.get(cases[0], 0) + 1
            selects += record["selects"]
        elif kind == "path":
            ep = record["ep"]
            if ep is not None and ep not in open_frames:
                fail("path event outside its episode", ep=ep, i=record["i"])
        elif kind == "flush":
            flushes += 1
        elif kind == "fork":
            forks += 1
    if open_frames:
        fail("episode(s) never exited", open=sorted(open_frames))

    stats_cases = {
        int(case): int(count)
        for case, count in stats["exit_cases"].items()
        if count
    }
    if histogram != stats_cases:
        fail(
            "episode exit cases disagree with the run's histogram",
            from_events=histogram, from_stats=stats_cases,
        )
    if episodes != stats["dpred_entries"]:
        fail(
            "episode count disagrees with dpred_entries",
            episodes=episodes, dpred_entries=stats["dpred_entries"],
        )
    if terminal != sum(stats_cases.values()):
        fail(
            "terminal episode count disagrees with the exit-case total",
            terminal=terminal, exit_case_total=sum(stats_cases.values()),
        )
    if flushes != stats["pipeline_flushes"]:
        fail(
            "flush events disagree with pipeline_flushes",
            events=flushes, counter=stats["pipeline_flushes"],
        )
    if forks != stats["dualpath_forks"]:
        fail(
            "fork events disagree with dualpath_forks",
            events=forks, counter=stats["dualpath_forks"],
        )
    if selects != stats["select_uops"]:
        fail(
            "episode select counts disagree with select_uops",
            events=selects, counter=stats["select_uops"],
        )

    return TraceSummary(
        path=str(path),
        benchmark=str(header.get("benchmark", stats.get("benchmark", ""))),
        config=str(header.get("config", "")),
        events=records[-1]["events"],
        episodes=episodes,
        terminal_episodes=terminal,
        restarted_episodes=restarted,
        exit_cases=histogram,
        flushes=flushes,
        forks=forks,
        select_uops=selects,
        stats=stats,
    )


def reconcile_directory(directory) -> List[TraceSummary]:
    """Reconcile every ``*.jsonl`` file under ``directory`` (sorted by
    name, so output order is deterministic)."""
    import os

    summaries = []
    names = sorted(
        name for name in os.listdir(directory) if name.endswith(".jsonl")
    )
    if not names:
        raise TraceValidationError(f"{directory}: no *.jsonl trace files")
    for name in names:
        summaries.append(reconcile_trace(os.path.join(directory, name)))
    return summaries


def trace_metrics(summary: TraceSummary, config: Optional[str] = None):
    """A :class:`~repro.obs.metrics.RunMetrics` from a reconciled trace."""
    from repro.obs.metrics import RunMetrics

    return RunMetrics.from_stats(
        summary.stats,
        benchmark=summary.benchmark,
        config=config or summary.config,
    )
