"""Observability: structured event tracing and run reports.

Opt-in, zero-overhead-when-off instrumentation for both simulation
engines (see docs/observability.md):

* :mod:`repro.obs.events` — the event tracer (ring buffer, JSONL
  streaming, episode-frame exit-case attribution);
* :mod:`repro.obs.metrics` — per-run rollups and suite run reports
  (JSON/CSV);
* :mod:`repro.obs.reconcile` — offline validation of trace files
  against the run's final stats;
* :mod:`repro.obs.runtime` — the process-wide ``--trace-out`` toggle
  the harness consults (mirrors paranoid mode).
"""

from repro.obs.events import (
    SCHEMA,
    CollectorTracer,
    JsonlTracer,
    Tracer,
)
from repro.obs.metrics import REPORT_SCHEMA, RunMetrics, SuiteReport
from repro.obs.reconcile import (
    TraceSummary,
    reconcile_directory,
    reconcile_trace,
    validate_trace_file,
)
from repro.obs.runtime import (
    active_trace_dir,
    set_trace_dir,
    trace_path,
    tracing,
)

__all__ = [
    "SCHEMA",
    "REPORT_SCHEMA",
    "Tracer",
    "CollectorTracer",
    "JsonlTracer",
    "RunMetrics",
    "SuiteReport",
    "TraceSummary",
    "validate_trace_file",
    "reconcile_trace",
    "reconcile_directory",
    "active_trace_dir",
    "set_trace_dir",
    "trace_path",
    "tracing",
]
