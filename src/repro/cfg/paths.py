"""Frequently-executed-path utilities.

The CFM-point selection heuristic (Section 3.2) works on "frequently
executed paths" collected by profiling.  This module provides the profile
container (:class:`EdgeProfile`) and the graph walks the selection heuristic
and the enhanced mechanisms use:

* :func:`frequent_successors` — the successors of a block whose edges carry
  at least a given fraction of the block's outgoing executions;
* :func:`walk_frequent_path` — follow the single most frequent edge from a
  starting block, enumerating the blocks on the hot path;
* :func:`reachable_within` — blocks reachable from a block within a dynamic
  instruction budget (the paper caps CFM points at 120 instructions).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterator, List, Set, Tuple

from repro.cfg.graph import ControlFlowGraph


class EdgeProfile:
    """Execution counts for CFG edges of one function.

    Edges are ``(src_block, dst_block)`` name pairs.  Counts are accumulated
    by the profiler while replaying a functional trace.
    """

    def __init__(self, function: str) -> None:
        self.function = function
        self._counts: Dict[Tuple[str, str], int] = defaultdict(int)
        self._block_counts: Dict[str, int] = defaultdict(int)

    def record_edge(self, src: str, dst: str, count: int = 1) -> None:
        self._counts[(src, dst)] += count
        self._block_counts[dst] += count

    def record_entry(self, block: str, count: int = 1) -> None:
        """Record function entry (a block execution with no intra-CFG edge)."""
        self._block_counts[block] += count

    def edge_count(self, src: str, dst: str) -> int:
        return self._counts.get((src, dst), 0)

    def block_count(self, block: str) -> int:
        return self._block_counts.get(block, 0)

    def outgoing_total(self, src: str) -> int:
        return sum(c for (s, _), c in self._counts.items() if s == src)

    def edges(self) -> Iterator[Tuple[str, str, int]]:
        for (src, dst), count in sorted(self._counts.items()):
            yield src, dst, count

    def __repr__(self) -> str:
        return (
            f"<EdgeProfile {self.function} ({len(self._counts)} edges, "
            f"{sum(self._counts.values())} executions)>"
        )


def frequent_successors(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    block_name: str,
    min_fraction: float = 0.1,
) -> List[str]:
    """Successors of ``block_name`` reached by at least ``min_fraction`` of
    its profiled outgoing executions.  Falls back to all static successors
    when the block was never profiled (cold code).
    """
    succs = cfg.block(block_name).successors()
    total = sum(profile.edge_count(block_name, s) for s in succs)
    if total == 0:
        return list(succs)
    return [
        s
        for s in succs
        if profile.edge_count(block_name, s) / total >= min_fraction
    ]


def walk_frequent_path(
    cfg: ControlFlowGraph,
    profile: EdgeProfile,
    start: str,
    max_blocks: int = 64,
) -> List[str]:
    """Follow the most frequent outgoing edge from ``start`` until an exit
    block, a revisited block, or ``max_blocks`` steps.  Returns the block
    names on the path, starting with ``start``.
    """
    path = [start]
    seen: Set[str] = {start}
    current = start
    while len(path) < max_blocks:
        succs = cfg.block(current).successors()
        if not succs:
            break
        best = max(succs, key=lambda s: profile.edge_count(current, s))
        if best in seen:
            break
        path.append(best)
        seen.add(best)
        current = best
    return path


def reachable_within(
    cfg: ControlFlowGraph,
    start: str,
    max_instructions: int,
    restrict_to: Set[str] = None,
) -> Dict[str, int]:
    """Blocks reachable from ``start`` within ``max_instructions`` dynamic
    instructions, mapped to the *minimum* instruction distance at which each
    block's first instruction is reached.

    ``start`` itself is included at distance 0.  ``restrict_to`` optionally
    limits the walk to a subset of blocks (e.g., the frequently-executed
    subgraph).
    """
    dist: Dict[str, int] = {start: 0}
    queue = deque([start])
    while queue:
        name = queue.popleft()
        block = cfg.block(name)
        next_dist = dist[name] + len(block)
        if next_dist > max_instructions:
            continue
        for succ in block.successors():
            if restrict_to is not None and succ not in restrict_to:
                continue
            if succ not in dist or next_dist < dist[succ]:
                dist[succ] = next_dist
                queue.append(succ)
    return dist
