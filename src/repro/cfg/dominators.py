"""Dominator and post-dominator analysis.

The immediate post-dominator of a branch block is the classical
*reconvergence point* of the branch — the point the paper contrasts the
profile-driven CFM point against ("for many control-flow graphs, the
selected CFM point is much closer ... than the immediate post-dominator").
The wrong-path control-independence analysis of Figure 1 also uses it.

The implementation is the standard iterative data-flow algorithm of
Cooper, Harvey and Kennedy ("A Simple, Fast Dominance Algorithm") run over
either the CFG or its reverse.  Functions with multiple exit blocks are
handled by a virtual exit node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import ControlFlowGraph

_VIRTUAL_EXIT = "<exit>"


def _reverse_postorder(
    succs: Dict[str, List[str]], entry: str
) -> List[str]:
    """Reverse post-order of the graph reachable from ``entry``."""
    visited: Set[str] = set()
    order: List[str] = []
    # Iterative DFS (workloads may have deep CFGs; avoid recursion limits).
    stack: List[tuple] = [(entry, iter(succs.get(entry, ())))]
    visited.add(entry)
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succs.get(succ, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def _idoms(
    succs: Dict[str, List[str]], preds: Dict[str, List[str]], entry: str
) -> Dict[str, Optional[str]]:
    """Immediate dominators for all nodes reachable from ``entry``."""
    rpo = _reverse_postorder(succs, entry)
    index = {name: i for i, name in enumerate(rpo)}
    idom: Dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            candidates = [p for p in preds.get(node, ()) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    idom[entry] = None
    return idom


def _forward_edges(cfg: ControlFlowGraph) -> Dict[str, List[str]]:
    return {block.name: list(block.successors()) for block in cfg}


def compute_dominators(cfg: ControlFlowGraph) -> Dict[str, Optional[str]]:
    """Immediate dominator of every reachable block (entry maps to None)."""
    succs = _forward_edges(cfg)
    preds = {block.name: list(block.predecessors) for block in cfg}
    return _idoms(succs, preds, cfg.entry.name)


def compute_postdominators(cfg: ControlFlowGraph) -> Dict[str, Optional[str]]:
    """Immediate post-dominator of every block.

    Blocks whose only post-dominator is the virtual exit map to ``None``.
    """
    ipdoms = immediate_postdominators(cfg)
    return ipdoms


def immediate_postdominators(cfg: ControlFlowGraph) -> Dict[str, Optional[str]]:
    succs = _forward_edges(cfg)
    preds: Dict[str, List[str]] = {block.name: [] for block in cfg}
    for name, ss in succs.items():
        for s in ss:
            preds[s].append(name)
    # Reverse graph with a virtual exit joining all real exits.
    rsuccs: Dict[str, List[str]] = {name: list(preds[name]) for name in succs}
    rsuccs[_VIRTUAL_EXIT] = [b for b in succs if not succs[b]]
    rpreds: Dict[str, List[str]] = {name: list(succs[name]) for name in succs}
    for name in rpreds:
        if not succs[name]:
            rpreds[name] = rpreds[name] + [_VIRTUAL_EXIT]
    rpreds[_VIRTUAL_EXIT] = []
    idom = _idoms(rsuccs, rpreds, _VIRTUAL_EXIT)
    result: Dict[str, Optional[str]] = {}
    for block in cfg:
        ip = idom.get(block.name)
        result[block.name] = None if ip in (None, _VIRTUAL_EXIT) else ip
    return result


def reconvergence_point(cfg: ControlFlowGraph, block_name: str) -> Optional[str]:
    """The immediate post-dominator of ``block_name`` — where the two paths
    of a branch ending that block are architecturally guaranteed to merge.
    """
    return immediate_postdominators(cfg).get(block_name)
