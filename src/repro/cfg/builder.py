"""A small DSL for constructing CFGs.

Used by the synthetic workload generator and extensively by the test suite::

    b = CFGBuilder("main")
    a = b.block("A")
    a.movi(1, 10)
    a.br(Condition.LT, 1, 2, taken="C")   # if r1 < r2 goto C
    body = b.block("B")                   # falls through from A
    body.addi(3, 3, 1)
    b.block("C").halt()
    cfg = b.build()

Blocks fall through in definition order unless an explicit ``fallthrough``
is given or the block ends in an unconditional transfer.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.isa.instructions import Condition, Instruction, Opcode


class BlockHandle:
    """Fluent instruction appender for one basic block."""

    def __init__(self, block: BasicBlock) -> None:
        self._block = block

    @property
    def name(self) -> str:
        return self._block.name

    def _append(self, instr: Instruction) -> "BlockHandle":
        if self._block.instructions and self._block.instructions[-1].is_control:
            raise ValueError(
                f"block {self._block.name!r} already ends in control flow"
            )
        self._block.instructions.append(instr)
        return self

    # -- integer ALU -------------------------------------------------------

    def add(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.ADD, dest, (s0, s1)))

    def sub(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.SUB, dest, (s0, s1)))

    def and_(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.AND, dest, (s0, s1)))

    def or_(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.OR, dest, (s0, s1)))

    def xor(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.XOR, dest, (s0, s1)))

    def shl(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.SHL, dest, (s0, s1)))

    def shr(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.SHR, dest, (s0, s1)))

    def mul(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.MUL, dest, (s0, s1)))

    def addi(self, dest: int, src: int, imm: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.ADDI, dest, (src,), imm=imm))

    def andi(self, dest: int, src: int, imm: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.ANDI, dest, (src,), imm=imm))

    def xori(self, dest: int, src: int, imm: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.XORI, dest, (src,), imm=imm))

    def movi(self, dest: int, imm: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.MOVI, dest, (), imm=imm))

    # -- floating point -----------------------------------------------------

    def fadd(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.FADD, dest, (s0, s1)))

    def fmul(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.FMUL, dest, (s0, s1)))

    def fdiv(self, dest: int, s0: int, s1: int) -> "BlockHandle":
        return self._append(Instruction(Opcode.FDIV, dest, (s0, s1)))

    # -- memory --------------------------------------------------------------

    def load(self, dest: int, addr: int, offset: int = 0) -> "BlockHandle":
        return self._append(Instruction(Opcode.LOAD, dest, (addr,), imm=offset))

    def store(self, value: int, addr: int, offset: int = 0) -> "BlockHandle":
        return self._append(
            Instruction(Opcode.STORE, None, (value, addr), imm=offset)
        )

    # -- control flow ----------------------------------------------------------

    def br(
        self,
        cond: Condition,
        s0: int,
        s1: Optional[int] = None,
        imm: int = 0,
        taken: str = None,
    ) -> "BlockHandle":
        """Conditional branch: ``if s0 <cond> (s1 or imm) goto taken``."""
        if taken is None:
            raise ValueError("br requires a taken target")
        srcs = (s0,) if s1 is None else (s0, s1)
        return self._append(
            Instruction(Opcode.BR, None, srcs, imm=imm, cond=cond, target=taken)
        )

    def jmp(self, target: str) -> "BlockHandle":
        return self._append(Instruction(Opcode.JMP, target=target))

    def call(self, function: str) -> "BlockHandle":
        return self._append(Instruction(Opcode.CALL, target=function))

    def ret(self) -> "BlockHandle":
        return self._append(Instruction(Opcode.RET))

    def nop(self, count: int = 1) -> "BlockHandle":
        for _ in range(count):
            self._append(Instruction(Opcode.NOP))
        return self

    def halt(self) -> "BlockHandle":
        return self._append(Instruction(Opcode.HALT))


class CFGBuilder:
    """Builds one function's :class:`ControlFlowGraph`."""

    def __init__(self, function_name: str) -> None:
        self._cfg = ControlFlowGraph(function_name)

    def block(self, name: str, fallthrough: Optional[str] = None) -> BlockHandle:
        """Create a new block.  ``fallthrough`` overrides the default
        textually-next-block fall-through target."""
        block = BasicBlock(name)
        block.fallthrough = fallthrough
        self._cfg.add_block(block)
        return BlockHandle(block)

    def build(self) -> ControlFlowGraph:
        """Seal and return the CFG."""
        self._cfg.seal()
        return self._cfg
