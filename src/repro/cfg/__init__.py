"""Control-flow-graph substrate.

Everything the compiler side of DMP needs to reason about programs: basic
blocks and per-function CFGs (:mod:`repro.cfg.graph`), the
program-scoped static-analysis cache (:mod:`repro.cfg.analysis`),
dominator and
post-dominator analysis used to find reconvergence points
(:mod:`repro.cfg.dominators`), frequently-executed-path utilities used by
CFM-point selection (:mod:`repro.cfg.paths`), and a small builder DSL used by
the workload generator and the test suite (:mod:`repro.cfg.builder`).
"""

from repro.cfg.analysis import ProgramAnalysis
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.cfg.dominators import (
    compute_dominators,
    compute_postdominators,
    immediate_postdominators,
    reconvergence_point,
)
from repro.cfg.paths import (
    EdgeProfile,
    frequent_successors,
    reachable_within,
    walk_frequent_path,
)
from repro.cfg.builder import CFGBuilder

__all__ = [
    "BasicBlock",
    "ProgramAnalysis",
    "ControlFlowGraph",
    "compute_dominators",
    "compute_postdominators",
    "immediate_postdominators",
    "reconvergence_point",
    "EdgeProfile",
    "frequent_successors",
    "reachable_within",
    "walk_frequent_path",
    "CFGBuilder",
]
