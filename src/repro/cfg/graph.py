"""Basic blocks and per-function control-flow graphs."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode


class BasicBlock:
    """A straight-line sequence of instructions with a single terminator.

    Control flow out of a block is defined by its last instruction:

    ========= =====================================================
    ``BR``    two successors: ``taken`` (the branch target) and
              ``fallthrough``
    ``JMP``   one successor: the jump target
    ``CALL``  one *intra-function* successor (``fallthrough``, the
              return point); the callee is a separate function
    ``RET``   no intra-function successors (function exit)
    ``HALT``  no successors (program exit)
    other     one successor: ``fallthrough``
    ========= =====================================================
    """

    __slots__ = ("name", "instructions", "fallthrough", "_preds",
                 "_plan", "_mem_profile")

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        #: Name of the textually-next block, or ``None`` for exit blocks.
        self.fallthrough: Optional[str] = None
        self._preds: Tuple[str, ...] = ()
        #: Derived caches (never pickled): the fast engine's decoded
        #: :class:`~repro.uarch.plan.BlockPlan`, and the (loads, stores)
        #: count pair used by :meth:`repro.program.trace.Trace.append`.
        self._plan = None
        self._mem_profile: Optional[Tuple[int, int]] = None

    # -- pickling ----------------------------------------------------------
    # Derived caches are excluded: a plan holds references into one
    # program's CFG and must never leak through a pickled trace.  The
    # legacy slot-tuple state produced before these caches existed is
    # still accepted.

    def __getstate__(self):
        return {
            "name": self.name,
            "instructions": self.instructions,
            "fallthrough": self.fallthrough,
            "_preds": self._preds,
        }

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # legacy (dict_state, slots_dict) form
            state = state[1] or {}
        self.name = state["name"]
        self.instructions = state["instructions"]
        self.fallthrough = state["fallthrough"]
        self._preds = state.get("_preds", ())
        self._plan = None
        self._mem_profile = None

    # -- structure queries -------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The control-flow instruction ending this block, if any."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def ends_in_branch(self) -> bool:
        term = self.terminator
        return term is not None and term.opcode == Opcode.BR

    @property
    def ends_in_call(self) -> bool:
        term = self.terminator
        return term is not None and term.opcode == Opcode.CALL

    @property
    def ends_in_return(self) -> bool:
        term = self.terminator
        return term is not None and term.opcode == Opcode.RET

    @property
    def ends_in_halt(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].opcode == Opcode.HALT

    def successors(self) -> Tuple[str, ...]:
        """Intra-function successor block names (taken target first)."""
        term = self.terminator
        if term is None:
            if self.ends_in_halt or self.fallthrough is None:
                return ()
            return (self.fallthrough,)
        if term.opcode == Opcode.BR:
            succs = [term.target]
            if self.fallthrough is not None:
                succs.append(self.fallthrough)
            return tuple(succs)
        if term.opcode == Opcode.JMP:
            return (term.target,)
        if term.opcode == Opcode.CALL:
            return (self.fallthrough,) if self.fallthrough is not None else ()
        return ()  # RET

    @property
    def predecessors(self) -> Tuple[str, ...]:
        return self._preds

    def mem_profile(self) -> Tuple[int, int]:
        """``(load_count, store_count)``, computed once per block."""
        profile = self._mem_profile
        if profile is None:
            loads = stores = 0
            for instr in self.instructions:
                if instr.opcode == Opcode.LOAD:
                    loads += 1
                elif instr.opcode == Opcode.STORE:
                    stores += 1
            profile = self._mem_profile = (loads, stores)
        return profile

    @property
    def load_count(self) -> int:
        return self.mem_profile()[0]

    @property
    def store_count(self) -> int:
        return self.mem_profile()[1]

    @property
    def first_pc(self) -> int:
        if not self.instructions or self.instructions[0].pc is None:
            raise RuntimeError(f"block {self.name!r} has no sealed PC")
        return self.instructions[0].pc

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class ControlFlowGraph:
    """The CFG of one function.

    Blocks are stored in insertion order, which is also the layout order used
    for PC assignment and for implicit fall-through edges.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: Dict[str, BasicBlock] = {}
        self._sealed = False

    # -- construction -------------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if self._sealed:
            raise RuntimeError("CFG is sealed")
        if block.name in self._blocks:
            raise ValueError(f"duplicate block name {block.name!r}")
        self._blocks[block.name] = block
        return block

    def seal(self) -> None:
        """Wire implicit fall-throughs, compute predecessors and validate."""
        if self._sealed:
            return
        order = list(self._blocks.values())
        for i, block in enumerate(order):
            needs_fallthrough = not (
                block.ends_in_halt
                or block.ends_in_return
                or (block.terminator is not None
                    and block.terminator.opcode == Opcode.JMP)
            )
            if needs_fallthrough and block.fallthrough is None:
                if i + 1 >= len(order):
                    raise ValueError(
                        f"block {block.name!r} falls off the end of "
                        f"function {self.name!r}"
                    )
                block.fallthrough = order[i + 1].name
        preds: Dict[str, List[str]] = {name: [] for name in self._blocks}
        for block in order:
            for succ in block.successors():
                if succ not in self._blocks:
                    raise ValueError(
                        f"block {block.name!r} targets unknown block {succ!r}"
                    )
                preds[succ].append(block.name)
        for name, block in self._blocks.items():
            block._preds = tuple(preds[name])
        self._sealed = True

    # -- queries -------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self._blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return next(iter(self._blocks.values()))

    def block(self, name: str) -> BasicBlock:
        return self._blocks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def block_names(self) -> Tuple[str, ...]:
        return tuple(self._blocks)

    def exit_blocks(self) -> Tuple[str, ...]:
        """Names of blocks with no intra-function successors."""
        return tuple(b.name for b in self._blocks.values() if not b.successors())

    def instruction_count(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def conditional_branches(self) -> Iterator[Tuple[str, Instruction]]:
        """Yield ``(block_name, branch_instruction)`` for every BR."""
        for block in self._blocks.values():
            if block.ends_in_branch:
                yield block.name, block.instructions[-1]

    def __repr__(self) -> str:
        return (
            f"<ControlFlowGraph {self.name} ({len(self._blocks)} blocks, "
            f"{self.instruction_count()} insts)>"
        )
