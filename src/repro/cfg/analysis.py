"""Program-scoped static-analysis cache.

Every :class:`~repro.uarch.timing.TimingSimulator` instance used to
recompute immediate postdominators and reconvergence PCs from scratch,
even when a suite sweeps ten machine configurations over the same
program.  :class:`ProgramAnalysis` memoizes these — together with the
fast engine's pre-decoded :class:`~repro.uarch.plan.BlockPlan` tables —
once per :class:`~repro.program.program.Program` object, so every
simulator (any engine, any config) of the same program shares them.

The registry is a ``WeakKeyDictionary`` keyed by the program object and
the analysis itself only holds a weak reference back, so programs (and
their analyses) are garbage-collected normally and nothing is dragged
into pickles shipped to worker processes.

The machine-independent tables (postdominators, reconvergence PCs) are
also exportable as a plain picklable dict
(:meth:`export_tables`/:meth:`adopt_tables`) so the harness can persist
them in the fingerprint-keyed :class:`~repro.harness.cache.ArtifactCache`
(kind ``"analysis"``) and later processes skip the recomputation
entirely.  Block plans hold live object references and are always
rebuilt — they are cheap, unlike the dominator fixpoint.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

from repro.cfg.dominators import immediate_postdominators

#: Format tag for exported analysis tables; bump on layout changes so
#: stale on-disk entries are ignored rather than misread.
_TABLES_VERSION = 1

_REGISTRY: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class ProgramAnalysis:
    """Shared static-analysis results for one program."""

    __slots__ = (
        "_program_ref",
        "_plans",
        "_ipostdoms",
        "_reconv_pc",
        "_dirty",
        "__weakref__",
    )

    def __init__(self, program) -> None:
        self._program_ref = weakref.ref(program)
        #: ``(function, block_name) -> BlockPlan``
        self._plans: Dict[Tuple[str, str], object] = {}
        #: ``function -> {block_name -> ipostdom block name or None}``
        self._ipostdoms: Dict[str, Dict[str, Optional[str]]] = {}
        #: ``(function, block_name) -> reconvergence PC or None``
        self._reconv_pc: Dict[Tuple[str, str], Optional[int]] = {}
        #: True when a table entry was computed (not adopted) since the
        #: last export — the harness persists only when there is news.
        self._dirty = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def of(cls, program) -> "ProgramAnalysis":
        """The shared analysis for ``program`` (created on first use)."""
        analysis = _REGISTRY.get(program)
        if analysis is None:
            analysis = _REGISTRY[program] = cls(program)
        return analysis

    @classmethod
    def reset(cls, program) -> None:
        """Drop all cached analysis for ``program`` (used by ``repro
        bench`` to measure genuinely cold simulations)."""
        _REGISTRY.pop(program, None)
        for cfg in program.functions():
            for block in cfg:
                try:
                    block._plan = None
                except AttributeError:
                    pass  # foreign block type without the plan slot

    @property
    def program(self):
        program = self._program_ref()
        if program is None:
            raise RuntimeError("analyzed program has been garbage-collected")
        return program

    @property
    def dirty(self) -> bool:
        return self._dirty

    def mark_clean(self) -> None:
        self._dirty = False

    # -- block plans -------------------------------------------------------

    def block_plan(self, block, function: Optional[str] = None):
        """The :class:`~repro.uarch.plan.BlockPlan` for ``block``.

        ``block`` may be a trace-owned copy of a program block (cached
        traces unpickle copies); plans are keyed by
        ``(function, block name)`` and attached to every block object
        they are requested through, so both the copy and the program's
        own block resolve to the same plan object.
        """
        try:
            plan = block._plan
            if plan is not None:
                return plan
        except AttributeError:
            pass
        program = self.program
        if function is None:
            function = program.locate(block.instructions[0].pc)[0]
        key = (function, block.name)
        plan = self._plans.get(key)
        if plan is None:
            from repro.uarch.plan import build_block_plan  # lazy: avoids an import cycle

            plan = build_block_plan(program, function, block)
            self._plans[key] = plan
            # Attach to the authoritative block too, so program-side
            # lookups (wrong-path walks) skip the dictionary as well.
            try:
                program.function(function).block(block.name)._plan = plan
            except AttributeError:
                pass
        try:
            block._plan = plan
        except AttributeError:
            pass
        return plan

    # -- dominators / reconvergence ---------------------------------------

    def ipostdoms(self, function: str) -> Dict[str, Optional[str]]:
        table = self._ipostdoms.get(function)
        if table is None:
            table = immediate_postdominators(self.program.function(function))
            self._ipostdoms[function] = table
            self._dirty = True
        return table

    def reconvergence_pc(self, function: str, block_name: str) -> Optional[int]:
        key = (function, block_name)
        try:
            return self._reconv_pc[key]
        except KeyError:
            pass
        ipd = self.ipostdoms(function).get(block_name)
        pc = (
            None
            if ipd is None
            else self.program.function(function).block(ipd).first_pc
        )
        self._reconv_pc[key] = pc
        self._dirty = True
        return pc

    # -- persistence -------------------------------------------------------

    def export_tables(self) -> Dict:
        """The machine-independent tables as a plain picklable dict."""
        return {
            "version": _TABLES_VERSION,
            "ipostdoms": {
                function: dict(table)
                for function, table in self._ipostdoms.items()
            },
            "reconv_pc": dict(self._reconv_pc),
        }

    def adopt_tables(self, tables) -> bool:
        """Merge previously exported tables (already-computed entries
        win).  A malformed payload is ignored — the caller recomputes,
        mirroring the artifact cache's detect-and-recover contract."""
        if (
            not isinstance(tables, dict)
            or tables.get("version") != _TABLES_VERSION
            or not isinstance(tables.get("ipostdoms"), dict)
            or not isinstance(tables.get("reconv_pc"), dict)
        ):
            return False
        for function, table in tables["ipostdoms"].items():
            self._ipostdoms.setdefault(function, dict(table))
        for key, pc in tables["reconv_pc"].items():
            self._reconv_pc.setdefault(key, pc)
        return True
