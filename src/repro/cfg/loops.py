"""Natural-loop detection.

Standard dominator-based analysis: a *back edge* is a CFG edge ``u -> v``
where ``v`` dominates ``u``; the *natural loop* of that back edge is ``v``
(the header) plus every block that can reach ``u`` without passing through
``v``.  Loops sharing a header are merged.

Used by the diverge-loop-branch compiler pass to find loop-exit branches
(a branch inside a loop with exactly one successor outside it), and
available as general CFG substrate.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph


class NaturalLoop:
    """One natural loop: header block + the set of member blocks."""

    __slots__ = ("header", "blocks")

    def __init__(self, header: str, blocks: Set[str]) -> None:
        self.header = header
        self.blocks = blocks

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.blocks

    def exit_edges(self, cfg: ControlFlowGraph) -> List[Tuple[str, str]]:
        """Edges leaving the loop: ``(inside_block, outside_successor)``."""
        out = []
        for name in sorted(self.blocks):
            for succ in cfg.block(name).successors():
                if succ not in self.blocks:
                    out.append((name, succ))
        return out

    def __repr__(self) -> str:
        return f"<NaturalLoop {self.header} ({len(self.blocks)} blocks)>"


def _dominates(idom: Dict[str, str], a: str, b: str) -> bool:
    """Does ``a`` dominate ``b``?  (idom maps each block to its immediate
    dominator, entry to None.)"""
    node = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


def natural_loops(cfg: ControlFlowGraph) -> List[NaturalLoop]:
    """All natural loops of the function, loops sharing a header merged."""
    idom = compute_dominators(cfg)
    bodies: Dict[str, Set[str]] = {}
    for block in cfg:
        for succ in block.successors():
            if succ in idom and _dominates(idom, succ, block.name):
                # back edge block -> succ: collect the loop body.
                header = succ
                body = bodies.setdefault(header, {header})
                stack = [block.name]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(cfg.block(node).predecessors)
    return [
        NaturalLoop(header, blocks)
        for header, blocks in sorted(bodies.items())
    ]


def loop_exit_branches(
    cfg: ControlFlowGraph,
) -> List[Tuple[str, int, str]]:
    """Conditional branches that exit a natural loop.

    Returns ``(block_name, branch_pc, exit_successor)`` for every branch
    inside a loop with exactly one successor outside the *innermost* loop
    containing it.
    """
    loops = natural_loops(cfg)
    out = []
    for block_name, instr in cfg.conditional_branches():
        containing = [loop for loop in loops if block_name in loop]
        if not containing:
            continue
        innermost = min(containing, key=lambda loop: len(loop.blocks))
        successors = cfg.block(block_name).successors()
        outside = [s for s in successors if s not in innermost]
        if len(outside) == 1:
            out.append((block_name, instr.pc, outside[0]))
    return out
