"""Diverge-Merge Processor (DMP) reproduction.

A complete Python implementation of the MICRO 2006 paper "Diverge-Merge
Processor (DMP): Dynamic Predicated Execution of Complex Control-Flow
Graphs Based on Frequently Executed Paths" (Kim, Joao, Mutlu, Patt) —
compiler side, microarchitecture, baselines, workloads and the experiment
harness that regenerates every table and figure of the evaluation.

Quick start::

    from repro import BenchmarkContext, MachineConfig

    ctx = BenchmarkContext("parser", iterations=2000)
    base = ctx.simulate(MachineConfig.baseline())
    dmp = ctx.simulate(MachineConfig.dmp(enhanced=True))
    print(dmp.ipc / base.ipc)

Package map (see README.md / DESIGN.md for detail):

- :mod:`repro.core` — the dynamic-predication engine and processor facades
- :mod:`repro.uarch` — machine config and the timing model substrate
- :mod:`repro.profiling` — the compiler side (selection heuristics)
- :mod:`repro.workloads` — the synthetic SPEC-2000-like suite
- :mod:`repro.harness` — per-figure experiment drivers
"""

from repro.core.processors import simulate
from repro.errors import (
    HintValidationError,
    OracleMismatchError,
    ReproError,
    SimulationError,
    SimulationHangError,
)
from repro.harness.experiment import BenchmarkContext
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

__version__ = "1.1.0"

__all__ = [
    "simulate",
    "BenchmarkContext",
    "MachineConfig",
    "SimStats",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "ReproError",
    "SimulationError",
    "SimulationHangError",
    "OracleMismatchError",
    "HintValidationError",
    "__version__",
]
