"""Hardened-simulation subsystem: oracle, watchdog, fault injection.

Three layers (see docs/robustness.md):

* :mod:`repro.validation.oracle` — cross-checks every timing run against
  the functional trace and the dynamic-predication invariants
  (``MachineConfig.oracle_checks``);
* :mod:`repro.validation.watchdog` — bounds cycles and forward progress,
  converting hangs into structured
  :class:`~repro.errors.SimulationHangError` reports
  (``MachineConfig.watchdog``);
* :mod:`repro.validation.faults` — the adversarial hint fault-injection
  harness behind ``repro validate --inject``;
* :mod:`repro.validation.hints` — static hint-table validation, run on
  every table the harness builds;
* :mod:`repro.validation.runtime` — the process-wide ``--paranoid``
  toggle.
"""

from repro.errors import (
    HintValidationError,
    OracleMismatchError,
    ReproError,
    SimulationError,
    SimulationHangError,
)
from repro.validation.faults import (
    DEFAULT_IPC_MARGIN,
    FAULT_CLASSES,
    FAULT_NAMES,
    FaultReport,
    FaultRunResult,
    fault_class,
    run_fault_suite,
)
from repro.validation.hints import check_hint_table, validate_hint_table
from repro.validation.oracle import OracleChecker
from repro.validation.runtime import paranoid, paranoid_enabled, set_paranoid
from repro.validation.watchdog import Watchdog

__all__ = [
    "ReproError",
    "SimulationError",
    "SimulationHangError",
    "OracleMismatchError",
    "HintValidationError",
    "OracleChecker",
    "Watchdog",
    "check_hint_table",
    "validate_hint_table",
    "paranoid",
    "paranoid_enabled",
    "set_paranoid",
    "DEFAULT_IPC_MARGIN",
    "FAULT_CLASSES",
    "FAULT_NAMES",
    "FaultReport",
    "FaultRunResult",
    "fault_class",
    "run_fault_suite",
]
