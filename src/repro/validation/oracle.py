"""Oracle cross-checker: timing simulation vs. the functional trace.

The timing simulator is trace-driven — architectural correctness means it
retires exactly the functional :class:`~repro.program.trace.Trace`
instruction stream, once, in order, no matter how the front end wandered
(wrong paths, predicated paths, flushes).  When
``MachineConfig.oracle_checks`` is on, the simulator carries an
:class:`OracleChecker` that verifies this online plus the
dynamic-predication invariants of Table 1:

* every top-level fetch step advances the trace cursor strictly forward
  and the covered block intervals tile ``[0, len(trace))`` exactly;
* every dynamic-predication episode exits (enter/exit hooks balance and
  nesting returns to zero — predicate/checkpoint state is released);
* exit-case counters account for every episode:
  ``dpred_entries == sum(exit_cases) + restarted episodes``;
* select-uops are balanced per merged region: the ``select_uops``
  counter equals the select requests the RAT actually produced;
* global counter sanity (retired == trace instructions, flushes never
  exceed mispredictions).

Violations raise :class:`~repro.errors.OracleMismatchError` with a
structured diagnostics payload.  Checks performed are counted in
``SimStats.oracle_checks``.
"""

from __future__ import annotations

from repro.errors import OracleMismatchError


class OracleChecker:
    """Online invariant checker attached to one simulator run."""

    def __init__(self, trace, stats) -> None:
        self.trace = trace
        self.stats = stats
        self._next_index = 0
        self._covered_instructions = 0
        self._dpred_depth = 0
        self._max_dpred_depth = 0
        self._episodes_entered = 0
        self._episodes_exited = 0
        self._restarted_episodes = 0
        self._selects_observed = 0

    # -- hooks called by the simulator ---------------------------------

    def note_advance(self, before: int, after: int) -> None:
        """One top-level fetch step covered trace records [before, after)."""
        self.stats.oracle_checks += 1
        if before != self._next_index:
            self._fail(
                "top-level fetch resumed at the wrong trace position",
                expected_index=self._next_index,
                resumed_index=before,
            )
        if after <= before:
            self._fail(
                "top-level fetch made no forward progress through the trace",
                index=before,
                next_index=after,
            )
        records = self.trace.records
        if after > len(records):
            self._fail(
                "fetch ran past the end of the functional trace",
                index=after,
                trace_length=len(records),
            )
        for i in range(before, after):
            self._covered_instructions += len(records[i].block.instructions)
        self._next_index = after

    def note_dpred_enter(self) -> None:
        self.stats.oracle_checks += 1
        self._dpred_depth += 1
        self._episodes_entered += 1
        if self._dpred_depth > self._max_dpred_depth:
            self._max_dpred_depth = self._dpred_depth

    def note_dpred_exit(self) -> None:
        self.stats.oracle_checks += 1
        self._dpred_depth -= 1
        self._episodes_exited += 1
        if self._dpred_depth < 0:
            self._fail(
                "dynamic-predication exit without a matching entry",
                depth=self._dpred_depth,
            )

    def note_restarted_episode(self) -> None:
        """An episode ended by restarting for a newer diverge branch
        (Section 2.7.3) — it records no Table 1 exit case."""
        self._restarted_episodes += 1

    def note_selects(self, count: int) -> None:
        self._selects_observed += count

    @property
    def dpred_depth(self) -> int:
        return self._dpred_depth

    @property
    def max_dpred_depth(self) -> int:
        return self._max_dpred_depth

    # -- end-of-run validation -----------------------------------------

    def finalize(self, stats, trace) -> None:
        """Validate whole-run invariants; raises on the first violation."""
        checks = (
            self._check_coverage,
            self._check_dpred_balance,
            self._check_exit_accounting,
            self._check_counters,
        )
        for check in checks:
            stats.oracle_checks += 1
            check(stats, trace)

    def _check_coverage(self, stats, trace) -> None:
        if self._next_index != len(trace.records):
            self._fail(
                "timing run did not retire the full functional trace",
                retired_through=self._next_index,
                trace_length=len(trace.records),
            )
        if self._covered_instructions != trace.instruction_count:
            self._fail(
                "retired instruction stream differs from the functional trace",
                covered=self._covered_instructions,
                expected=trace.instruction_count,
            )
        if stats.retired_instructions != trace.instruction_count:
            self._fail(
                "retired_instructions counter disagrees with the trace",
                counter=stats.retired_instructions,
                expected=trace.instruction_count,
            )

    def _check_dpred_balance(self, stats, trace) -> None:
        if self._dpred_depth != 0:
            self._fail(
                "a dynamic-predication episode never exited "
                "(predicate/checkpoint state not released)",
                depth=self._dpred_depth,
            )
        if self._episodes_entered != self._episodes_exited:
            self._fail(
                "unbalanced dynamic-predication enter/exit hooks",
                entered=self._episodes_entered,
                exited=self._episodes_exited,
            )
        if self._episodes_entered != stats.dpred_entries:
            self._fail(
                "dpred_entries counter disagrees with observed episodes",
                counter=stats.dpred_entries,
                observed=self._episodes_entered,
            )

    def _check_exit_accounting(self, stats, trace) -> None:
        recorded = sum(stats.exit_cases.values())
        expected = stats.dpred_entries - self._restarted_episodes
        if recorded != expected:
            self._fail(
                "exit-case counters do not account for every episode",
                exit_cases_recorded=recorded,
                dpred_entries=stats.dpred_entries,
                restarted_episodes=self._restarted_episodes,
            )
        if stats.select_uops != self._selects_observed:
            self._fail(
                "select-uop counter is unbalanced against merged regions",
                counter=stats.select_uops,
                observed=self._selects_observed,
            )

    def _check_counters(self, stats, trace) -> None:
        if stats.pipeline_flushes > stats.mispredictions:
            self._fail(
                "more pipeline flushes than mispredictions",
                pipeline_flushes=stats.pipeline_flushes,
                mispredictions=stats.mispredictions,
            )
        negatives = {
            name: value
            for name, value in (
                ("cycles", stats.cycles),
                ("retired_instructions", stats.retired_instructions),
                ("executed_instructions", stats.executed_instructions),
                ("mispredictions", stats.mispredictions),
                ("select_uops", stats.select_uops),
                ("extra_uops", stats.extra_uops),
            )
            if value < 0
        }
        if negatives:
            self._fail("negative statistics counters", **negatives)

    def _fail(self, message: str, **diagnostics) -> None:
        diagnostics.setdefault("benchmark", self.stats.benchmark)
        diagnostics.setdefault("config", self.stats.config_description)
        raise OracleMismatchError(message, diagnostics)
