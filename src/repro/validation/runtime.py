"""Process-wide paranoid mode.

The CLI's ``--paranoid`` flag must harden *every* simulation a command
runs — including ones buried inside figure drivers that build their own
:class:`~repro.uarch.config.MachineConfig` objects.  Rather than thread
a flag through every driver signature, :func:`repro.core.processors
.simulate` consults this toggle and upgrades any config to
``oracle_checks=True, watchdog=True`` when it is set.

The toggle only ever *adds* checking; it never changes timing results,
so memoized simulation caches keyed on the original config stay valid.
"""

from __future__ import annotations

import contextlib

_PARANOID = False


def set_paranoid(enabled: bool = True) -> bool:
    """Set the process-wide paranoid flag; returns the previous value."""
    global _PARANOID
    previous = _PARANOID
    _PARANOID = bool(enabled)
    return previous


def paranoid_enabled() -> bool:
    return _PARANOID


@contextlib.contextmanager
def paranoid(enabled: bool = True):
    """Context manager: paranoid mode inside the ``with`` block."""
    previous = set_paranoid(enabled)
    try:
        yield
    finally:
        set_paranoid(previous)
