"""Watchdog: bound simulated cycles and forward progress.

A buggy or adversarially-hinted dynamic-predication loop must fail
loudly, never spin forever.  When ``MachineConfig.watchdog`` is on, the
simulator calls :meth:`Watchdog.check` from every fetch loop (the main
retire loop, both predicated-path fetchers, the loop-predication engine,
the wrong-path walker).  The watchdog trips — raising a structured
:class:`~repro.errors.SimulationHangError` — when either

* the simulated cycle count exceeds a budget proportional to the trace
  length (``watchdog_cycle_limit``, or an automatic bound of
  ``AUTO_CYCLE_FACTOR`` cycles per trace instruction), or
* a large number of consecutive checks observe no progress of any kind
  (cycle, dispatch sequence, executed or wrong-path-fetched
  instructions all frozen) — the signature of a loop that is not even
  burning simulated time.

The exception's diagnostics carry the fetch PC, machine mode, dynamic
predication nesting depth, last-retired state and the exceeded limit, so
a hang converts into an actionable bug report instead of a dead CI job.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationHangError

#: Automatic cycle budget: cycles allowed per functional-trace
#: instruction.  Even the most memory-bound configuration in the suite
#: stays well under 64 cycles per instruction; 512 leaves a wide margin
#: while still bounding a runaway loop to seconds of wall clock.
AUTO_CYCLE_FACTOR = 512

#: Floor on the automatic budget so tiny unit-test traces are not
#: tripped by fixed costs (pipeline fill, cold caches).
AUTO_CYCLE_FLOOR = 100_000

#: Consecutive no-progress checks tolerated before declaring a hang.
STALL_CHECK_LIMIT = 50_000


class Watchdog:
    """Run-bounding guard attached to one simulator."""

    def __init__(self, simulator, cycle_limit: Optional[int] = None) -> None:
        if cycle_limit is None:
            cycle_limit = simulator.config.watchdog_cycle_limit
        if cycle_limit is None:
            cycle_limit = max(
                AUTO_CYCLE_FLOOR,
                AUTO_CYCLE_FACTOR * simulator.trace.instruction_count,
            )
        self.cycle_limit = cycle_limit
        self.stall_limit = STALL_CHECK_LIMIT
        self._last_progress = None
        self._stalled_checks = 0

    def check(self, sim, where: str = "run", pc: Optional[int] = None) -> None:
        """Called from inside every fetch loop; cheap unless tripping."""
        if sim.cycle > self.cycle_limit:
            self._trip(
                sim,
                where,
                pc,
                "simulated cycle budget exceeded",
                cycle_limit=self.cycle_limit,
            )
        stats = sim.stats
        progress = (
            sim.cycle,
            sim.seq,
            stats.executed_instructions,
            stats.fetched_wrong_cd + stats.fetched_wrong_ci,
        )
        if progress == self._last_progress:
            self._stalled_checks += 1
            if self._stalled_checks > self.stall_limit:
                self._trip(
                    sim,
                    where,
                    pc,
                    "no forward progress (cycle, dispatch and fetch frozen)",
                    stalled_checks=self._stalled_checks,
                )
        else:
            self._stalled_checks = 0
            self._last_progress = progress

    def _trip(self, sim, where, pc, reason, **extra) -> None:
        sim.stats.watchdog_trips += 1
        diagnostics = {
            "where": where,
            "pc": pc,
            "mode": sim.config.mode,
            "cycle": sim.cycle,
            "dpred_depth": getattr(sim, "_dpred_depth", 0),
            "last_retire_cycle": sim.last_retire_cycle,
            "dispatched": sim.seq,
            "executed_instructions": sim.stats.executed_instructions,
            "benchmark": sim.stats.benchmark,
        }
        diagnostics.update(extra)
        tracer = getattr(sim, "tracer", None)
        if tracer is not None:
            # The tracer's ring buffer holds the last events before the
            # hang — the flight recorder for postmortems
            # (docs/observability.md).
            diagnostics["recent_events"] = tracer.tail()
        raise SimulationHangError(f"watchdog: {reason}", diagnostics)
