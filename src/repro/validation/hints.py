"""Static validation of hint tables against their program.

The hint channel is untrusted input (it models compiler output embedded
in a binary — see :mod:`repro.isa.encoding`): a stale, truncated or
adversarial table must be caught *before* it drives the fetch engine
when it is statically detectable at all.  :func:`validate_hint_table`
returns the list of structural problems; :func:`check_hint_table` raises
:class:`~repro.errors.HintValidationError` when any exist.

These checks are intentionally structural only — a hint whose CFM point
is a real block start that the program simply never reaches is *not*
statically detectable; surviving those is the dynamic engine's job
(exit cases 5/6 of Table 1) and what :mod:`repro.validation.faults`
exercises.
"""

from __future__ import annotations

from typing import List

from repro.errors import HintValidationError
from repro.isa.instructions import Opcode


def validate_hint_table(program, hints) -> List[str]:
    """Structurally validate ``hints`` against a sealed ``program``.

    Returns a (possibly empty) list of human-readable issues.
    """
    issues: List[str] = []
    for branch_pc, hint in hints:
        prefix = f"hint @{branch_pc:#06x}"
        try:
            _, block, index = program.locate(branch_pc)
        except KeyError:
            issues.append(f"{prefix}: branch PC is not in the program")
            continue
        instr = block.instructions[index]
        if instr.opcode != Opcode.BR:
            issues.append(
                f"{prefix}: PC is a {instr.opcode.name}, "
                "not a conditional branch"
            )
        seen = set()
        for cfm_pc in hint.cfm_pcs:
            cfm_prefix = f"{prefix}: CFM @{cfm_pc:#06x}"
            if cfm_pc in seen:
                issues.append(f"{cfm_prefix} is listed more than once")
                continue
            seen.add(cfm_pc)
            if cfm_pc == branch_pc:
                issues.append(f"{cfm_prefix} is the diverge branch itself")
                continue
            if program.block_starting_at(cfm_pc) is None:
                issues.append(
                    f"{cfm_prefix} is not the first instruction of any "
                    "basic block"
                )
        threshold = hint.early_exit_threshold
        if threshold is not None and threshold <= 0:
            issues.append(
                f"{prefix}: early-exit threshold must be positive, "
                f"got {threshold}"
            )
    return issues


def check_hint_table(program, hints) -> None:
    """Raise :class:`HintValidationError` if the table has any issue."""
    issues = validate_hint_table(program, hints)
    if issues:
        raise HintValidationError(issues)
