"""Adversarial hint fault injection.

Merge hints are *predictions* shipped by a compiler (or, in follow-on
work, a dynamic predictor) — they can be stale, malformed or simply
wrong at runtime.  Table 1's six exit cases exist precisely so the
machine degrades gracefully when a CFM point is never reached.  This
module systematically corrupts hint tables and drives the full
simulator — oracle checker and watchdog armed — to prove that:

* no corruption class crashes or hangs the simulator;
* architectural results still match the functional trace (the oracle
  passes on every run);
* all six exit cases are reachable across the suite;
* IPC under corrupted hints stays within a bounded margin of the
  baseline processor (default: no more than ``DEFAULT_IPC_MARGIN``
  below baseline IPC — documented in docs/robustness.md).

The catalog (:data:`FAULT_CLASSES`) covers: CFM PCs moved off-path
(mid-block), CFM points on never-executed blocks, CFM PCs outside the
program, hints swapped between branches, hints built from a mismatched
seed's profile, duplicated CFM entries, self-referential CFM points,
loop-flag flips, and truncated serialized tables (which must be caught
at load time by :class:`~repro.errors.HintValidationError`).

The ``mpp-*`` classes corrupt the *dynamic* merge-point predictor
(mode ``"mpp"``) instead of a hint table — a hopelessly undersized
tagged table, a learner that promotes garbage candidates, and a
confidence loop that can never decay — via machine-config overrides.
There is no static artifact to validate, so these are detected purely
behaviourally.

Heavy imports (harness, processors) happen inside functions so this
module can be imported from anywhere without cycles.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HintValidationError, ReproError
from repro.isa.encoding import DivergeHint, HintTable
from repro.validation.hints import validate_hint_table

#: Documented robustness bound: IPC under any corrupted hint table must
#: stay above ``(1 - margin) * baseline_ipc``.  Corrupted hints can cost
#: dynamic-predication overhead (episodes that never merge, predicated
#: wrong-path work) but never more than this fraction of baseline
#: throughput.
DEFAULT_IPC_MARGIN = 0.5

#: Benchmarks the acceptance suite runs by default: complex-diverge-heavy
#: workloads where hints actually steer the machine.
DEFAULT_BENCHMARKS = ("parser", "twolf", "vpr")


class CorruptedTable:
    """One corrupted hint table plus how (and whether) it was detected."""

    __slots__ = ("table", "static_issues", "loader_error", "config_overrides")

    def __init__(
        self,
        table: HintTable,
        static_issues: List[str],
        loader_error: Optional[str] = None,
        config_overrides: Optional[Dict] = None,
    ) -> None:
        self.table = table
        self.static_issues = static_issues
        self.loader_error = loader_error
        self.config_overrides = dict(config_overrides or {})


@dataclasses.dataclass(frozen=True)
class FaultClass:
    """One corruption recipe in the catalog."""

    name: str
    description: str
    corrupt: Callable[["object", HintTable, random.Random], CorruptedTable]
    #: True when the static validator (or the loader) is guaranteed to
    #: flag this class; None when detection is environment-dependent.
    statically_detectable: Optional[bool] = None


# ---------------------------------------------------------------------------
# Corruption recipes.  Each takes (context, clean_table, rng) and returns
# a CorruptedTable; ``context`` is a harness BenchmarkContext.
# ---------------------------------------------------------------------------


def _copy_hint(hint: DivergeHint, **overrides) -> DivergeHint:
    fields = dict(
        cfm_pcs=hint.cfm_pcs,
        early_exit_threshold=hint.early_exit_threshold,
        is_loop=hint.is_loop,
    )
    fields.update(overrides)
    return DivergeHint(**fields)


def _rebuild(entries: Sequence[Tuple[int, DivergeHint]]) -> HintTable:
    table = HintTable()
    for pc, hint in entries:
        table.add(pc, hint)
    return table


def _validated(context, table, overrides=None) -> CorruptedTable:
    return CorruptedTable(
        table,
        validate_hint_table(context.program, table),
        config_overrides=overrides,
    )


def _cfm_midblock(context, clean, rng) -> CorruptedTable:
    """Move every CFM PC one instruction into its block: a PC that exists
    but is never a fetch-block start, so the CAM can never match."""
    from repro.isa.instructions import INSTRUCTION_BYTES

    entries = [
        (pc, _copy_hint(
            hint,
            cfm_pcs=tuple(c + INSTRUCTION_BYTES for c in hint.cfm_pcs),
        ))
        for pc, hint in clean
    ]
    return _validated(context, _rebuild(entries))


def _cfm_cold_block(context, clean, rng) -> CorruptedTable:
    """Point every CFM at a real block start the trace never executes —
    statically plausible, dynamically unreachable (exit cases 5/6)."""
    program = context.program
    executed = {record.block.first_pc for record in context.trace.records}
    cold = sorted(
        block.first_pc
        for cfg in program.functions()
        for block in cfg
        if block.first_pc not in executed and block.instructions
    )
    if not cold:
        # Every block is warm: fall back to a PC past the program's end,
        # which equally never matches a fetch-block start.
        last = max(
            instr.pc
            for cfg in program.functions()
            for block in cfg
            for instr in block.instructions
        )
        cold = [last + 0x1000]
    entries = [
        (pc, _copy_hint(
            hint,
            cfm_pcs=tuple(
                cold[(i + j) % len(cold)] for j in range(len(hint.cfm_pcs))
            ),
        ))
        for i, (pc, hint) in enumerate(clean)
    ]
    return _validated(context, _rebuild(entries))


def _cfm_nonexistent(context, clean, rng) -> CorruptedTable:
    """CFM PCs that are not in the program at all."""
    entries = [
        (pc, _copy_hint(hint, cfm_pcs=(0xDEAD0000 + 8 * i,)))
        for i, (pc, hint) in enumerate(clean)
    ]
    return _validated(context, _rebuild(entries))


def _swapped_targets(context, clean, rng) -> CorruptedTable:
    """Rotate the hints across branch PCs: each diverge branch gets the
    CFM points that belong to a *different* branch — real block starts,
    wrong region."""
    items = list(clean)
    if len(items) < 2:
        return _cfm_cold_block(context, clean, rng)
    pcs = [pc for pc, _ in items]
    hints = [hint for _, hint in items]
    rotated = hints[1:] + hints[:1]
    return _validated(context, _rebuild(list(zip(pcs, rotated))))


def _wrong_seed(context, clean, rng) -> CorruptedTable:
    """Hints built from a different seed's profile of the same benchmark
    (CFG shapes are identical across seeds, so PCs align but frequencies
    and CFM choices reflect the wrong run)."""
    from repro.harness.experiment import BenchmarkContext

    other = BenchmarkContext(
        context.name,
        iterations=context.iterations,
        seed=context.seed + 1,
        thresholds=context.thresholds,
    )
    return _validated(context, other.diverge_hints)


def _duplicate_entries(context, clean, rng) -> CorruptedTable:
    """Duplicate every CFM PC inside its own list and cross-pollinate
    another branch's CFM to overflow the CAM with junk."""
    items = list(clean)
    entries = []
    for i, (pc, hint) in enumerate(items):
        extra = items[(i + 1) % len(items)][1].cfm_pcs[:1] if len(items) > 1 else ()
        doubled = tuple(
            c for c in hint.cfm_pcs for _ in range(2)
        ) + tuple(extra)
        entries.append((pc, _copy_hint(hint, cfm_pcs=doubled)))
    return _validated(context, _rebuild(entries))


def _self_cfm(context, clean, rng) -> CorruptedTable:
    """Each hint's CFM is the diverge branch itself."""
    entries = [
        (pc, _copy_hint(hint, cfm_pcs=(pc,))) for pc, hint in clean
    ]
    return _validated(context, _rebuild(entries))


def _loop_flag_flip(context, clean, rng) -> CorruptedTable:
    """Mark every non-loop hint as a diverge *loop* branch and enable
    loop predication, driving the loop engine over non-loop CFGs."""
    entries = [
        (pc, _copy_hint(hint, is_loop=True)) for pc, hint in clean
    ]
    return _validated(
        context, _rebuild(entries), overrides={"loop_predication": True}
    )


def _truncated_table(context, clean, rng) -> CorruptedTable:
    """Serialize the clean table and cut it short: the loader must raise
    a structured HintValidationError, and the machine then runs with the
    empty table a real loader would fall back to."""
    data = clean.to_bytes()
    cut = data[: max(len(data) - 7, 1)] if len(data) > 8 else data[:4]
    loader_error = None
    table = HintTable()
    try:
        table = HintTable.from_bytes(cut)
    except HintValidationError as exc:
        loader_error = str(exc)
    return CorruptedTable(
        table,
        validate_hint_table(context.program, table),
        loader_error=loader_error,
    )


def _mpp_overrides(**extra) -> Dict:
    """Config overrides for a dynamic-table corruption run: mode "mpp"
    (the suite runner then passes no hint table) with aggressive learner
    thresholds so the predictor actually trains — and mispredicts —
    within a short fault-suite trace."""
    overrides = {
        "mode": "mpp",
        "merge_min_instances": 4,
        "merge_window_instructions": 64,
    }
    overrides.update(extra)
    return overrides


def _mpp_tiny_table(context, clean, rng) -> CorruptedTable:
    """A one-entry tagged table: every second branch evicts the last,
    so learning state thrashes and most lookups find a cold entry."""
    return CorruptedTable(
        HintTable(), [], config_overrides=_mpp_overrides(
            merge_table_entries=1,
        ),
    )


def _mpp_overeager_learner(context, clean, rng) -> CorruptedTable:
    """Promotion thresholds collapsed (one instance per side, 5%
    agreement): the predictor ships merge points from noise, driving the
    mispredicted-merge recovery path (flush + retrain)."""
    return CorruptedTable(
        HintTable(), [], config_overrides=_mpp_overrides(
            merge_min_instances=1,
            merge_min_fraction=0.05,
        ),
    )


def _mpp_stuck_confidence(context, clean, rng) -> CorruptedTable:
    """Miss penalty zeroed on top of the overeager learner: confidence
    never decays, so a wrong learned point is never retrained and keeps
    opening doomed episodes for the rest of the run."""
    return CorruptedTable(
        HintTable(), [], config_overrides=_mpp_overrides(
            merge_min_instances=1,
            merge_min_fraction=0.05,
            merge_miss_penalty=0,
        ),
    )


FAULT_CLASSES: Tuple[FaultClass, ...] = (
    FaultClass(
        "cfm-midblock",
        "CFM PCs moved off-path into the middle of their blocks",
        _cfm_midblock,
        statically_detectable=True,
    ),
    FaultClass(
        "cfm-cold-block",
        "CFM points on blocks the trace never executes",
        _cfm_cold_block,
        statically_detectable=None,
    ),
    FaultClass(
        "cfm-nonexistent",
        "CFM PCs outside the program",
        _cfm_nonexistent,
        statically_detectable=True,
    ),
    FaultClass(
        "swapped-targets",
        "hints rotated between diverge branches (wrong region's CFMs)",
        _swapped_targets,
        statically_detectable=False,
    ),
    FaultClass(
        "wrong-seed",
        "hints from a mismatched seed's profile",
        _wrong_seed,
        statically_detectable=False,
    ),
    FaultClass(
        "duplicate-entries",
        "duplicated / cross-pollinated CFM entries overflowing the CAM",
        _duplicate_entries,
        statically_detectable=True,
    ),
    FaultClass(
        "self-cfm",
        "CFM point equal to the diverge branch itself",
        _self_cfm,
        statically_detectable=True,
    ),
    FaultClass(
        "loop-flag-flip",
        "non-loop hints marked is_loop with loop predication enabled",
        _loop_flag_flip,
        statically_detectable=False,
    ),
    FaultClass(
        "truncated-table",
        "serialized hint table truncated mid-entry",
        _truncated_table,
        statically_detectable=True,
    ),
    FaultClass(
        "mpp-tiny-table",
        "merge-point predictor squeezed to one thrashing table entry",
        _mpp_tiny_table,
        statically_detectable=False,
    ),
    FaultClass(
        "mpp-overeager-learner",
        "merge-point promotion thresholds collapsed (noise becomes CFMs)",
        _mpp_overeager_learner,
        statically_detectable=False,
    ),
    FaultClass(
        "mpp-stuck-confidence",
        "merge miss penalty zeroed: wrong learned points never retrain",
        _mpp_stuck_confidence,
        statically_detectable=False,
    ),
)

FAULT_NAMES: Tuple[str, ...] = tuple(f.name for f in FAULT_CLASSES)


def fault_class(name: str) -> FaultClass:
    for fault in FAULT_CLASSES:
        if fault.name == name:
            return fault
    raise ReproError(
        f"unknown fault class {name!r}; choose from: {', '.join(FAULT_NAMES)}"
    )


# ---------------------------------------------------------------------------
# Suite runner
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FaultRunResult:
    """Outcome of one (benchmark, fault-class) simulation."""

    benchmark: str
    fault: str
    ipc: float = 0.0
    baseline_ipc: float = 0.0
    clean_ipc: float = 0.0
    exit_cases: Dict[int, int] = dataclasses.field(default_factory=dict)
    dpred_entries: int = 0
    oracle_checks: int = 0
    watchdog_trips: int = 0
    static_issues: int = 0
    loader_error: Optional[str] = None
    #: repr of an exception that escaped the simulator (robustness bug).
    error: Optional[str] = None
    hang: bool = False
    oracle_mismatch: bool = False

    @property
    def crashed(self) -> bool:
        return self.error is not None

    @property
    def detected(self) -> bool:
        """Did anything — static validator, loader, or behaviour — reveal
        that the hints were corrupted?"""
        if self.static_issues or self.loader_error:
            return True
        if self.clean_ipc:
            if abs(self.ipc - self.clean_ipc) / self.clean_ipc > 1e-3:
                return True
        return False

    @property
    def ipc_ratio_vs_baseline(self) -> float:
        if not self.baseline_ipc:
            return 1.0
        return self.ipc / self.baseline_ipc


class FaultReport:
    """Aggregated fault-suite results with the acceptance checks."""

    def __init__(
        self,
        ipc_margin: float = DEFAULT_IPC_MARGIN,
        require_all_exit_cases: bool = True,
    ) -> None:
        self.ipc_margin = ipc_margin
        #: Only the full catalog is guaranteed to reach every exit case;
        #: a subset run must not fail the contract on missing coverage.
        self.require_all_exit_cases = require_all_exit_cases
        self.runs: List[FaultRunResult] = []
        #: Exit-case counts aggregated over every run (clean + corrupted).
        self.exit_case_totals: Dict[int, int] = {c: 0 for c in range(1, 7)}

    def add(self, result: FaultRunResult) -> None:
        self.runs.append(result)
        for case, count in result.exit_cases.items():
            self.exit_case_totals[case] = (
                self.exit_case_totals.get(case, 0) + count
            )

    # -- acceptance checks ---------------------------------------------

    @property
    def crashes(self) -> List[FaultRunResult]:
        return [r for r in self.runs if r.crashed]

    @property
    def hangs(self) -> List[FaultRunResult]:
        return [r for r in self.runs if r.hang]

    @property
    def oracle_mismatches(self) -> List[FaultRunResult]:
        return [r for r in self.runs if r.oracle_mismatch]

    @property
    def ipc_violations(self) -> List[FaultRunResult]:
        floor = 1.0 - self.ipc_margin
        return [
            r
            for r in self.runs
            if r.fault != "clean"
            and not r.crashed
            and r.baseline_ipc
            and r.ipc_ratio_vs_baseline < floor
        ]

    @property
    def all_exit_cases_observed(self) -> bool:
        return all(self.exit_case_totals.get(c, 0) > 0 for c in range(1, 7))

    @property
    def detections(self) -> List[FaultRunResult]:
        return [r for r in self.runs if r.fault != "clean" and r.detected]

    @property
    def injected_runs(self) -> List[FaultRunResult]:
        return [r for r in self.runs if r.fault != "clean"]

    @property
    def ok(self) -> bool:
        """The robustness contract held on every run."""
        return (
            not self.crashes
            and not self.hangs
            and not self.oracle_mismatches
            and not self.ipc_violations
            and (self.all_exit_cases_observed
                 or not self.require_all_exit_cases)
        )

    def format(self) -> str:
        lines = [
            "fault-injection report "
            f"({len(self.injected_runs)} corrupted runs, "
            f"IPC floor = {1.0 - self.ipc_margin:.2f} x baseline)",
            f"{'benchmark':10s} {'fault':18s} {'IPC':>7s} {'vs base':>8s} "
            f"{'static':>6s} {'dpred':>6s} {'detected':>8s}  status",
        ]
        for r in self.runs:
            if r.crashed:
                status = f"CRASH {r.error}"
            elif r.hang:
                status = "HANG"
            elif r.oracle_mismatch:
                status = "ORACLE-MISMATCH"
            else:
                status = "ok"
            lines.append(
                f"{r.benchmark:10s} {r.fault:18s} {r.ipc:7.3f} "
                f"{r.ipc_ratio_vs_baseline:7.2f}x {r.static_issues:6d} "
                f"{r.dpred_entries:6d} "
                f"{str(r.detected):>8s}  {status}"
            )
        cases = " ".join(
            f"c{c}={n}" for c, n in sorted(self.exit_case_totals.items())
        )
        lines.append(f"exit cases observed across suite: {cases}")
        lines.append(
            "robustness: "
            + ("OK" if self.ok else "VIOLATED")
            + f" (crashes={len(self.crashes)} hangs={len(self.hangs)} "
            f"oracle={len(self.oracle_mismatches)} "
            f"ipc_violations={len(self.ipc_violations)} "
            f"all_exit_cases={self.all_exit_cases_observed})"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "ipc_margin": self.ipc_margin,
            "exit_case_totals": dict(self.exit_case_totals),
            "runs": [dataclasses.asdict(r) for r in self.runs],
        }


def _paranoid_dmp_config(overrides: Optional[Dict] = None):
    from repro.uarch.config import MachineConfig

    config = MachineConfig.dmp(enhanced=True).replace(
        oracle_checks=True, watchdog=True
    )
    if overrides:
        config = config.replace(**overrides)
    return config


def run_fault_suite(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    iterations: Optional[int] = 400,
    seed: int = 0,
    fault_names: Optional[Sequence[str]] = None,
    ipc_margin: float = DEFAULT_IPC_MARGIN,
    rng_seed: int = 0,
) -> FaultReport:
    """Run every requested corruption class over every benchmark.

    Each benchmark also runs once with clean hints (labelled ``clean``)
    under the same hardened configuration — the reference for behavioural
    fault detection and part of the exit-case coverage aggregate.
    """
    from repro.core.processors import simulate
    from repro.errors import (
        OracleMismatchError,
        SimulationHangError,
    )
    from repro.harness.experiment import BenchmarkContext
    from repro.uarch.config import MachineConfig

    faults = [fault_class(name) for name in (fault_names or FAULT_NAMES)]
    report = FaultReport(
        ipc_margin=ipc_margin,
        require_all_exit_cases=set(f.name for f in faults) == set(FAULT_NAMES),
    )
    rng = random.Random(rng_seed)

    for name in benchmarks:
        context = BenchmarkContext(name, iterations=iterations, seed=seed)
        warm = context.workload.memory.warm_words()
        baseline_config = MachineConfig.baseline().replace(
            oracle_checks=True, watchdog=True
        )
        baseline = simulate(
            context.program,
            context.trace,
            baseline_config,
            benchmark=name,
            warm_words=warm,
        )
        clean_table = context.diverge_hints
        clean_stats = simulate(
            context.program,
            context.trace,
            _paranoid_dmp_config(),
            hints=clean_table,
            benchmark=name,
            warm_words=warm,
        )
        clean_result = FaultRunResult(
            benchmark=name,
            fault="clean",
            ipc=clean_stats.ipc,
            baseline_ipc=baseline.ipc,
            clean_ipc=clean_stats.ipc,
            exit_cases=dict(clean_stats.exit_cases),
            dpred_entries=clean_stats.dpred_entries,
            oracle_checks=clean_stats.oracle_checks,
            watchdog_trips=clean_stats.watchdog_trips,
        )
        report.add(clean_result)

        for fault in faults:
            corrupted = fault.corrupt(context, clean_table, rng)
            result = FaultRunResult(
                benchmark=name,
                fault=fault.name,
                baseline_ipc=baseline.ipc,
                clean_ipc=clean_stats.ipc,
                static_issues=len(corrupted.static_issues),
                loader_error=corrupted.loader_error,
            )
            config = _paranoid_dmp_config(corrupted.config_overrides)
            try:
                stats = simulate(
                    context.program,
                    context.trace,
                    config,
                    # mpp learns its own merge points — simulate()
                    # rejects a hint table in that mode by design.
                    hints=None if config.mode == "mpp" else corrupted.table,
                    benchmark=name,
                    warm_words=warm,
                )
            except SimulationHangError as exc:
                result.hang = True
                result.error = f"SimulationHangError: {exc}"
            except OracleMismatchError as exc:
                result.oracle_mismatch = True
                result.error = f"OracleMismatchError: {exc}"
            except Exception as exc:  # noqa: BLE001 - robustness harness
                result.error = f"{type(exc).__name__}: {exc}"
            else:
                result.ipc = stats.ipc
                result.exit_cases = dict(stats.exit_cases)
                result.dpred_entries = stats.dpred_entries
                result.oracle_checks = stats.oracle_checks
                result.watchdog_trips = stats.watchdog_trips
            report.add(result)
    return report
