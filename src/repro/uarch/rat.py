"""Register alias table with checkpoints and M (modified) bits.

Implements the renaming state machine of Section 2.4 and Figure 5:

* physical registers are monotonically increasing tags allocated on every
  register write;
* a *checkpoint* captures the full arch→phys mapping (plus the M bits),
  exactly like the RAT checkpoints real processors take at branches;
* the per-entry **M bit** is set whenever an entry is renamed during
  dynamic-predication mode; select-uop insertion ORs the M bits of the two
  path-end RATs and emits one select-uop per set bit whose mappings differ.

The companion *scoreboard* (phys tag → completion cycle) lives in the
timing model; this class is purely the mapping structure so it can be unit
tested against the paper's REGMAP1–REGMAP4 walk-through.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.registers import NUM_ARCH_REGS


class RatCheckpoint:
    """An immutable snapshot of the RAT (mapping + M bits)."""

    __slots__ = ("mapping", "modified")

    def __init__(self, mapping: Tuple[int, ...], modified: Tuple[bool, ...]):
        self.mapping = mapping
        self.modified = modified

    def phys(self, arch: int) -> int:
        return self.mapping[arch]


class SelectRequest:
    """One required select-uop: merge two phys regs into ``arch``."""

    __slots__ = ("arch", "pred_tag", "alt_tag")

    def __init__(self, arch: int, pred_tag: int, alt_tag: int) -> None:
        self.arch = arch
        self.pred_tag = pred_tag
        self.alt_tag = alt_tag

    def __repr__(self) -> str:
        return f"<select r{self.arch}: t{self.pred_tag}/t{self.alt_tag}>"


class RegisterAliasTable:
    def __init__(self, num_regs: int = NUM_ARCH_REGS) -> None:
        self.num_regs = num_regs
        self._next_tag = num_regs  # tags 0..n-1 are the initial mappings
        self._mapping: List[int] = list(range(num_regs))
        self._modified: List[bool] = [False] * num_regs

    # -- renaming ------------------------------------------------------------

    def lookup(self, arch: int) -> int:
        """Current physical register for an architectural register."""
        return self._mapping[arch]

    def rename_dest(self, arch: int) -> int:
        """Allocate a fresh physical register for a write to ``arch`` and
        set its M bit.  Returns the new tag."""
        tag = self._next_tag
        self._next_tag += 1
        self._mapping[arch] = tag
        self._modified[arch] = True
        return tag

    def allocate_tag(self) -> int:
        """Allocate a tag without binding it (select-uop destinations are
        bound by :meth:`apply_selects`)."""
        tag = self._next_tag
        self._next_tag += 1
        return tag

    # -- M bits ----------------------------------------------------------------

    def clear_modified(self) -> None:
        """Clear all M bits (done on entering dynamic-predication mode)."""
        self._modified = [False] * self.num_regs

    def modified_registers(self) -> Tuple[int, ...]:
        return tuple(i for i, m in enumerate(self._modified) if m)

    # -- checkpoints ------------------------------------------------------------

    def checkpoint(self) -> RatCheckpoint:
        return RatCheckpoint(tuple(self._mapping), tuple(self._modified))

    def restore(self, cp: RatCheckpoint) -> None:
        self._mapping = list(cp.mapping)
        self._modified = list(cp.modified)

    # -- select-uop insertion ------------------------------------------------

    def compute_selects(self, predicted_end: RatCheckpoint) -> List[SelectRequest]:
        """Select-uops needed to merge the predicted path's final RAT
        (``predicted_end``, the paper's CP2/REGMAP2) with the *active* RAT
        (end of the alternate path, REGMAP3).

        Per Section 2.4: OR the M bits of the two tables; every set bit
        whose physical mappings differ yields one select-uop.
        """
        selects = []
        modified = self._modified
        pred_mapping = predicted_end.mapping
        pred_modified = predicted_end.modified
        for arch, alt_tag in enumerate(self._mapping):
            if modified[arch] or pred_modified[arch]:
                pred_tag = pred_mapping[arch]
                if pred_tag != alt_tag:
                    selects.append(SelectRequest(arch, pred_tag, alt_tag))
        return selects

    def apply_selects(self, selects: List[SelectRequest]) -> Dict[int, int]:
        """Allocate and install destination tags for select-uops, producing
        the merged RAT (REGMAP4).  Returns ``{arch: new_tag}``.  Also
        clears the M bits, as the paper does after creating the uops."""
        installed = {}
        for request in selects:
            tag = self.allocate_tag()
            self._mapping[request.arch] = tag
            installed[request.arch] = tag
        self.clear_modified()
        return installed
