"""The uops the diverge-merge front end inserts (Section 2.2, Figure 4).

* ``enter.pred.path`` — inserted when dynamic-predication mode begins; its
  "execution" defines the predicate register p1 from the diverge branch's
  condition and predicted direction.
* ``enter.alternate.path`` — inserted when fetch switches to the alternate
  path; defines p2 = !p1.
* ``exit.pred`` — inserted when the alternate path reaches the CFM point;
  triggers select-uop insertion.
* ``select`` — the phi-like uop merging the two physical registers an
  architectural register maps to at the end of each path (one per M-bit
  difference between the two register alias tables).

DHP's conditional-move uops are represented by the same ``select`` kind
(the paper notes both mechanisms insert "cmov or select uops").
"""

from __future__ import annotations

import enum
from typing import Optional


class UopKind(enum.Enum):
    ENTER_PRED_PATH = "enter.pred.path"
    ENTER_ALT_PATH = "enter.alternate.path"
    EXIT_PRED = "exit.pred"
    SELECT = "select-uop"


class Uop:
    """A dynamically inserted uop (never part of the static program)."""

    __slots__ = ("kind", "dest_arch", "pred_tag", "alt_tag")

    def __init__(
        self,
        kind: UopKind,
        dest_arch: Optional[int] = None,
        pred_tag: Optional[int] = None,
        alt_tag: Optional[int] = None,
    ) -> None:
        if kind == UopKind.SELECT and dest_arch is None:
            raise ValueError("select-uop needs a destination register")
        self.kind = kind
        self.dest_arch = dest_arch
        self.pred_tag = pred_tag
        self.alt_tag = alt_tag

    def __repr__(self) -> str:
        if self.kind == UopKind.SELECT:
            return (
                f"<select r{self.dest_arch} = p? t{self.pred_tag} "
                f": t{self.alt_tag}>"
            )
        return f"<{self.kind.value}>"
