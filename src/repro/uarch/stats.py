"""Simulation statistics: every counter the paper's figures need."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.modes import ExitCase

#: The valid Table 1 exit-case codes, derived from the enum — the stats
#: layer must never hardcode its own copy of the range.
_VALID_EXIT_CASES = frozenset(int(case) for case in ExitCase)


@dataclasses.dataclass
class SimStats:
    """Counters collected by one :class:`~repro.uarch.timing.TimingSimulator`
    run.  Figure/table mapping:

    * Fig 1 — ``fetched_wrong_cd`` / ``fetched_wrong_ci`` vs ``fetched_total``
    * Table 3 — ``ipc``, ``retired_instructions``, ``retired_branches``,
      ``mispredictions``
    * Figs 7/9/13 — ``ipc``
    * Figs 8/10 — ``exit_cases``
    * Fig 11 — ``pipeline_flushes``
    * Fig 12 — ``fetched_total`` and ``executed_instructions`` +
      ``extra_uops`` + ``select_uops``
    """

    benchmark: str = ""
    config_description: str = ""

    cycles: int = 0
    retired_instructions: int = 0
    retired_branches: int = 0
    mispredictions: int = 0
    #: Mispredictions that actually flushed the pipeline (DMP converts some
    #: into predicated execution).
    pipeline_flushes: int = 0

    # Fetch accounting
    fetched_correct: int = 0
    #: Wrong-path instructions that are control-dependent on the
    #: mispredicted branch (fetched before its reconvergence point).
    fetched_wrong_cd: int = 0
    #: Wrong-path instructions past the reconvergence point
    #: (control-independent work the flush throws away).
    fetched_wrong_ci: int = 0

    # Execution accounting
    executed_instructions: int = 0
    predicated_false_instructions: int = 0
    extra_uops: int = 0       # enter.pred.path / enter.alternate.path / exit.pred
    select_uops: int = 0

    # Dynamic predication accounting
    dpred_entries: int = 0
    exit_cases: Dict[int, int] = dataclasses.field(
        default_factory=lambda: {int(case): 0 for case in ExitCase}
    )
    early_exits: int = 0
    dpred_restarts: int = 0   # multiple-diverge-branch re-entries
    #: Inner episodes under the "nested" multiple-diverge policy.
    nested_episodes: int = 0
    #: Loop-exit mispredictions absorbed by loop predication (the
    #: iteration became predicated-FALSE work instead of a flush).
    loop_iteration_saves: int = 0

    # Dynamic merge-point prediction (mode "mpp" — hint-free DMP;
    # docs/merge_point_prediction.md)
    #: Episodes opened with a *learned* CFM point.
    mpp_predictions: int = 0
    #: Episodes whose path reached the learned merge point (Table 1
    #: cases 1/2) / provably never could (EXHAUSTED or LIMIT paths).
    #: Resolution-truncated episodes are neutral and count in neither.
    mpp_merge_hits: int = 0
    mpp_merge_misses: int = 0
    #: Merge misses that coincided with a pipeline flush — the
    #: mispredicted-merge recovery path (flush + table decay).
    mpp_recoveries: int = 0
    #: Confidence collapses that cleared a predictor entry for
    #: re-learning.
    mpp_retrains: int = 0

    # Dual-path accounting
    dualpath_forks: int = 0

    # Store buffer / memory
    load_wait_on_predicate: int = 0

    # Robustness (docs/robustness.md)
    #: Oracle cross-checks performed (0 unless ``config.oracle_checks``).
    oracle_checks: int = 0
    #: Watchdog trips; a trip raises SimulationHangError, so a surviving
    #: stats object should always show 0 — the counter exists so the trip
    #: is visible on the stats carried by the exception's diagnostics.
    watchdog_trips: int = 0

    # -- derived ----------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired architectural instructions per cycle (predicated-FALSE
        instructions and inserted uops do not count, per Section 3.1)."""
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    @property
    def fetched_total(self) -> int:
        return self.fetched_correct + self.fetched_wrong_cd + self.fetched_wrong_ci

    @property
    def fetched_wrong(self) -> int:
        return self.fetched_wrong_cd + self.fetched_wrong_ci

    @property
    def misprediction_rate(self) -> float:
        if not self.retired_branches:
            return 0.0
        return self.mispredictions / self.retired_branches

    @property
    def mpki(self) -> float:
        """Mispredictions per thousand retired instructions."""
        if not self.retired_instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.retired_instructions

    @property
    def merge_accuracy(self) -> float:
        """Fraction of outcome-resolving mpp episodes whose learned merge
        point was reached (0.0 when no episode resolved an outcome)."""
        resolved = self.mpp_merge_hits + self.mpp_merge_misses
        return self.mpp_merge_hits / resolved if resolved else 0.0

    @property
    def total_executed_with_uops(self) -> int:
        return self.executed_instructions + self.extra_uops + self.select_uops

    def record_exit_case(self, case: int) -> None:
        if case not in _VALID_EXIT_CASES:
            raise ValueError(
                f"exit case must be an ExitCase value "
                f"({min(_VALID_EXIT_CASES)}..{max(_VALID_EXIT_CASES)}), "
                f"got {case}"
            )
        self.exit_cases[case] += 1

    def summary(self) -> str:
        lines = [
            f"benchmark={self.benchmark} [{self.config_description}]",
            f"  cycles={self.cycles}  retired={self.retired_instructions}  "
            f"IPC={self.ipc:.3f}",
            f"  branches={self.retired_branches}  "
            f"mispred={self.mispredictions} ({self.misprediction_rate:.2%})  "
            f"flushes={self.pipeline_flushes}",
            f"  fetched: correct={self.fetched_correct}  "
            f"wrongCD={self.fetched_wrong_cd}  wrongCI={self.fetched_wrong_ci}",
        ]
        if self.dpred_entries:
            cases = " ".join(
                f"c{c}={n}" for c, n in sorted(self.exit_cases.items())
            )
            lines.append(
                f"  dpred: entries={self.dpred_entries}  {cases}  "
                f"select={self.select_uops}  extra={self.extra_uops}"
            )
        if self.mpp_predictions:
            lines.append(
                f"  mpp: predictions={self.mpp_predictions}  "
                f"accuracy={self.merge_accuracy:.2%}  "
                f"recoveries={self.mpp_recoveries}  "
                f"retrains={self.mpp_retrains}"
            )
        return "\n".join(lines)
