"""Microarchitecture substrate: the out-of-order machine model.

This package provides everything *around* the diverge-merge mechanism: the
machine configuration mirroring Table 2 (:mod:`~repro.uarch.config`), the
extra uops DMP inserts (:mod:`~repro.uarch.uops`), the register alias table
with checkpoints and M bits (:mod:`~repro.uarch.rat`), the predicate-aware
store buffer (:mod:`~repro.uarch.storebuffer`), pre-decoded block
execution plans for the fast engine (:mod:`~repro.uarch.plan`),
fetch-stream helpers
(:mod:`~repro.uarch.frontend`), the statistics block
(:mod:`~repro.uarch.stats`) and the one-pass trace-driven timing model
(:mod:`~repro.uarch.timing`) that the DMP/DHP/dual-path policies plug into.
"""

from repro.uarch.config import MachineConfig
from repro.uarch.plan import BlockPlan, build_block_plan
from repro.uarch.stats import SimStats
from repro.uarch.uops import UopKind
from repro.uarch.rat import RegisterAliasTable
from repro.uarch.storebuffer import StoreBuffer, ForwardDecision
from repro.uarch.timing import TimingSimulator

__all__ = [
    "MachineConfig",
    "BlockPlan",
    "build_block_plan",
    "SimStats",
    "UopKind",
    "RegisterAliasTable",
    "StoreBuffer",
    "ForwardDecision",
    "TimingSimulator",
]
