"""Fetch-stream helpers for the timing model.

Two kinds of instruction streams feed the front end:

* :class:`TraceCursor` — the architecturally-correct path, replayed from
  the functional trace (block-granular, with real branch outcomes and
  memory addresses);
* :class:`StaticWalker` — any *wrong* path: fetch follows the branch
  predictor through the static CFG exactly as a real front end does after
  a misprediction or down the false side of a dynamically predicated
  branch.  Wrong-path register/memory *values* are unknowable in a
  trace-driven model, but no statistic the paper reports consumes them —
  only instruction identity, block shape and fetch timing matter.

The walker keeps a shadow return-address stack so wrong paths can flow
through calls and returns; it reports itself ``exhausted`` when it runs
off the program (HALT, or RET with an empty shadow stack).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cfg.graph import BasicBlock
from repro.isa.instructions import Opcode
from repro.program.program import Program
from repro.program.trace import Trace


class TraceCursor:
    """A movable position in the functional trace."""

    __slots__ = ("trace", "index")

    def __init__(self, trace: Trace, index: int = 0) -> None:
        self.trace = trace
        self.index = index

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.trace.records)

    @property
    def record(self):
        return self.trace.records[self.index]

    def advance(self) -> None:
        self.index += 1

    def save(self) -> int:
        return self.index

    def restore(self, position: int) -> None:
        self.index = position

    def peek_block(self) -> Optional[BasicBlock]:
        if self.exhausted:
            return None
        return self.trace.records[self.index].block


class StaticWalker:
    """Predictor-guided walk of the static program from a given block.

    The caller fetches ``walker.block``, then calls :meth:`step` with the
    predicted direction for the block's terminating conditional branch (or
    ``None`` when the block does not end in one).  ``predict_needed``
    tells the caller whether a direction is required.
    """

    def __init__(
        self,
        program: Program,
        function: str,
        block: BasicBlock,
        call_stack: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        self.program = program
        self.function = function
        self.block: Optional[BasicBlock] = block
        self._call_stack: List[Tuple[str, str]] = list(call_stack or [])

    @property
    def exhausted(self) -> bool:
        return self.block is None

    @property
    def predict_needed(self) -> bool:
        return self.block is not None and self.block.ends_in_branch

    def step(self, predicted_taken: Optional[bool] = None) -> None:
        """Move to the next block given the predicted branch direction."""
        if self.block is None:
            raise RuntimeError("walker is exhausted")
        block = self.block
        cfg = self.program.function(self.function)
        term = block.terminator
        if term is None:
            if block.ends_in_halt or block.fallthrough is None:
                self.block = None
            else:
                self.block = cfg.block(block.fallthrough)
            return
        op = term.opcode
        if op == Opcode.BR:
            if predicted_taken is None:
                raise ValueError("conditional branch needs a direction")
            if predicted_taken:
                self.block = cfg.block(term.target)
            elif block.fallthrough is not None:
                self.block = cfg.block(block.fallthrough)
            else:
                self.block = None
            return
        if op == Opcode.JMP:
            self.block = cfg.block(term.target)
            return
        if op == Opcode.CALL:
            if block.fallthrough is not None:
                self._call_stack.append((self.function, block.fallthrough))
            self.function = term.target
            self.block = self.program.function(term.target).entry
            return
        if op == Opcode.RET:
            if not self._call_stack:
                self.block = None  # walked off the program
                return
            self.function, return_block = self._call_stack.pop()
            self.block = self.program.function(self.function).block(
                return_block
            )
            return
        raise RuntimeError(f"unexpected terminator {term!r}")
