"""Machine configuration, mirroring Table 2 of the paper.

The defaults reproduce the baseline processor: 8-wide fetch ending at the
first predicted-taken branch and at most 3 conditional branches per cycle,
a 30-stage pipeline (minimum misprediction penalty), a 512-entry reorder
buffer, perceptron direction prediction, a JRS confidence estimator, and
the Table 2 cache hierarchy.  ``mode`` selects the front-end policy under
evaluation (baseline / DMP / DHP / dual-path); the three ``enhanced-*``
flags correspond to the cumulative enhancements of Figure 9.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

#: Valid front-end policies.  ``"mpp"`` is hint-free DMP: the same
#: dynamic-predication engine, with the CFM points learned at run time
#: by the dynamic merge-point predictor instead of supplied by the
#: compiler (docs/merge_point_prediction.md).
MODES = ("baseline", "dmp", "dhp", "dualpath", "wish", "mpp")


@dataclasses.dataclass
class MachineConfig:
    # Front end (Table 2)
    fetch_width: int = 8
    max_branches_per_cycle: int = 3
    fetch_stops_at_taken: bool = True
    pipeline_depth: int = 30
    # Execution core (Table 2)
    rob_size: int = 512
    retire_width: int = 8
    store_buffer_size: int = 128
    # Predictors
    predictor_kind: str = "perceptron"
    predictor_args: Dict = dataclasses.field(default_factory=dict)
    confidence_kind: str = "jrs"
    confidence_args: Dict = dataclasses.field(default_factory=dict)
    btb_entries: int = 4096
    ras_depth: int = 64
    # Policy under evaluation
    mode: str = "baseline"
    # DMP enhancements (Section 2.7), cumulative in the paper's Figure 9
    multiple_cfm: bool = False
    early_exit: bool = False
    multiple_diverge: bool = False
    #: Static alternate-path instruction budget for early exit when the
    #: compiler did not choose a per-branch threshold.
    early_exit_default_threshold: int = 48
    #: Hard bound on instructions fetched per dpred path (a real machine
    #: bounds this by checkpoint/ROB resources).
    dpred_path_limit: int = 256
    #: Predicate hard-to-predict loop-exit branches marked ``is_loop``
    #: (the Section 2.7.4 "diverge loop branches" extension, wish-loop
    #: style).  Off by default: the paper's mainline machine skips them.
    loop_predication: bool = False
    #: How the multiple-diverge-branch enhancement handles a newer
    #: low-confidence diverge branch on the predicted path:
    #: ``"restart"`` (the paper's mainline Section 2.7.3 policy: exit and
    #: re-enter) or ``"nested"`` (the Section 2.7.4 alternative: predicate
    #: it too, with AND-ed predicates).
    multiple_diverge_policy: str = "restart"
    #: Maximum nesting depth under the "nested" policy.
    max_nested_diverge: int = 2
    #: Section 2.7.4's "selective branch predictor update policy": do not
    #: train the direction predictor with dynamically-predicated diverge
    #: branch instances (Klauser et al. found this removes destructive
    #: interference).
    selective_predictor_update: bool = False
    # Dynamic merge-point predictor sizing (mode "mpp" only; see
    # docs/merge_point_prediction.md for the geometry rationale)
    #: Tagged-table capacity (static branches tracked, LRU replacement).
    merge_table_entries: int = 128
    #: Merge-point candidates kept per branch entry.
    merge_max_candidates: int = 8
    #: Observation-window budget: how far past a branch instance the
    #: hardware looks for its reconvergence point, in instructions.
    merge_window_instructions: int = 120
    #: Instances required on BOTH directions before an entry predicts.
    merge_min_instances: int = 16
    #: Fraction of instances (per direction) a candidate must follow.
    merge_min_fraction: float = 0.7
    #: Saturating episode-outcome confidence counter: initial value,
    #: ceiling, and the decay per provable non-merge.  Confidence
    #: reaching zero retrains the entry (mispredicted-merge recovery).
    merge_conf_init: int = 2
    merge_conf_max: int = 7
    merge_miss_penalty: int = 2
    #: Which path's final global history survives a normal dpred exit:
    #: ``"predicted"`` or ``"alternate"``.  The paper chose the alternate
    #: path's GHR "based on simulation results" (footnote 7); on our
    #: synthetic workloads — whose branches are more history-correlated
    #: than SPEC — the predicted path's GHR measures better, so that is
    #: the default.  Both are equally implementable (both GHRs are
    #: checkpointed during dynamic predication).
    dpred_ghr_policy: str = "predicted"
    #: Simulation engine: ``"fast"`` (default) runs the pre-decoded
    #: block-plan inner loops (:mod:`repro.uarch.plan`);
    #: ``"reference"`` keeps the original per-instruction loops;
    #: ``"batch"`` routes the run through the vectorized lockstep
    #: engine (:mod:`repro.uarch.batch`), which simulates many cells
    #: over numpy struct-of-arrays and falls back to the fast engine
    #: for configurations outside its vector envelope.  All engines
    #: produce bit-identical :class:`~repro.uarch.stats.SimStats`
    #: (asserted by tests/core/test_engine_differential.py and
    #: tests/core/test_engine_batch.py), and the choice deliberately
    #: does not appear in :meth:`describe` so the stats of the engines
    #: compare equal field-for-field.
    engine: str = "fast"
    # Memory
    memory_latency: int = 300
    #: Sequential-stream prefetch depth on L1D misses (0 disables); an
    #: extension knob for the memory-system ablations.
    prefetch_lines: int = 0
    # Robustness / validation (docs/robustness.md)
    #: Cross-check the run against the functional trace and the
    #: dynamic-predication invariants (repro.validation.oracle); raises
    #: :class:`~repro.errors.OracleMismatchError` on any violation.
    oracle_checks: bool = False
    #: Bound simulated cycles and forward progress
    #: (repro.validation.watchdog); raises
    #: :class:`~repro.errors.SimulationHangError` instead of hanging.
    watchdog: bool = False
    #: Explicit watchdog cycle budget; ``None`` derives one from the
    #: trace length (AUTO_CYCLE_FACTOR cycles per instruction).
    watchdog_cycle_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.dpred_ghr_policy not in ("predicted", "alternate"):
            raise ValueError(
                "dpred_ghr_policy must be 'predicted' or 'alternate'"
            )
        if self.multiple_diverge_policy not in ("restart", "nested"):
            raise ValueError(
                "multiple_diverge_policy must be 'restart' or 'nested'"
            )
        if self.engine not in ("fast", "reference", "batch"):
            raise ValueError(
                f"engine must be 'fast', 'reference' or 'batch', "
                f"got {self.engine!r}"
            )
        if self.fetch_width <= 0 or self.rob_size <= 0:
            raise ValueError("widths and sizes must be positive")
        if (
            self.merge_table_entries <= 0
            or self.merge_max_candidates <= 0
            or self.merge_window_instructions <= 0
            or self.merge_min_instances <= 0
        ):
            raise ValueError("merge-predictor sizes must be positive")
        if not 0.0 < self.merge_min_fraction <= 1.0:
            raise ValueError("merge_min_fraction must be in (0, 1]")
        if self.merge_conf_init <= 0 or self.merge_conf_max < self.merge_conf_init:
            raise ValueError(
                "merge confidence needs 0 < merge_conf_init <= merge_conf_max"
            )
        if self.merge_miss_penalty < 0:
            raise ValueError("merge_miss_penalty must be non-negative")
        if self.watchdog_cycle_limit is not None and self.watchdog_cycle_limit <= 0:
            raise ValueError("watchdog_cycle_limit must be positive or None")

    # -- named configurations ---------------------------------------------

    @classmethod
    def baseline(cls, **overrides) -> "MachineConfig":
        """The Table 2 baseline processor."""
        return cls(**overrides)

    @classmethod
    def dmp(cls, enhanced: bool = False, **overrides) -> "MachineConfig":
        """Basic DMP, or the fully-enhanced DMP of Figure 9 when
        ``enhanced`` is set."""
        flags = dict(mode="dmp")
        if enhanced:
            flags.update(
                multiple_cfm=True, early_exit=True, multiple_diverge=True
            )
        flags.update(overrides)
        return cls(**flags)

    @classmethod
    def dhp(cls, **overrides) -> "MachineConfig":
        """Dynamic Hammock Predication (Klauser et al.)."""
        return cls(mode="dhp", **overrides)

    @classmethod
    def dualpath(cls, **overrides) -> "MachineConfig":
        """Selective dual-path execution (Heil & Smith).

        Forks only on fully-unconfident branches (saturated JRS
        threshold): forking costs half the fetch bandwidth, so it needs a
        much higher misprediction probability than dynamic predication to
        pay off."""
        overrides.setdefault("confidence_args", {"threshold": None})
        return cls(mode="dualpath", **overrides)

    def replace(self, **overrides) -> "MachineConfig":
        """A copy with the given fields overridden."""
        return dataclasses.replace(self, **overrides)

    def hardened(self, cycle_limit: Optional[int] = None) -> "MachineConfig":
        """A copy with the oracle cross-checker and watchdog armed (the
        ``--paranoid`` configuration; see docs/robustness.md)."""
        return self.replace(
            oracle_checks=True,
            watchdog=True,
            watchdog_cycle_limit=cycle_limit,
        )

    @classmethod
    def wish(cls, **overrides) -> "MachineConfig":
        """Wish branches (Kim et al.): compile-time if-converted regions
        with a run-time choice between predicated execution and normal
        branch prediction.  With ``confidence_kind="never"`` this machine
        degenerates to classic always-on compile-time predication."""
        return cls(mode="wish", **overrides)

    @classmethod
    def mpp(cls, **overrides) -> "MachineConfig":
        """Hint-free DMP (dynamic merge-point prediction, after Pruett &
        Patt): CFM points are learned at run time from retired control
        flow, so no profiling pass — and no hint table — exists anywhere
        in the loop.  Episodes run on the same dynamic-predication
        engine as ``dmp``."""
        return cls(mode="mpp", **overrides)

    @property
    def is_predicating(self) -> bool:
        return self.mode in ("dmp", "dhp", "wish", "mpp")

    def describe(self) -> str:
        """Human-readable one-line summary (used by the harness tables)."""
        extras = []
        if self.mode == "dmp":
            for flag, label in (
                (self.multiple_cfm, "mcfm"),
                (self.early_exit, "eexit"),
                (self.multiple_diverge, "mdb"),
            ):
                if flag:
                    extras.append(label)
        suffix = f" +{'+'.join(extras)}" if extras else ""
        return (
            f"{self.mode}{suffix}: {self.fetch_width}-wide, "
            f"{self.pipeline_depth}-stage, {self.rob_size}-entry ROB, "
            f"{self.predictor_kind}/{self.confidence_kind}"
        )
